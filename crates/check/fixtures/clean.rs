//! Counter-fixture: contract-clean lib code that `marconi-check
//! --self-test` must accept with zero findings — guarding against the
//! linter drifting trigger-happy (false positives would make the gate
//! unenforceable in practice).

use std::collections::BTreeMap;

/// Deterministic per-tenant report rows.
#[must_use]
pub struct ReportTicket {
    rows: Vec<(u64, u64)>,
}

pub fn tenant_rows(by_tenant: &BTreeMap<u64, u64>) -> ReportTicket {
    let mut rows = Vec::new();
    for (tenant, hits) in by_tenant {
        rows.push((*tenant, *hits));
    }
    ReportTicket { rows }
}

pub fn first_row(t: &ReportTicket) -> (u64, u64) {
    *t.rows.first().expect("invariant: reports have at least one row")
}

pub fn point_lookups_are_fine(index: &std::collections::HashMap<u64, u64>) -> Option<u64> {
    // get/insert/remove on a hash map are deterministic; only iteration
    // is banned.
    index.get(&1).copied()
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_time_and_unwrap() {
        let t = Instant::now();
        let v: Option<u32> = Some(1);
        let _ = (t.elapsed(), v.unwrap());
    }
}
