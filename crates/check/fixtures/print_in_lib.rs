//! Seeded violation: stdio macros in deterministic lib code.
//!
//! The `no-print` rule must flag every one of these — observability goes
//! through a `TraceSink`, never a terminal. The test module at the bottom
//! prints on purpose to prove the `#[cfg(test)]` exemption holds.

pub fn narrates_progress(step: u32) {
    println!("step {step} done"); // must trip `no-print`
}

pub fn warns_loudly(msg: &str) {
    eprintln!("warning: {msg}"); // must trip `no-print`
}

pub fn leftover_debugging(x: u64) -> u64 {
    dbg!(x + 1) // must trip `no-print`
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("tests narrate freely");
        eprintln!("even to stderr");
    }
}
