//! Seeded violation: a tuner-replica knob that is not mirrored — the
//! exact bug PR 2 fixed by hand. The builder grows a new behavioral knob
//! (`speculative_depth`) but `replica()` hardcodes it, so the α
//! grid-search would replay against a cache the live system never runs.
//! `marconi-check --self-test` must reject this file with
//! `replica-mirror` findings.

pub struct HybridPrefixCacheBuilder {
    capacity: u64,
    checkpoint_mode: u32,
    refresh_ancestors: bool,
    speculative_depth: u32,
    name: Option<String>,
    policy: u32,
}

pub struct HybridPrefixCache {
    capacity: u64,
    checkpoint_mode: u32,
    refresh_ancestors: bool,
    speculative_depth: u32,
    name: String,
    policy: u32,
}

impl HybridPrefixCache {
    fn replica(&self, alpha: u32) -> Self {
        HybridPrefixCache {
            capacity: self.capacity,
            checkpoint_mode: self.checkpoint_mode,
            refresh_ancestors: self.refresh_ancestors,
            // The drifted knob: hardcoded instead of `self.speculative_depth`.
            speculative_depth: 0,
            name: "replica".to_owned(),
            policy: alpha,
        }
    }
}
