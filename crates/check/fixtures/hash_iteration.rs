//! Seeded violation: iterating a hash container in a report-producing
//! path. Iteration order is nondeterministic, so the report is no longer
//! a pure function of trace + config. `marconi-check --self-test` must
//! reject this file with `hash-iter` findings.

use std::collections::HashMap;

pub struct PerTenant {
    pub by_tenant: HashMap<u64, u64>,
}

pub fn tenant_rows(stats: &PerTenant) -> Vec<(u64, u64)> {
    let mut rows = Vec::new();
    // Nondeterministic row order — should be a BTreeMap, or sorted.
    for (tenant, hits) in &stats.by_tenant {
        rows.push((*tenant, *hits));
    }
    rows
}

pub fn total(stats: &PerTenant) -> u64 {
    // Also flagged: .values() iteration (a sum happens to be
    // order-insensitive, but the rule is deliberately conservative —
    // waive it with `check:allow(hash-iter)` plus a reason if truly
    // needed).
    stats.by_tenant.values().sum()
}
