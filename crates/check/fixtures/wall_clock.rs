//! Seeded violation: wall-clock time in report-producing lib code.
//! `marconi-check --self-test` must reject this file with `wall-clock`
//! findings; if it ever passes, the gate has rotted.

use std::time::{Instant, SystemTime};

pub struct Report {
    pub wall_ms: f64,
}

pub fn produce_report() -> Report {
    // Reports must be pure functions of trace + config; this one is not.
    let t0 = Instant::now();
    let _stamp = SystemTime::now();
    let seed = thread_rng();
    let _ = seed;
    Report {
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_in_tests_is_fine() {
        // This Instant must NOT be flagged — tests are exempt.
        let _t = Instant::now();
    }
}
