//! Seeded violation: a leak-prone handle type without `#[must_use]`.
//! Dropping a pin ticket on the floor leaks the pin (the path stays
//! protected forever), so ignoring one must at least warn.
//! `marconi-check --self-test` must reject this file with a
//! `must-use-handle` finding.

pub struct LeakyPinTicket {
    pub node: Option<u32>,
}

pub fn pin_prefix() -> LeakyPinTicket {
    LeakyPinTicket { node: Some(7) }
}
