//! Seeded violation: `.unwrap()` and a contract-free `.expect(…)` in
//! non-test lib code. `marconi-check --self-test` must reject this file
//! with `unwrap` and `expect-message` findings.

pub fn victim_parent(parents: &[Option<u32>], victim: usize) -> u32 {
    // Should be `.expect("invariant: victims are non-root")`.
    let p = parents[victim].unwrap();
    let _q = parents.first().expect("should not happen");
    p
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        let _ = v.unwrap();
    }
}
