//! Seeded violation: dereferencing a session cursor's node id without the
//! generation check. The id may point at a freed or recycled arena slot —
//! the only sound path to the node is `RadixTree::resume` / `cursor_at`,
//! which compare slot generations first. `marconi-check --self-test` must
//! reject this file with a `cursor-deref` finding.

#[must_use]
pub struct StaleCursor {
    pub node: u32,
    pub matched_len: u64,
}

pub fn resume_unchecked(cursor: &StaleCursor) -> u32 {
    // Skips straight past the generation check — exactly the aliasing bug
    // the rule exists to catch.
    cursor.node
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests may dissect cursors freely; no finding may point here.
    #[test]
    fn tests_are_exempt() {
        let cursor = StaleCursor {
            node: 3,
            matched_len: 0,
        };
        assert_eq!(cursor.node, 3);
    }
}
