//! Seeded violation for `marconi-check --self-test`: materializing edge
//! token bytes in a radix hot path. The self-test presents this file as
//! `crates/radix/src/edge_clone.rs`, where the `edge-clone` rule applies:
//! edge labels are `(offset, len)` slices of the shared token store, and
//! `.clone()` / `.to_vec()` are how O(edge) copies sneak back in.

/// Must trip `edge-clone`: merging by materializing both labels.
pub fn absorb_edge(head: &[u32], tail: &[u32]) -> Vec<u32> {
    let mut merged = head.to_vec();
    merged.extend_from_slice(tail);
    merged
}

/// Edge bytes held by value, snapshotted per call.
pub struct EdgeCache {
    tokens: Vec<u32>,
}

impl EdgeCache {
    /// Must trip `edge-clone`: a full copy on every probe.
    pub fn snapshot(&self) -> Vec<u32> {
        self.tokens.clone()
    }

    // check:allow(edge-clone): dot export diagnostic, off the hot path
    /// Waived with a reason: no finding may point here.
    pub fn dump(&self) -> Vec<u32> {
        self.tokens.clone()
    }
}

#[cfg(test)]
mod tests {
    /// Test spans are exempt: no finding may point here either.
    #[test]
    fn clones_are_fine_in_tests() {
        let v = vec![1u32, 2];
        assert_eq!(v.clone(), v.to_vec());
    }
}
