//! `marconi-check`: the workspace contract linter and bounded-interleaving
//! model checker.
//!
//! Every guarantee this reproduction rests on — byte-parity contracts, the
//! no-wall-clock / no-unseeded-randomness rule for the event sim, the
//! tuner-replica knob-mirroring contract, and PR 6's pin lifetimes — was
//! enforced only by convention and scattered `debug_assert`s. This crate
//! turns them into CI gates:
//!
//! * [`lint`] — a token-level static pass (self-contained lexer in
//!   [`lexer`]; no syn, which is not vendorable offline) enforcing the
//!   repo-specific contract rules over
//!   `crates/{core,radix,sim,workload,metrics}`;
//! * [`mirror`] — the tuner-fidelity check: every behavioral knob on
//!   `HybridPrefixCacheBuilder` must be mirrored into
//!   `HybridPrefixCache::replica`, structurally (the exact bug PR 2 fixed
//!   by hand can no longer be reintroduced silently);
//! * [`mc`] + [`scenarios`] — a mini-loom: a deterministic virtual
//!   scheduler over modeled shard locks that exhaustively explores bounded
//!   interleavings of `pin_prefix`/`probe`/`insert`/eviction on the real
//!   [`ShardedCache`](marconi_core::ShardedCache), with lock-order cycle
//!   (deadlock) detection and pin-leak detection. Re-enabling PR 6's
//!   unpinned mid-decode eviction race is caught within the bounded
//!   schedule budget; the shipped pinned implementation passes every
//!   schedule.
//!
//! The binary (`cargo run -p marconi-check -- --workspace`) is the CI
//! gate; `--self-test` checks the seeded-violation fixtures under
//! `crates/check/fixtures/` are still rejected (so the gate cannot rot),
//! and `--model-check` runs the scenario suite. `docs/verification.md`
//! catalogs which mechanism enforces which invariant.

pub mod lexer;
pub mod lint;
pub mod mc;
pub mod mirror;
pub mod scenarios;
