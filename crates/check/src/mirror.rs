//! The tuner-fidelity mirror check (`replica-mirror` rule).
//!
//! PR 2 fixed a silent-corruption bug by hand: `HybridPrefixCache::replica`
//! — the cache the α grid-search replays against — hardcoded
//! `checkpoint_mode` / `refresh_ancestors` / `leaf_only_eviction` instead
//! of mirroring its parent, so the tuner graded every α against a system
//! that didn't exist. Nothing stopped the *next* behavioral knob from
//! reintroducing the bug.
//!
//! This check makes the contract structural: it parses (token-level) the
//! fields of `HybridPrefixCacheBuilder` — the set of behavioral knobs —
//! and the struct literal inside `fn replica`, and requires every knob's
//! initializer to read `self.<knob>`. A knob that is missing, or
//! initialized from anything that never mentions `self.<knob>`, fails the
//! lint. Two knobs are exempt by design and listed in
//! [`MirrorSpec::hybrid`]: `name` (replicas are labeled `"replica"`) and
//! `policy` (the grid-search overrides α — that is the point of a replica).

use crate::lexer::{lex, Tok, TokKind};
use crate::lint::Violation;
use std::path::Path;

/// What to check: which builder's fields must be mirrored by which
/// function. Parameterized so the seeded-violation fixture can exercise
/// the checker on a miniature copy of the real code.
#[derive(Debug, Clone)]
pub struct MirrorSpec {
    /// Struct whose fields define the knob set (e.g.
    /// `HybridPrefixCacheBuilder`).
    pub knob_struct: &'static str,
    /// Function whose body must mirror the knobs (e.g. `replica`).
    pub mirror_fn: &'static str,
    /// Struct literal inside the function that receives the knobs.
    pub target_struct: &'static str,
    /// Knobs exempt from mirroring, each with the reason.
    pub exempt: &'static [(&'static str, &'static str)],
}

impl MirrorSpec {
    /// The real contract: `HybridPrefixCacheBuilder` knobs vs
    /// `HybridPrefixCache::replica`.
    #[must_use]
    pub fn hybrid() -> Self {
        MirrorSpec {
            knob_struct: "HybridPrefixCacheBuilder",
            mirror_fn: "replica",
            target_struct: "HybridPrefixCache",
            exempt: &[
                ("name", "replicas are labeled \"replica\" in reports"),
                ("policy", "the grid-search overrides α per replica"),
            ],
        }
    }
}

/// Runs the mirror check on one file's source.
#[must_use]
pub fn check_mirror_source(file: &Path, src: &str, spec: &MirrorSpec) -> Vec<Violation> {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let mut out = Vec::new();
    let mut push = |line: u32, message: String| {
        out.push(Violation {
            file: file.to_owned(),
            line,
            rule: "replica-mirror",
            message,
        });
    };

    let Some((knobs, _)) = struct_fields(toks, spec.knob_struct) else {
        push(
            1,
            format!(
                "knob struct `{}` not found — the mirror check is miswired",
                spec.knob_struct
            ),
        );
        return out;
    };
    let Some(body) = fn_body(toks, spec.mirror_fn) else {
        push(
            1,
            format!(
                "mirror fn `{}` not found — the mirror check is miswired",
                spec.mirror_fn
            ),
        );
        return out;
    };
    let Some(inits) = struct_literal_inits(&toks[body.0..body.1], spec.target_struct) else {
        push(
            toks[body.0].line,
            format!(
                "`fn {}` does not build a `{}` literal — the mirror check is miswired",
                spec.mirror_fn, spec.target_struct
            ),
        );
        return out;
    };

    for (knob, line) in &knobs {
        if spec.exempt.iter().any(|(e, _)| e == knob) {
            continue;
        }
        match inits.iter().find(|(f, _, _)| f == knob) {
            None => push(
                *line,
                format!(
                    "knob `{knob}` is not initialized in `fn {}`'s `{}` literal: \
                     the α grid-search would tune against a system without it",
                    spec.mirror_fn, spec.target_struct
                ),
            ),
            Some((_, init, init_line)) => {
                let mirrors = init
                    .windows(3)
                    .any(|w| w[0].is_ident("self") && w[1].is_punct('.') && w[2].is_ident(knob));
                if !mirrors {
                    push(
                        *init_line,
                        format!(
                            "knob `{knob}` is hardcoded in `fn {}` instead of \
                             mirroring `self.{knob}`: the exact PR-2 tuner-drift \
                             bug — every behavioral knob must be mirrored into \
                             grid-search replicas",
                            spec.mirror_fn
                        ),
                    );
                }
            }
        }
    }
    out
}

/// Field names (and their lines) of `struct name { … }`, skipping
/// attributes and ignoring `#[cfg(test)]` fields.
fn struct_fields(toks: &[Tok], name: &str) -> Option<(Vec<(String, u32)>, usize)> {
    let mut i = 0usize;
    let open = loop {
        if i + 2 >= toks.len() {
            return None;
        }
        if toks[i].is_ident("struct") && toks[i + 1].is_ident(name) && toks[i + 2].is_punct('{') {
            break i + 2;
        }
        i += 1;
    };
    let close = matching(toks, open)?;
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut j = open + 1;
    while j < close {
        let t = &toks[j];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('#') && toks.get(j + 1).is_some_and(|u| u.is_punct('['))
        {
            // Skip the attribute (covers #[cfg(test)] fields: parity-test
            // plumbing is not a knob).
            let mut k = j + 1;
            let mut d = 0i32;
            while k < close {
                if toks[k].is_punct('[') {
                    d += 1;
                } else if toks[k].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            let cfg_test = toks[j..=k].iter().any(|u| u.is_ident("test"));
            j = k + 1;
            if cfg_test {
                // Skip the field the attribute covers: `ident : type ,`.
                let mut d = 0i32;
                while j < close {
                    let u = &toks[j];
                    if u.is_punct('<') || u.is_punct('(') || u.is_punct('[') {
                        d += 1;
                    } else if u.is_punct('>') || u.is_punct(')') || u.is_punct(']') {
                        d -= 1;
                    } else if u.is_punct(',') && d == 0 {
                        j += 1;
                        break;
                    }
                    j += 1;
                }
            }
            continue;
        } else if depth == 0
            && t.kind == TokKind::Ident
            && toks.get(j + 1).is_some_and(|u| u.is_punct(':'))
            && !toks.get(j + 2).is_some_and(|u| u.is_punct(':'))
            && !t.is_ident("pub")
        {
            fields.push((t.text.clone(), t.line));
        }
        j += 1;
    }
    Some((fields, close))
}

/// Token range (exclusive) of the body of `fn name`.
fn fn_body(toks: &[Tok], name: &str) -> Option<(usize, usize)> {
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") && toks[i + 1].is_ident(name) {
            let mut j = i + 2;
            let mut depth = 0i32;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if t.is_punct('{') && depth == 0 {
                    let close = matching(toks, j)?;
                    return Some((j + 1, close));
                } else if t.is_punct(';') && depth == 0 {
                    break; // a trait method signature — keep looking
                }
                j += 1;
            }
        }
        i += 1;
    }
    None
}

/// Field initializers of the first `Name { field: <tokens>, … }` literal
/// in `toks`: (field, initializer tokens, line).
fn struct_literal_inits(toks: &[Tok], name: &str) -> Option<Vec<(String, Vec<Tok>, u32)>> {
    let mut i = 0usize;
    let open = loop {
        if i + 1 >= toks.len() {
            return None;
        }
        if toks[i].is_ident(name) && toks[i + 1].is_punct('{') {
            break i + 1;
        }
        i += 1;
    };
    let close = matching(toks, open)?;
    let mut out = Vec::new();
    let mut j = open + 1;
    while j < close {
        // Skip attributes on initializers (e.g. #[cfg(test)] fields).
        while toks[j].is_punct('#') && toks.get(j + 1).is_some_and(|u| u.is_punct('[')) {
            let mut d = 0i32;
            while j < close {
                if toks[j].is_punct('[') {
                    d += 1;
                } else if toks[j].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if j >= close {
            break;
        }
        let (field, line) = (&toks[j], toks[j].line);
        if field.kind != TokKind::Ident {
            break; // `..base` — stop parsing politely
        }
        if j + 1 == close || toks[j + 1].is_punct(',') {
            // Shorthand init `field,`: the initializer is the same-named
            // local (a knob initialized this way is conservatively treated
            // as not mirroring `self.<knob>`).
            out.push((field.text.clone(), vec![field.clone()], line));
            j += 2;
            continue;
        }
        if !toks[j + 1].is_punct(':') {
            break;
        }
        let mut k = j + 2;
        let mut depth = 0i32;
        while k < close {
            let t = &toks[k];
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct(',') && depth == 0 {
                break;
            }
            k += 1;
        }
        out.push((field.text.clone(), toks[j + 2..k].to_vec(), line));
        j = k + 1;
    }
    Some(out)
}

fn matching(toks: &[Tok], open: usize) -> Option<usize> {
    let (o, c) = match toks[open].text.as_str() {
        "{" => ('{', '}'),
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        _ => return None,
    };
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: fn() -> MirrorSpec = || MirrorSpec {
        knob_struct: "Builder",
        mirror_fn: "replica",
        target_struct: "Cache",
        exempt: &[("name", "labeled")],
    };

    fn check(src: &str) -> Vec<Violation> {
        check_mirror_source(Path::new("t.rs"), src, &SPEC())
    }

    #[test]
    fn mirrored_knobs_pass() {
        let src = "
            struct Builder { name: String, alpha: f64, pin: bool }
            impl Cache {
                fn replica(&self) -> Cache {
                    Cache { name: \"replica\".into(), alpha: self.alpha, pin: self.pin }
                }
            }";
        assert!(check(src).is_empty());
    }

    #[test]
    fn hardcoded_knob_is_the_pr2_bug() {
        let src = "
            struct Builder { name: String, alpha: f64, pin: bool }
            impl Cache {
                fn replica(&self) -> Cache {
                    Cache { name: \"replica\".into(), alpha: self.alpha, pin: false }
                }
            }";
        let v = check(src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("hardcoded"));
        assert!(v[0].message.contains("pin"));
    }

    #[test]
    fn missing_knob_is_flagged() {
        let src = "
            struct Builder { name: String, alpha: f64, fresh_knob: bool }
            impl Cache {
                fn replica(&self) -> Cache {
                    Cache { name: \"replica\".into(), alpha: self.alpha }
                }
            }";
        let v = check(src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("fresh_knob"));
    }

    #[test]
    fn derived_initializers_that_mention_the_knob_pass() {
        let src = "
            struct Builder { name: String, alpha: f64 }
            impl Cache {
                fn replica(&self) -> Cache {
                    Cache { name: String::new(), alpha: self.alpha.max(0.0) }
                }
            }";
        assert!(check(src).is_empty());
    }

    #[test]
    fn the_real_hybrid_source_passes_today() {
        let src = include_str!("../../core/src/hybrid.rs");
        let v = check_mirror_source(Path::new("hybrid.rs"), src, &MirrorSpec::hybrid());
        assert!(v.is_empty(), "{v:?}");
    }
}
