//! Bounded-interleaving model checker: a mini-loom for the sharded cache.
//!
//! loom is not vendorable in this offline environment, so this module
//! implements the part of it the repository needs: a **deterministic
//! virtual scheduler** over *modeled* shard locks that exhaustively
//! explores every bounded interleaving of a small multi-threaded program.
//!
//! The key observation that makes this sound for
//! [`ShardedCache`](marconi_core::ShardedCache): every public
//! operation acquires exactly one shard `RwLock`, holds it for the whole
//! operation, and never nests. Operations are therefore *atomic per
//! shard*, and the complete set of observable concurrent behaviors is the
//! set of linearizations — interleavings of whole operations consistent
//! with per-thread program order and the read/write lock semantics. The
//! checker:
//!
//! 1. **explores** every schedule of lock-acquire / execute steps under
//!    the modeled locks (DFS, deterministic order, bounded by a schedule
//!    budget), detecting *deadlock* states (no runnable thread) and
//!    recording the *lock-order graph* (edges held→acquired) for cycle
//!    detection — this is where a future nested-lock operation would be
//!    caught before it ships;
//! 2. **replays** each distinct linearization against the real
//!    [`ShardedCache`](marconi_core::ShardedCache) (fresh instance per
//!    schedule, virtual clock, no
//!    wall time, no randomness), checking the scenario's safety
//!    invariants after every operation and at termination.
//!
//! Exploration is separated from replay because lock feasibility does not
//! depend on cache contents; replaying only *distinct* linearizations
//! keeps exhaustive exploration cheap.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// How a step acquires a modeled lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) acquisition — compatible with other readers.
    Shared,
    /// Exclusive (write) acquisition.
    Exclusive,
}

/// One operation of a virtual thread: the locks it takes (in order, all
/// held until the operation executes) and an opaque action index the
/// [`World`] interprets during replay.
#[derive(Debug, Clone)]
pub struct Op {
    /// Display label, used in violation traces.
    pub label: String,
    /// Locks acquired, in order. Every listed lock is held simultaneously
    /// when the operation executes (single-element for all real
    /// `ShardedCache` ops today; multi-element models nested locking).
    pub locks: Vec<(usize, LockMode)>,
}

/// A multi-threaded program: one op list per virtual thread.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Threads in scheduling-priority order (exploration is deterministic).
    pub threads: Vec<Vec<Op>>,
}

/// Replay target: interprets executed operations and checks invariants.
///
/// `execute` and `finish` return `Err(description)` on an invariant
/// violation; the checker attaches the violating schedule.
pub trait World {
    /// Resets to the initial state (called once per replayed schedule).
    fn reset(&mut self);
    /// Executes thread `t`'s `op`-th operation; `Err` = violation.
    ///
    /// # Errors
    ///
    /// Returns the violated invariant, for the schedule trace.
    fn execute(&mut self, t: usize, op: usize) -> Result<(), String>;
    /// End-of-schedule checks (leak detection, determinism fingerprints).
    ///
    /// # Errors
    ///
    /// Returns the violated invariant, for the schedule trace.
    fn finish(&mut self) -> Result<(), String>;
}

/// A violation found by replaying one schedule.
#[derive(Debug, Clone)]
pub struct ScheduleViolation {
    /// The linearization that produced it, rendered as `t0.op-label → …`.
    pub schedule: String,
    /// What broke.
    pub message: String,
}

/// Result of exploring one [`Program`].
#[derive(Debug, Default)]
pub struct Exploration {
    /// Complete schedules visited (leaves of the DFS).
    pub schedules: usize,
    /// Distinct linearizations replayed against the [`World`].
    pub linearizations: usize,
    /// Invariant violations, with their schedules.
    pub violations: Vec<ScheduleViolation>,
    /// Deadlocked states reached (held/waiting description per state).
    pub deadlocks: Vec<String>,
    /// Lock-order edges observed: (held, then-acquired).
    pub lock_order: BTreeSet<(usize, usize)>,
    /// Greatest number of threads simultaneously holding the same lock in
    /// shared mode — proof the scheduler actually explores reader
    /// concurrency.
    pub max_concurrent_readers: usize,
    /// `true` if the schedule budget was exhausted before the space was
    /// fully explored (results are then a bounded smoke, not a proof).
    pub budget_exhausted: bool,
}

impl Exploration {
    /// A cycle in the lock-order graph, if any: a witness that two
    /// schedules acquire the same locks in opposite orders (deadlock
    /// potential even if no explored schedule manifested it).
    #[must_use]
    pub fn lock_order_cycle(&self) -> Option<Vec<usize>> {
        let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &(a, b) in &self.lock_order {
            adj.entry(a).or_default().push(b);
        }
        // Iterative DFS with colors over the (sorted) node set.
        let nodes: BTreeSet<usize> = self.lock_order.iter().flat_map(|&(a, b)| [a, b]).collect();
        let mut color: BTreeMap<usize, u8> = BTreeMap::new(); // 0 white 1 grey 2 black
        for &start in &nodes {
            if color.get(&start).copied().unwrap_or(0) != 0 {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            let mut path = Vec::new();
            while let Some(&mut (n, ref mut next)) = stack.last_mut() {
                if *next == 0 {
                    color.insert(n, 1);
                    path.push(n);
                }
                let succs = adj.get(&n).map_or(&[][..], Vec::as_slice);
                if *next < succs.len() {
                    let s = succs[*next];
                    *next += 1;
                    match color.get(&s).copied().unwrap_or(0) {
                        0 => stack.push((s, 0)),
                        1 => {
                            // Found a cycle: slice the current path at s.
                            let pos = path.iter().position(|&p| p == s).unwrap_or(0);
                            let mut cycle = path[pos..].to_vec();
                            cycle.push(s);
                            return Some(cycle);
                        }
                        _ => {}
                    }
                } else {
                    color.insert(n, 2);
                    stack.pop();
                    path.pop();
                }
            }
        }
        None
    }
}

/// Modeled state of one read-write lock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct LockState {
    readers: usize,
    writer: bool,
}

impl LockState {
    fn admits(&self, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => !self.writer,
            LockMode::Exclusive => !self.writer && self.readers == 0,
        }
    }
}

/// Per-thread progress: next op, and how many of its locks are held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pc {
    op: usize,
    held: usize,
}

/// Explores every schedule of `program` (up to `budget` complete
/// schedules), replaying each distinct linearization against `world`.
pub fn explore(program: &Program, world: &mut dyn World, budget: usize) -> Exploration {
    let mut exp = Exploration::default();
    let mut seen: BTreeSet<Vec<(usize, usize)>> = BTreeSet::new();
    let locks_needed: usize = program
        .threads
        .iter()
        .flatten()
        .flat_map(|op| op.locks.iter().map(|&(l, _)| l + 1))
        .max()
        .unwrap_or(0);
    let mut st = SearchState {
        program,
        world,
        exp: &mut exp,
        seen: &mut seen,
        budget,
        locks: vec![LockState::default(); locks_needed],
        pcs: vec![Pc { op: 0, held: 0 }; program.threads.len()],
        order: Vec::new(),
    };
    st.dfs();
    exp
}

struct SearchState<'a> {
    program: &'a Program,
    world: &'a mut dyn World,
    exp: &'a mut Exploration,
    seen: &'a mut BTreeSet<Vec<(usize, usize)>>,
    budget: usize,
    locks: Vec<LockState>,
    pcs: Vec<Pc>,
    /// Linearization so far: (thread, op index) at each execute.
    order: Vec<(usize, usize)>,
}

impl SearchState<'_> {
    fn finished(&self, t: usize) -> bool {
        self.pcs[t].op >= self.program.threads[t].len()
    }

    /// The thread's next step is either "acquire its next lock" or, with
    /// all locks held, "execute and release".
    fn enabled(&self, t: usize) -> bool {
        if self.finished(t) {
            return false;
        }
        let pc = self.pcs[t];
        let op = &self.program.threads[t][pc.op];
        match op.locks.get(pc.held) {
            Some(&(lock, mode)) => self.locks[lock].admits(mode),
            None => true, // all locks held (or lock-free op): executable
        }
    }

    fn dfs(&mut self) {
        if self.exp.budget_exhausted {
            return;
        }
        if self.pcs.iter().enumerate().all(|(t, _)| self.finished(t)) {
            self.exp.schedules += 1;
            if self.exp.schedules >= self.budget {
                self.exp.budget_exhausted = true;
            }
            self.replay_if_new();
            return;
        }
        let runnable: Vec<usize> = (0..self.pcs.len()).filter(|&t| self.enabled(t)).collect();
        if runnable.is_empty() {
            self.exp.schedules += 1;
            if self.exp.schedules >= self.budget {
                self.exp.budget_exhausted = true;
            }
            self.record_deadlock();
            return;
        }
        for t in runnable {
            let pc = self.pcs[t];
            let op = &self.program.threads[t][pc.op];
            match op.locks.get(pc.held) {
                Some(&(lock, mode)) => {
                    // Acquire step: record lock-order edges from every
                    // already-held lock.
                    for &(held, _) in &op.locks[..pc.held] {
                        self.exp.lock_order.insert((held, lock));
                    }
                    match mode {
                        LockMode::Shared => {
                            self.locks[lock].readers += 1;
                            self.exp.max_concurrent_readers = self
                                .exp
                                .max_concurrent_readers
                                .max(self.locks[lock].readers);
                        }
                        LockMode::Exclusive => self.locks[lock].writer = true,
                    }
                    self.pcs[t].held += 1;
                    self.dfs();
                    self.pcs[t].held -= 1;
                    match mode {
                        LockMode::Shared => self.locks[lock].readers -= 1,
                        LockMode::Exclusive => self.locks[lock].writer = false,
                    }
                }
                None => {
                    // Execute-and-release step.
                    let held = op.locks.clone();
                    for &(lock, mode) in &held {
                        match mode {
                            LockMode::Shared => self.locks[lock].readers -= 1,
                            LockMode::Exclusive => self.locks[lock].writer = false,
                        }
                    }
                    self.pcs[t] = Pc {
                        op: pc.op + 1,
                        held: 0,
                    };
                    self.order.push((t, pc.op));
                    self.dfs();
                    self.order.pop();
                    self.pcs[t] = pc;
                    for &(lock, mode) in &held {
                        match mode {
                            LockMode::Shared => {
                                self.locks[lock].readers += 1;
                                // (max_concurrent_readers already counted
                                // on the way in.)
                            }
                            LockMode::Exclusive => self.locks[lock].writer = true,
                        }
                    }
                }
            }
            if self.exp.budget_exhausted {
                return;
            }
        }
    }

    fn replay_if_new(&mut self) {
        if !self.seen.insert(self.order.clone()) {
            return;
        }
        self.exp.linearizations += 1;
        let trace = self.render(&self.order.clone());
        self.world.reset();
        for &(t, op) in &self.order.clone() {
            if let Err(message) = self.world.execute(t, op) {
                self.exp.violations.push(ScheduleViolation {
                    schedule: trace,
                    message,
                });
                // Still run finish() so the world can clean up pins.
                let _ = self.world.finish();
                return;
            }
        }
        if let Err(message) = self.world.finish() {
            self.exp.violations.push(ScheduleViolation {
                schedule: trace,
                message,
            });
        }
    }

    fn render(&self, order: &[(usize, usize)]) -> String {
        let mut s = String::new();
        for (i, &(t, op)) in order.iter().enumerate() {
            if i > 0 {
                s.push_str(" ; ");
            }
            let _ = write!(s, "t{t}:{}", self.program.threads[t][op].label);
        }
        s
    }

    fn record_deadlock(&mut self) {
        let mut s = String::from("deadlock: ");
        for (t, pc) in self.pcs.iter().enumerate() {
            if self.finished(t) {
                continue;
            }
            let op = &self.program.threads[t][pc.op];
            if let Some(&(lock, _)) = op.locks.get(pc.held) {
                let _ = write!(
                    s,
                    "t{t} holds {:?} waits lock{lock} in {}; ",
                    &op.locks[..pc.held]
                        .iter()
                        .map(|&(l, _)| l)
                        .collect::<Vec<_>>(),
                    op.label
                );
            }
        }
        let _ = write!(s, "after [{}]", self.render(&self.order));
        self.exp.deadlocks.push(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that records execution order and never fails.
    #[derive(Default)]
    struct Recorder {
        runs: Vec<Vec<(usize, usize)>>,
        cur: Vec<(usize, usize)>,
    }

    impl World for Recorder {
        fn reset(&mut self) {
            self.cur.clear();
        }
        fn execute(&mut self, t: usize, op: usize) -> Result<(), String> {
            self.cur.push((t, op));
            Ok(())
        }
        fn finish(&mut self) -> Result<(), String> {
            self.runs.push(self.cur.clone());
            Ok(())
        }
    }

    fn op(label: &str, locks: Vec<(usize, LockMode)>) -> Op {
        Op {
            label: label.into(),
            locks,
        }
    }

    #[test]
    fn two_independent_writers_have_two_linearizations() {
        let program = Program {
            threads: vec![
                vec![op("a", vec![(0, LockMode::Exclusive)])],
                vec![op("b", vec![(1, LockMode::Exclusive)])],
            ],
        };
        let mut w = Recorder::default();
        let exp = explore(&program, &mut w, 10_000);
        assert_eq!(exp.linearizations, 2);
        assert!(exp.deadlocks.is_empty());
        assert!(exp.lock_order_cycle().is_none());
    }

    #[test]
    fn same_lock_writers_still_interleave_as_twoorders() {
        let program = Program {
            threads: vec![
                vec![
                    op("a1", vec![(0, LockMode::Exclusive)]),
                    op("a2", vec![(0, LockMode::Exclusive)]),
                ],
                vec![op("b", vec![(0, LockMode::Exclusive)])],
            ],
        };
        let mut w = Recorder::default();
        let exp = explore(&program, &mut w, 10_000);
        // b can run before a1, between a1 and a2, or after a2.
        assert_eq!(exp.linearizations, 3);
    }

    #[test]
    fn readers_overlap_writers_exclude() {
        let program = Program {
            threads: vec![
                vec![op("r1", vec![(0, LockMode::Shared)])],
                vec![op("r2", vec![(0, LockMode::Shared)])],
            ],
        };
        let exp = explore(&program, &mut Recorder::default(), 10_000);
        assert!(
            exp.max_concurrent_readers >= 2,
            "the scheduler must explore a state with both readers inside"
        );
    }

    #[test]
    fn opposite_order_nested_locks_deadlock_and_cycle() {
        // The textbook ABBA deadlock — a future nested-lock op in
        // ShardedCache would surface here before shipping.
        let program = Program {
            threads: vec![
                vec![op(
                    "ab",
                    vec![(0, LockMode::Exclusive), (1, LockMode::Exclusive)],
                )],
                vec![op(
                    "ba",
                    vec![(1, LockMode::Exclusive), (0, LockMode::Exclusive)],
                )],
            ],
        };
        let exp = explore(&program, &mut Recorder::default(), 10_000);
        assert!(!exp.deadlocks.is_empty(), "ABBA must deadlock");
        let cycle = exp.lock_order_cycle().expect("cycle must be detected");
        assert!(cycle.len() >= 2);
    }

    #[test]
    fn consistent_nested_order_neither_deadlocks_nor_cycles() {
        let program = Program {
            threads: vec![
                vec![op(
                    "ab",
                    vec![(0, LockMode::Exclusive), (1, LockMode::Exclusive)],
                )],
                vec![op(
                    "ab2",
                    vec![(0, LockMode::Exclusive), (1, LockMode::Exclusive)],
                )],
            ],
        };
        let exp = explore(&program, &mut Recorder::default(), 10_000);
        assert!(exp.deadlocks.is_empty());
        assert!(exp.lock_order_cycle().is_none());
    }

    #[test]
    fn budget_bounds_the_search() {
        let program = Program {
            threads: vec![
                vec![op("a", vec![(0, LockMode::Exclusive)]); 6],
                vec![op("b", vec![(1, LockMode::Exclusive)]); 6],
            ],
        };
        let exp = explore(&program, &mut Recorder::default(), 50);
        assert!(exp.budget_exhausted);
        assert!(exp.schedules <= 51);
    }

    #[test]
    fn exploration_is_deterministic() {
        let program = Program {
            threads: vec![
                vec![op("a", vec![(0, LockMode::Exclusive)]); 2],
                vec![op("b", vec![(0, LockMode::Shared)]); 2],
            ],
        };
        let a = explore(&program, &mut Recorder::default(), 100_000);
        let b = explore(&program, &mut Recorder::default(), 100_000);
        assert_eq!(a.schedules, b.schedules);
        assert_eq!(a.linearizations, b.linearizations);
        assert_eq!(a.lock_order, b.lock_order);
    }
}
