//! The `marconi-check` CLI — the CI verification gate.
//!
//! ```text
//! cargo run -p marconi-check -- --workspace    # lint the six deterministic crates
//! cargo run -p marconi-check -- --self-test    # seeded-violation fixtures must still be rejected
//! cargo run -p marconi-check -- --model-check  # bounded-interleaving scenario suite
//! cargo run -p marconi-check --                # all three
//! ```
//!
//! Options: `--root <path>` (workspace root, default `.`), `--budget <n>`
//! (model-check schedule budget, default 4096). Exit code 0 iff every
//! requested stage passes.

use marconi_check::lint::{lint_source, lint_workspace, Violation};
use marconi_check::mirror::{check_mirror_source, MirrorSpec};
use marconi_check::scenarios;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut budget = 4096usize;
    let mut stages: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => stages.push("workspace"),
            "--self-test" => stages.push("self-test"),
            "--model-check" => stages.push("model-check"),
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a path"),
            },
            "--budget" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => budget = n,
                None => return usage("--budget needs a number"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if stages.is_empty() {
        stages = vec!["workspace", "self-test", "model-check"];
    }

    let mut failed = false;
    for stage in stages {
        let ok = match stage {
            "workspace" => run_workspace(&root),
            "self-test" => run_self_test(&root),
            _ => run_model_check(budget),
        };
        if !ok {
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("marconi-check: {msg}");
    eprintln!("usage: marconi-check [--workspace] [--self-test] [--model-check] [--root <path>] [--budget <n>]");
    ExitCode::FAILURE
}

/// Lints the workspace's deterministic crates; clean = pass.
fn run_workspace(root: &Path) -> bool {
    match lint_workspace(root) {
        Ok(violations) if violations.is_empty() => {
            println!("workspace lint: clean");
            true
        }
        Ok(violations) => {
            println!("workspace lint: {} violation(s)", violations.len());
            for v in &violations {
                println!("  {v}");
            }
            false
        }
        Err(e) => {
            println!("workspace lint: error: {e}");
            false
        }
    }
}

/// Every seeded-violation fixture must still be *rejected* (and the clean
/// fixture accepted) — otherwise the gate has rotted and CI fails.
fn run_self_test(root: &Path) -> bool {
    // (fixture, path presented to the linter, rules that must fire at
    // least once). The path matters for path-scoped rules: `edge-clone`
    // only constrains `crates/radix/src`, so its fixture is presented
    // under that prefix.
    let expectations: &[(&str, &str, &[&str])] = &[
        ("wall_clock.rs", "wall_clock.rs", &["wall-clock"]),
        (
            "unwrap_in_lib.rs",
            "unwrap_in_lib.rs",
            &["unwrap", "expect-message"],
        ),
        ("hash_iteration.rs", "hash_iteration.rs", &["hash-iter"]),
        (
            "missing_must_use.rs",
            "missing_must_use.rs",
            &["must-use-handle"],
        ),
        (
            "edge_clone.rs",
            "crates/radix/src/edge_clone.rs",
            &["edge-clone"],
        ),
        ("print_in_lib.rs", "print_in_lib.rs", &["no-print"]),
        ("cursor_deref.rs", "cursor_deref.rs", &["cursor-deref"]),
    ];
    let dir = root.join("crates/check/fixtures");
    let mut ok = true;
    for (file, lint_path, rules) in expectations {
        let path = dir.join(file);
        let Ok(src) = std::fs::read_to_string(&path) else {
            println!("self-test: cannot read {}", path.display());
            ok = false;
            continue;
        };
        let found = lint_source(Path::new(lint_path), &src);
        for rule in *rules {
            if !found.iter().any(|v| v.rule == *rule) {
                println!(
                    "self-test: FIXTURE NOT REJECTED — {file} must trip `{rule}` \
                     but did not (the linter has rotted)"
                );
                ok = false;
            }
        }
        // Fixtures embed test modules to prove the exemption works: no
        // finding may point into them (wall_clock.rs keeps an Instant in
        // its tests on purpose).
        if let Some(unexpected) = found.iter().find(|v| !rules.contains(&v.rule)) {
            println!("self-test: unexpected finding in {file}: {unexpected}");
            ok = false;
        }
    }
    // The mirror fixture goes through the mirror checker.
    ok &= check_fixture_mirror(&dir);
    // And the clean fixture must stay clean.
    let clean = dir.join("clean.rs");
    match std::fs::read_to_string(&clean) {
        Ok(src) => {
            let found = lint_source(Path::new("clean.rs"), &src);
            if !found.is_empty() {
                for v in &found {
                    println!("self-test: FALSE POSITIVE on clean fixture: {v}");
                }
                ok = false;
            }
        }
        Err(_) => {
            println!("self-test: cannot read {}", clean.display());
            ok = false;
        }
    }
    println!(
        "self-test: {}",
        if ok {
            "all fixtures correctly classified"
        } else {
            "FAILED"
        }
    );
    ok
}

fn check_fixture_mirror(dir: &Path) -> bool {
    let path = dir.join("unmirrored_knob.rs");
    let Ok(src) = std::fs::read_to_string(&path) else {
        println!("self-test: cannot read {}", path.display());
        return false;
    };
    let found: Vec<Violation> =
        check_mirror_source(Path::new("unmirrored_knob.rs"), &src, &MirrorSpec::hybrid());
    let caught = found
        .iter()
        .any(|v| v.rule == "replica-mirror" && v.message.contains("speculative_depth"));
    if !caught {
        println!(
            "self-test: FIXTURE NOT REJECTED — unmirrored_knob.rs must trip \
             `replica-mirror` on `speculative_depth` (the mirror check has rotted)"
        );
    }
    caught
}

/// The bounded-interleaving suite. The unpinned mid-decode scenario must
/// *fail* (the checker proves it still catches PR 6's race) and every
/// shipped-configuration scenario must pass.
fn run_model_check(budget: usize) -> bool {
    let mut ok = true;

    // 1. The race must be caught when the pin filter is disabled.
    let mut unpinned = scenarios::mid_decode_eviction(false);
    let exp = unpinned.run(budget);
    let caught = exp
        .violations
        .iter()
        .any(|v| v.message.contains("mid-decode"));
    println!(
        "model-check: {} — {} schedules, {} linearizations, race {}",
        unpinned.name,
        exp.schedules,
        exp.linearizations,
        if caught {
            "CAUGHT (expected: the checker still detects PR 6's bug)"
        } else {
            "NOT CAUGHT — checker rotted"
        }
    );
    if caught {
        println!("  witness schedule: {}", exp.violations[0].schedule);
    }
    ok &= caught && !exp.budget_exhausted;

    // 2. The shipped pinned implementation must pass every schedule.
    let mut pinned = scenarios::mid_decode_eviction(true);
    let exp = pinned.run(budget);
    report_pass(pinned.name, &exp, &mut ok);

    // 3. Cross-shard commutation + non-mutating probes.
    let mut cross = scenarios::cross_shard_commutation();
    let exp = cross.run(budget);
    report_pass(cross.name, &exp, &mut ok);
    if cross.world.fingerprints.len() != 1 {
        println!(
            "  FINAL STATE DIVERGED across schedules: {:?}",
            cross.world.fingerprints
        );
        ok = false;
    }

    // 4. Overlapping pin refcounts balance under every interleaving.
    let mut pins = scenarios::overlapping_pins_balance();
    let exp = pins.run(budget);
    report_pass(pins.name, &exp, &mut ok);

    // 5. Leak-detector self-test: a pin-and-forget program must be flagged.
    let mut leak = scenarios::leaky_pin();
    let exp = leak.run(budget);
    let flagged = exp
        .violations
        .iter()
        .any(|v| v.message.contains("pin leak"));
    println!(
        "model-check: {} — leak {}",
        leak.name,
        if flagged {
            "FLAGGED (expected)"
        } else {
            "MISSED — detector rotted"
        }
    );
    ok &= flagged;

    ok
}

fn report_pass(name: &str, exp: &marconi_check::mc::Exploration, ok: &mut bool) {
    let clean = exp.violations.is_empty()
        && exp.deadlocks.is_empty()
        && exp.lock_order_cycle().is_none()
        && !exp.budget_exhausted;
    println!(
        "model-check: {name} — {} schedules, {} linearizations, {}",
        exp.schedules,
        exp.linearizations,
        if clean { "clean" } else { "VIOLATIONS" }
    );
    if !clean {
        for v in &exp.violations {
            println!("  {}: {}", v.schedule, v.message);
        }
        for d in &exp.deadlocks {
            println!("  {d}");
        }
        if let Some(c) = exp.lock_order_cycle() {
            println!("  lock-order cycle: {c:?}");
        }
        if exp.budget_exhausted {
            println!("  schedule budget exhausted — raise --budget");
        }
        *ok = false;
    }
}
