//! A minimal token-level Rust lexer.
//!
//! `marconi-check`'s contract rules are *lexical*: they match token
//! patterns like `. unwrap (` or `struct FooTicket`, so a full parse (syn)
//! is unnecessary — and unavailable offline. The lexer therefore only has
//! to get the hard lexical cases right, because a mis-lexed string or
//! comment would produce false findings:
//!
//! * line (`//`) and nested block (`/* /* */ */`) comments, kept separately
//!   as [`Comment`]s so waiver annotations can be recognized;
//! * string, raw-string (`r#"…"#`), byte-string, char, and byte literals
//!   (`'a'` vs lifetime `'a` disambiguation included);
//! * raw identifiers (`r#type`).
//!
//! Everything else degrades gracefully: numbers are lexed loosely and
//! multi-character operators come out as single-character [`TokKind::Punct`]
//! tokens, which is exactly what sequence matching wants (`::` is `:`,`:`).

/// The coarse token classes the lint rules match on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (rules match keywords by text).
    Ident,
    /// Lifetime such as `'a` (quote included in the text).
    Lifetime,
    /// String literal of any flavor; [`Tok::text`] holds the *content*
    /// between the quotes, so prefix rules can match messages directly.
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// A single punctuation character.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (for [`TokKind::Str`], the content between the quotes).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// `true` if this is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// `true` if this is the identifier/keyword `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// A comment, carried out-of-band so rules see an uninterrupted token
/// stream but waiver annotations (`// check:allow(rule): reason`) can
/// still be found by line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
}

/// Lexer output: the token stream plus all comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order, comments and whitespace stripped.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// literals simply run to end-of-file, which is good enough for linting
/// (the compiler rejects such files anyway).
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! push {
        ($kind:expr, $text:expr, $line:expr) => {
            out.toks.push(Tok {
                kind: $kind,
                text: $text,
                line: $line,
            })
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..i].to_owned(),
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let (start, start_line) = (i, line);
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    text: src[start..i].to_owned(),
                });
            }
            b'"' => {
                let (content, nl, end) = lex_string(src, i + 1);
                push!(TokKind::Str, content, line);
                line += nl;
                i = end;
            }
            b'\'' => {
                // Lifetime vs char literal: `'a` / `'static` vs `'a'`,
                // `'\n'`, `'\u{1F600}'`.
                if b.get(i + 1).copied().is_some_and(is_ident_start) && b.get(i + 2) != Some(&b'\'')
                {
                    let start = i;
                    i += 1;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    push!(TokKind::Lifetime, src[start..i].to_owned(), line);
                } else {
                    let start = i;
                    i += 1;
                    while i < b.len() {
                        match b[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    push!(TokKind::Char, src[start..i].to_owned(), line);
                }
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                let word = &src[start..i];
                // Literal prefixes and raw identifiers.
                match (word, b.get(i).copied()) {
                    ("r" | "br", Some(b'"' | b'#')) => {
                        if word == "r" && b.get(i) == Some(&b'#') && {
                            // Distinguish r#"raw str"# from r#ident.
                            let mut j = i;
                            while b.get(j) == Some(&b'#') {
                                j += 1;
                            }
                            b.get(j) != Some(&b'"')
                        } {
                            // Raw identifier r#ident.
                            i += 1; // the '#'
                            let id_start = i;
                            while i < b.len() && is_ident_continue(b[i]) {
                                i += 1;
                            }
                            push!(TokKind::Ident, src[id_start..i].to_owned(), line);
                        } else {
                            let (content, nl, end) = lex_raw_string(src, i);
                            push!(TokKind::Str, content, line);
                            line += nl;
                            i = end;
                        }
                    }
                    ("b", Some(b'"')) => {
                        let (content, nl, end) = lex_string(src, i + 1);
                        push!(TokKind::Str, content, line);
                        line += nl;
                        i = end;
                    }
                    ("b", Some(b'\'')) => {
                        i += 1;
                        let start = i;
                        while i < b.len() {
                            match b[i] {
                                b'\\' => i += 2,
                                b'\'' => {
                                    i += 1;
                                    break;
                                }
                                _ => i += 1,
                            }
                        }
                        push!(TokKind::Char, src[start..i].to_owned(), line);
                    }
                    _ => push!(TokKind::Ident, word.to_owned(), line),
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                let mut seen_dot = false;
                while i < b.len() {
                    if is_ident_continue(b[i]) {
                        i += 1;
                    } else if b[i] == b'.'
                        && !seen_dot
                        && b.get(i + 1).copied().is_some_and(|d| d.is_ascii_digit())
                    {
                        // `1.5` but not the range `0..4` or method `1.pow()`.
                        seen_dot = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                push!(TokKind::Num, src[start..i].to_owned(), line);
            }
            _ => {
                push!(TokKind::Punct, src[i..i + 1].to_owned(), line);
                i += 1;
            }
        }
    }
    out
}

/// Lexes a plain (escaped) string starting just after the opening quote;
/// returns (content, newlines crossed, index after the closing quote).
fn lex_string(src: &str, mut i: usize) -> (String, u32, usize) {
    let b = src.as_bytes();
    let start = i;
    let mut nl = 0u32;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => {
                return (src[start..i].to_owned(), nl, i + 1);
            }
            b'\n' => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (src[start..i].to_owned(), nl, i)
}

/// Lexes a raw string starting at the `#`s or quote (after the `r`/`br`
/// prefix); returns (content, newlines crossed, index past the close).
fn lex_raw_string(src: &str, mut i: usize) -> (String, u32, usize) {
    let b = src.as_bytes();
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(b.get(i), Some(&b'"'), "raw string must open with a quote");
    i += 1;
    let start = i;
    let mut nl = 0u32;
    while i < b.len() {
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut h = 0usize;
            while h < hashes && b.get(j) == Some(&b'#') {
                h += 1;
                j += 1;
            }
            if h == hashes {
                return (src[start..i].to_owned(), nl, j);
            }
            i += 1;
        } else {
            if b[i] == b'\n' {
                nl += 1;
            }
            i += 1;
        }
    }
    (src[start..i].to_owned(), nl, i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_are_stripped_and_kept() {
        let l = lex("a // line\n/* block /* nested */ */ b");
        assert_eq!(l.toks.len(), 2);
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.toks[1].text, "b");
        assert_eq!(l.toks[1].line, 2);
    }

    #[test]
    fn strings_hide_their_content_from_the_token_stream() {
        let l = lex(r#"x(".unwrap() Instant") "#);
        assert!(l.toks.iter().all(|t| t.text != "unwrap"));
        assert_eq!(l.toks[2].kind, TokKind::Str);
        assert_eq!(l.toks[2].text, ".unwrap() Instant");
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let l = lex(r##"let s = r#"quote " inside"#; let r#type = 1;"##);
        let strs: Vec<_> = l.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "quote \" inside");
        assert!(l.toks.iter().any(|t| t.is_ident("type")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = l.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let k = kinds("0..4 1.5 0x_ff 1e-3");
        assert_eq!(k[0], (TokKind::Num, "0".into()));
        assert_eq!(k[1], (TokKind::Punct, ".".into()));
        assert_eq!(k[2], (TokKind::Punct, ".".into()));
        assert_eq!(k[3], (TokKind::Num, "4".into()));
        assert_eq!(k[4], (TokKind::Num, "1.5".into()));
        assert_eq!(k[5], (TokKind::Num, "0x_ff".into()));
    }

    #[test]
    fn byte_literals() {
        let l = lex(r#"let a = b"bytes"; let c = b'x';"#);
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "bytes"));
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Char));
    }
}
