//! Model-check scenarios over the real [`ShardedCache`].
//!
//! Each scenario builds a small multi-threaded [`Program`] whose
//! operations mirror the sharded front-end's public API — the same lock
//! footprints `crates/core/src/concurrent.rs` documents — and replays
//! every distinct linearization against a fresh real cache (virtual
//! clock, no wall time, no randomness: violations reproduce exactly).
//!
//! The headline scenario is [`mid_decode_eviction`]: PR 6's bug, as a
//! checkable property. A request's admission-time hit path must stay
//! readable for the whole decode window (pin → decode-read → unpin).
//! With `in_flight_pinning(false)` — the pre-PR-6 behavior — the checker
//! finds a schedule where a concurrent insert's eviction pressure
//! reclaims the pinned path mid-decode; with pinning on (the shipped
//! default) every schedule passes. CI runs both and fails unless the
//! race is *caught* on the unpinned build and *absent* on the pinned one,
//! so the checker itself can never silently rot.

use crate::mc::{explore, Exploration, LockMode, Op, Program, World};
use marconi_core::HybridPrefixCache;
use marconi_core::{EvictionPolicy, HybridPrefixCacheBuilder, PinTicket, ShardedCache};
use marconi_model::ModelConfig;
use marconi_radix::Token;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One cache operation a virtual thread performs, interpreted by
/// [`CacheWorld::execute`].
#[derive(Debug, Clone)]
pub enum CacheOp {
    /// `insert_at(seq, out)` on the owning shard (write lock).
    Insert {
        /// Prompt tokens.
        seq: Vec<Token>,
        /// Completion tokens appended at admission.
        out: Vec<Token>,
    },
    /// `longest_cached_prefix_len(seq)` (read lock) — non-mutating probe.
    Probe {
        /// Probed prefix.
        seq: Vec<Token>,
    },
    /// `pin_prefix(seq)` (write lock), storing the ticket in `slot` and
    /// recording the admission-time hit length the pin protects.
    Pin {
        /// The request's admission-time input.
        seq: Vec<Token>,
        /// Ticket slot index.
        slot: usize,
    },
    /// The decode window: re-probe `slot`'s sequence and require at least
    /// the hit length recorded at pin time — the PR-6 invariant that a
    /// mid-decode request's hit path is never reclaimed.
    DecodeRead {
        /// Ticket slot index.
        slot: usize,
    },
    /// `unpin(ticket)` from `slot` (write lock).
    Unpin {
        /// Ticket slot index.
        slot: usize,
    },
}

/// Replay world: a fresh [`ShardedCache`] per schedule, with ticket slots
/// and a virtual clock.
pub struct CacheWorld {
    builder: HybridPrefixCacheBuilder,
    shards: usize,
    /// Sequences inserted before the threads start (the shared setup every
    /// schedule begins from).
    setup: Vec<(Vec<Token>, Vec<Token>)>,
    /// The per-thread op lists (actions parallel to the [`Program`]).
    actions: Vec<Vec<CacheOp>>,
    /// Collect a determinism fingerprint at the end of every schedule;
    /// scenarios that expect schedule-independent final state assert the
    /// set has exactly one element afterwards.
    pub fingerprints: BTreeSet<String>,
    /// Sequences fingerprinted (probed at finish).
    fingerprint_seqs: Vec<Vec<Token>>,
    cache: Option<ShardedCache>,
    slots: Vec<Option<(PinTicket, Vec<Token>, u64)>>,
    clock: f64,
}

impl CacheWorld {
    fn new(
        builder: HybridPrefixCacheBuilder,
        shards: usize,
        setup: Vec<(Vec<Token>, Vec<Token>)>,
        actions: Vec<Vec<CacheOp>>,
        fingerprint_seqs: Vec<Vec<Token>>,
    ) -> Self {
        let slots = actions
            .iter()
            .flatten()
            .filter(|a| matches!(a, CacheOp::Pin { .. }))
            .count();
        CacheWorld {
            builder,
            shards,
            setup,
            actions,
            fingerprints: BTreeSet::new(),
            fingerprint_seqs,
            cache: None,
            slots: (0..slots).map(|_| None).collect(),
            clock: 0.0,
        }
    }

    fn cache(&self) -> &ShardedCache {
        self.cache
            .as_ref()
            .expect("invariant: reset() runs before any execute()")
    }
}

impl World for CacheWorld {
    fn reset(&mut self) {
        let cache = ShardedCache::new(self.builder.clone(), self.shards);
        self.clock = 0.0;
        for (seq, out) in &self.setup {
            cache.insert_at(seq, out, self.clock);
            self.clock += 1.0;
        }
        self.cache = Some(cache);
        for s in &mut self.slots {
            *s = None;
        }
    }

    fn execute(&mut self, t: usize, op: usize) -> Result<(), String> {
        let action = self.actions[t][op].clone();
        self.clock += 1.0;
        let now = self.clock;
        match action {
            CacheOp::Insert { seq, out } => {
                self.cache().insert_at(&seq, &out, now);
            }
            CacheOp::Probe { seq } => {
                let _ = self.cache().longest_cached_prefix_len(&seq);
            }
            CacheOp::Pin { seq, slot } => {
                let len = self.cache().longest_cached_prefix_len(&seq);
                let ticket = self.cache().pin_prefix(&seq);
                self.slots[slot] = Some((ticket, seq, len));
            }
            CacheOp::DecodeRead { slot } => {
                let (_, seq, admitted) = self.slots[slot]
                    .as_ref()
                    .expect("invariant: DecodeRead follows Pin in program order");
                let now_len = self.cache().longest_cached_prefix_len(seq);
                if now_len < *admitted {
                    return Err(format!(
                        "mid-decode eviction: the admission-time hit path \
                         ({admitted} tokens) shrank to {now_len} while the \
                         request was still decoding against it — PR 6's \
                         unpinned-reclaim race"
                    ));
                }
            }
            CacheOp::Unpin { slot } => {
                if let Some((ticket, _, _)) = self.slots[slot].take() {
                    self.cache().unpin(ticket);
                }
            }
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<(), String> {
        // Leak detection: every pin a program takes must be released by
        // the program (the Drop-based detector enforces the same contract
        // in debug builds across the whole test suite).
        let mut leaked = Vec::new();
        let mut stray: Vec<marconi_core::PinTicket> = Vec::new();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some((ticket, seq, _)) = slot.take() {
                if !ticket.is_empty() {
                    leaked.push(format!("slot {i} (seq root {:?})", seq.first()));
                }
                stray.push(ticket);
            }
        }
        for ticket in stray {
            self.cache().unpin(ticket); // release so the run stays clean
        }
        if !leaked.is_empty() {
            return Err(format!(
                "pin leak: tickets never unpinned at thread exit: {}",
                leaked.join(", ")
            ));
        }
        if !self.fingerprint_seqs.is_empty() {
            let cache = self.cache();
            let stats = cache.stats();
            let mut fp = format!(
                "usage={} pinned={} insertions={} evictions={} hits={}",
                cache.usage_bytes(),
                cache.pinned_bytes(),
                stats.insertions,
                stats.evictions,
                stats.hits
            );
            for seq in &self.fingerprint_seqs {
                let _ = write!(fp, " probe={}", cache.longest_cached_prefix_len(seq));
            }
            self.fingerprints.insert(fp);
        }
        Ok(())
    }
}

/// A built scenario: the program, its replay world, and the budget the
/// expectation is stated against.
pub struct Scenario {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// The virtual threads.
    pub program: Program,
    /// The replay world.
    pub world: CacheWorld,
}

impl Scenario {
    /// Explores the scenario under `budget` schedules.
    pub fn run(&mut self, budget: usize) -> Exploration {
        explore(&self.program, &mut self.world, budget)
    }
}

fn seq(root: Token, len: usize) -> Vec<Token> {
    (0..len as Token).map(|i| root + i).collect()
}

fn wlock(shard: usize) -> Vec<(usize, LockMode)> {
    vec![(shard, LockMode::Exclusive)]
}

fn rlock(shard: usize) -> Vec<(usize, LockMode)> {
    vec![(shard, LockMode::Shared)]
}

fn op(label: &str, locks: Vec<(usize, LockMode)>) -> Op {
    Op {
        label: label.to_owned(),
        locks,
    }
}

/// PR 6's mid-decode eviction race as a model-check scenario.
///
/// Setup: a 128-token `base` prefix is cached. Thread A is a request
/// decoding against it: it pins the admission-time hit path, performs a
/// decode-window read (which must still see the full hit), and unpins at
/// completion. Thread B is concurrent admission traffic: two inserts
/// whose combined footprint forces eviction pressure in the same shard.
///
/// With `pinned = false` the cache reproduces the pre-PR-6 behavior and
/// some schedule evicts `base` between A's pin and its decode read; with
/// `pinned = true` (the shipped default) no schedule can.
#[must_use]
pub fn mid_decode_eviction(pinned: bool) -> Scenario {
    let model = ModelConfig::transformer_7b();
    let bytes = model.kv_bytes_per_token();
    let base = seq(1, 128);
    let out = seq(100_000, 8);
    let filler1 = seq(200_000, 128);
    let filler2 = seq(300_000, 128);
    // base+out (136) + one filler (136) fit; the second filler does not,
    // so its admission must evict a whole earlier sequence.
    let capacity = 280 * bytes;
    let builder = HybridPrefixCache::builder(model)
        .capacity_bytes(capacity)
        .policy(EvictionPolicy::Lru)
        .in_flight_pinning(pinned);
    let actions = vec![
        vec![
            CacheOp::Pin {
                seq: base.clone(),
                slot: 0,
            },
            CacheOp::DecodeRead { slot: 0 },
            CacheOp::Unpin { slot: 0 },
        ],
        vec![
            CacheOp::Insert {
                seq: filler1,
                out: out.clone(),
            },
            CacheOp::Insert {
                seq: filler2,
                out: out.clone(),
            },
        ],
    ];
    let program = Program {
        threads: vec![
            vec![
                op("pin(base)", wlock(0)),
                op("decode-read(base)", rlock(0)),
                op("unpin(base)", wlock(0)),
            ],
            vec![
                op("insert(filler1)", wlock(0)),
                op("insert(filler2)", wlock(0)),
            ],
        ],
    };
    Scenario {
        name: if pinned {
            "mid-decode-eviction (pinned)"
        } else {
            "mid-decode-eviction (unpinned)"
        },
        program,
        world: CacheWorld::new(builder, 1, vec![(base, out)], actions, Vec::new()),
    }
}

/// Three threads over four shards: two writers whose inserts route to the
/// same and to different shards, and a reader probing concurrently.
///
/// Expectation: no violation, no deadlock, and — because probes take read
/// locks and never mutate, and distinct-prefix inserts commute — every
/// linearization ends in the *same* final state (asserted via the
/// fingerprint set).
#[must_use]
pub fn cross_shard_commutation() -> Scenario {
    let model = ModelConfig::transformer_7b();
    let builder = HybridPrefixCache::builder(model)
        .capacity_bytes(1 << 30)
        .policy(EvictionPolicy::Lru);
    let shards = 4usize;
    // Find roots on two different shards, deterministically.
    let probe_cache = ShardedCache::new(builder.clone(), shards);
    let x = (0..u32::MAX)
        .map(|r| seq(r * 1000 + 1, 32))
        .find(|s| probe_cache.shard_of(s) == 0)
        .expect("invariant: some root hashes to shard 0");
    let y = (0..u32::MAX)
        .map(|r| seq(r * 1000 + 7, 32))
        .find(|s| probe_cache.shard_of(s) == 1)
        .expect("invariant: some root hashes to shard 1");
    let x2 = {
        // Same first token as x → same shard, diverging tail.
        let mut s = x.clone();
        for (i, t) in s.iter_mut().enumerate().skip(1) {
            *t = 500_000 + i as Token;
        }
        s
    };
    let out = seq(900_000, 4);
    let actions = vec![
        vec![
            CacheOp::Insert {
                seq: x.clone(),
                out: out.clone(),
            },
            CacheOp::Insert {
                seq: x2.clone(),
                out: out.clone(),
            },
        ],
        vec![CacheOp::Insert {
            seq: y.clone(),
            out: out.clone(),
        }],
        vec![
            CacheOp::Probe { seq: x.clone() },
            CacheOp::Probe { seq: y.clone() },
        ],
    ];
    let program = Program {
        threads: vec![
            vec![op("insert(x)", wlock(0)), op("insert(x2)", wlock(0))],
            vec![op("insert(y)", wlock(1))],
            vec![op("probe(x)", rlock(0)), op("probe(y)", rlock(1))],
        ],
    };
    Scenario {
        name: "cross-shard-commutation",
        program,
        world: CacheWorld::new(builder, shards, Vec::new(), actions, vec![x, x2, y]),
    }
}

/// Two requests pin overlapping paths concurrently; refcounts must
/// balance to zero in every schedule, and no decode window may be
/// violated (pinning on — this is the shipped configuration).
#[must_use]
pub fn overlapping_pins_balance() -> Scenario {
    let model = ModelConfig::transformer_7b();
    let builder = HybridPrefixCache::builder(model)
        .capacity_bytes(1 << 30)
        .policy(EvictionPolicy::Lru);
    let base = seq(1, 64);
    let out = seq(100_000, 4);
    let actions = vec![
        vec![
            CacheOp::Pin {
                seq: base.clone(),
                slot: 0,
            },
            CacheOp::DecodeRead { slot: 0 },
            CacheOp::Unpin { slot: 0 },
        ],
        vec![
            CacheOp::Pin {
                seq: base.clone(),
                slot: 1,
            },
            CacheOp::DecodeRead { slot: 1 },
            CacheOp::Unpin { slot: 1 },
        ],
    ];
    let program = Program {
        threads: vec![
            vec![
                op("pin/a", wlock(0)),
                op("read/a", rlock(0)),
                op("unpin/a", wlock(0)),
            ],
            vec![
                op("pin/b", wlock(0)),
                op("read/b", rlock(0)),
                op("unpin/b", wlock(0)),
            ],
        ],
    };
    Scenario {
        name: "overlapping-pins-balance",
        program,
        world: CacheWorld::new(builder, 1, vec![(base.clone(), out)], actions, vec![base]),
    }
}

/// A thread that pins and exits without unpinning: the checker's leak
/// rule must flag it (self-test of leak detection).
#[must_use]
pub fn leaky_pin() -> Scenario {
    let model = ModelConfig::transformer_7b();
    let builder = HybridPrefixCache::builder(model)
        .capacity_bytes(1 << 30)
        .policy(EvictionPolicy::Lru);
    let base = seq(1, 64);
    let out = seq(100_000, 4);
    let actions = vec![vec![CacheOp::Pin {
        seq: base.clone(),
        slot: 0,
    }]];
    let program = Program {
        threads: vec![vec![op("pin-and-forget", wlock(0))]],
    };
    Scenario {
        name: "leaky-pin (self-test)",
        program,
        world: CacheWorld::new(builder, 1, vec![(base, out)], actions, Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUDGET: usize = 4096;

    #[test]
    fn unpinned_race_is_caught_within_budget() {
        let mut s = mid_decode_eviction(false);
        let exp = s.run(BUDGET);
        assert!(
            !exp.budget_exhausted,
            "the bounded space must be fully explored within the budget"
        );
        assert!(
            !exp.violations.is_empty(),
            "disabling the pin filter must resurface PR 6's race"
        );
        assert!(exp.violations[0].message.contains("mid-decode eviction"));
    }

    #[test]
    fn pinned_build_passes_every_schedule() {
        let mut s = mid_decode_eviction(true);
        let exp = s.run(BUDGET);
        assert!(!exp.budget_exhausted);
        assert!(
            exp.violations.is_empty(),
            "pinning must protect every schedule: {:?}",
            exp.violations
        );
        assert!(exp.deadlocks.is_empty());
        assert!(exp.lock_order_cycle().is_none());
    }

    #[test]
    fn the_race_needs_a_specific_interleaving() {
        // Sanity: the violating schedules are a strict subset — the race
        // is an interleaving bug, not a logic bug on every path.
        let mut s = mid_decode_eviction(false);
        let exp = s.run(BUDGET);
        assert!(exp.violations.len() < exp.linearizations);
    }

    #[test]
    fn cross_shard_final_state_is_schedule_independent() {
        let mut s = cross_shard_commutation();
        let exp = s.run(BUDGET);
        assert!(exp.violations.is_empty(), "{:?}", exp.violations);
        assert!(exp.deadlocks.is_empty());
        assert_eq!(
            s.world.fingerprints.len(),
            1,
            "probes must not perturb state and distinct-prefix inserts \
             must commute: {:?}",
            s.world.fingerprints
        );
    }

    #[test]
    fn overlapping_pins_always_balance() {
        let mut s = overlapping_pins_balance();
        let exp = s.run(BUDGET);
        assert!(exp.violations.is_empty(), "{:?}", exp.violations);
        assert_eq!(s.world.fingerprints.len(), 1);
        assert!(
            exp.max_concurrent_readers >= 2,
            "read locks must admit concurrent decode-window probers"
        );
    }

    #[test]
    fn leak_detector_flags_an_unredeemed_pin() {
        let mut s = leaky_pin();
        let exp = s.run(BUDGET);
        assert!(!exp.violations.is_empty());
        assert!(exp.violations[0].message.contains("pin leak"));
    }
}
