//! The `marconi-check` contract rules.
//!
//! Each rule encodes an invariant this repository's results depend on (see
//! `docs/verification.md` for the catalog). Rules operate on the token
//! stream from [`crate::lexer`], skipping `#[cfg(test)]` / `#[test]` spans
//! — the contracts constrain *lib* code, while tests may freely use
//! wall-clocks or `unwrap()`.
//!
//! | rule id | contract |
//! |---|---|
//! | `wall-clock` | reports are pure functions of trace + config: no `Instant`, `SystemTime`, or `thread_rng` in the deterministic crates |
//! | `hash-iter` | no iteration over `HashMap`/`HashSet` (nondeterministic order) in the deterministic crates |
//! | `unwrap` | no `.unwrap()` in non-test lib code |
//! | `expect-message` | every `.expect(...)` names the violated contract (`"invariant: …"` or `"lock: …"`) |
//! | `must-use-handle` | leak-prone handle types (`*Ticket`, `*Guard`, `*Handle`, `*Cursor`) carry `#[must_use]` |
//! | `edge-clone` | radix hot paths never materialize edge tokens: no `.clone()`/`.to_vec()` in `crates/radix/src` |
//! | `no-print` | deterministic lib code never writes to stdio: no `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` — observability goes through a `TraceSink` |
//! | `cursor-deref` | a cursor's node id is only meaningful after its generation check: no `<cursor>.node` outside the `resume` validators (PR 10) |
//!
//! A line can waive a rule with `// check:allow(rule-id): reason` on the
//! same or the preceding line; the reason is mandatory so waivers stay
//! auditable.

use crate::lexer::{lex, Lexed, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// A single rule finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// File the finding is in (as given to the linter).
    pub file: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Rule id, e.g. `wall-clock`.
    pub rule: &'static str,
    /// Human-readable description of the violated contract.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Which crates the lint pass walks, relative to the workspace root.
///
/// Benches and the figures binary live in `crates/bench` and are *not*
/// listed: they legitimately measure wall-clock time
/// (`eviction_pressure.rs` et al.), which is exactly the allowlist the
/// rules intend.
pub const LINTED_CRATES: [&str; 6] = [
    "crates/core",
    "crates/radix",
    "crates/sim",
    "crates/workload",
    "crates/metrics",
    "crates/trace",
];

/// Identifiers banned by the `wall-clock` rule.
const WALL_CLOCK_IDENTS: [&str; 3] = ["Instant", "SystemTime", "thread_rng"];

/// `.expect(...)` messages must start with one of these, naming the
/// contract whose violation makes the panic unreachable.
const EXPECT_PREFIXES: [&str; 2] = ["invariant:", "lock:"];

/// Handle-type name suffixes that must carry `#[must_use]` (dropping one
/// on the floor leaks the resource it tracks — e.g. a `PinTicket` leak
/// pins a cache path forever, and a dropped `MatchCursor` silently
/// forfeits the session fast path back to O(prompt) root walks).
const MUST_USE_SUFFIXES: [&str; 4] = ["Ticket", "Guard", "Handle", "Cursor"];

/// Methods banned by `edge-clone` in radix hot paths: since PR 8 edge
/// labels are `(offset, len)` slices of the tree's shared token store, and
/// these calls are how O(edge) byte copies sneak back in.
const EDGE_CLONE_METHODS: [&str; 2] = ["clone", "to_vec"];

/// Stdio macros banned by `no-print`: the flight recorder exists precisely
/// so lib code never narrates to a terminal, and `dbg!` left behind after a
/// debugging session perturbs timing and pollutes captured output.
const PRINT_MACROS: [&str; 5] = ["println", "eprintln", "print", "eprint", "dbg"];

/// Hash-container iteration methods with order-dependent results.
const HASH_ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

/// Lints one file's source, returning all findings.
#[must_use]
pub fn lint_source(file: &Path, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let test = test_spans(toks);
    let waivers = waivers(&lexed);
    let mut out = Vec::new();

    let waived = |line: u32, rule: &str| -> bool {
        [line, line.saturating_sub(1)]
            .iter()
            .any(|l| waivers.get(l).is_some_and(|rules| rules.contains(rule)))
    };
    let mut push = |line: u32, rule: &'static str, message: String| {
        if !waived(line, rule) {
            out.push(Violation {
                file: file.to_owned(),
                line,
                rule,
                message,
            });
        }
    };

    let hash_bound = hash_bound_idents(toks);
    let radix_hot = is_radix_hot_path(file);

    for (i, t) in toks.iter().enumerate() {
        if test[i] {
            continue;
        }
        // wall-clock: reports must be pure functions of trace + config.
        if t.kind == TokKind::Ident && WALL_CLOCK_IDENTS.contains(&t.text.as_str()) {
            push(
                t.line,
                "wall-clock",
                format!(
                    "`{}` breaks determinism: reports must be pure functions of \
                     trace + config (benches in crates/bench may time things)",
                    t.text
                ),
            );
        }
        // no-print: lib code must stay silent; tracing goes through sinks.
        // The bracket check distinguishes `dbg!(x)` from `dbg != x`.
        if t.kind == TokKind::Ident
            && PRINT_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|b| b.is_punct('!'))
            && toks
                .get(i + 2)
                .is_some_and(|b| b.is_punct('(') || b.is_punct('[') || b.is_punct('{'))
        {
            push(
                t.line,
                "no-print",
                format!(
                    "`{}!` writes to stdio from deterministic lib code; emit a \
                     trace event through the attached `TraceSink` instead (or \
                     waive with a reason for CLI surfaces)",
                    t.text
                ),
            );
        }
        // cursor-deref: a cursor's `node` is a generation-tagged id whose
        // slot may have been freed or recycled; the only sound dereference
        // is through the `resume*` validators (which carry the waiver).
        // Flags `cursor.node` field reads and `.node()` calls alike on any
        // receiver whose name contains "cursor".
        if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_ident("node"))
            && i > 0
            && toks[i - 1].kind == TokKind::Ident
            && toks[i - 1].text.to_ascii_lowercase().contains("cursor")
        {
            push(
                t.line,
                "cursor-deref",
                format!(
                    "`{}.node` reads a cursor's node id without the generation \
                     check; resume through `RadixTree::resume`/`cursor_at` (or \
                     waive with a reason inside a validator)",
                    toks[i - 1].text
                ),
            );
        }
        // unwrap / expect-message.
        if t.is_punct('.') {
            let (Some(name), paren) = (toks.get(i + 1), toks.get(i + 2)) else {
                continue;
            };
            if !paren.is_some_and(|p| p.is_punct('(')) {
                continue;
            }
            if name.is_ident("unwrap") {
                push(
                    name.line,
                    "unwrap",
                    "`.unwrap()` in non-test lib code: convert to \
                     `.expect(\"invariant: …\")` naming the violated contract, \
                     or propagate the error"
                        .to_owned(),
                );
            } else if name.is_ident("expect") {
                let msg = toks.get(i + 3);
                let ok = msg.is_some_and(|m| {
                    m.kind == TokKind::Str && EXPECT_PREFIXES.iter().any(|p| m.text.starts_with(p))
                });
                if !ok {
                    push(
                        name.line,
                        "expect-message",
                        "`.expect(…)` must take a string literal naming the \
                         violated contract, prefixed `invariant:` or `lock:`"
                            .to_owned(),
                    );
                }
            } else if radix_hot && EDGE_CLONE_METHODS.contains(&name.text.as_str()) {
                push(
                    name.line,
                    "edge-clone",
                    format!(
                        "`.{}()` in a radix hot path materializes token bytes; \
                         edge labels are (offset, len) slices of the shared \
                         store — use `edge_tokens()` / offset arithmetic, or \
                         waive with a reason",
                        name.text
                    ),
                );
            } else if HASH_ITER_METHODS.contains(&name.text.as_str())
                && i > 0
                && toks[i - 1].kind == TokKind::Ident
                && hash_bound.contains(&toks[i - 1].text)
            {
                push(
                    name.line,
                    "hash-iter",
                    format!(
                        "iterating hash container `{}` yields nondeterministic \
                         order; use a BTree container or sort first",
                        toks[i - 1].text
                    ),
                );
            }
        }
        // hash-iter via for loops: `for x in &map` / `for x in map`.
        if t.is_ident("for") {
            // Find the matching `in` at depth 0 (patterns can contain
            // parens/brackets but not braces).
            let mut depth = 0i32;
            for j in i + 1..toks.len().min(i + 40) {
                let u = &toks[j];
                if u.is_punct('(') || u.is_punct('[') {
                    depth += 1;
                } else if u.is_punct(')') || u.is_punct(']') {
                    depth -= 1;
                } else if u.is_punct('{') {
                    break;
                } else if depth == 0 && u.is_ident("in") {
                    let mut k = j + 1;
                    while toks
                        .get(k)
                        .is_some_and(|v| v.is_punct('&') || v.is_ident("mut"))
                    {
                        k += 1;
                    }
                    // Walk a field path `a.b.c` to its final segment.
                    while toks.get(k).is_some_and(|v| v.kind == TokKind::Ident)
                        && toks.get(k + 1).is_some_and(|v| v.is_punct('.'))
                        && toks.get(k + 2).is_some_and(|v| v.kind == TokKind::Ident)
                    {
                        k += 2;
                    }
                    if let Some(v) = toks.get(k) {
                        if v.kind == TokKind::Ident
                            && hash_bound.contains(&v.text)
                            && toks.get(k + 1).is_some_and(|w| w.is_punct('{'))
                        {
                            push(
                                v.line,
                                "hash-iter",
                                format!(
                                    "`for … in {}` iterates a hash container in \
                                     nondeterministic order; use a BTree container \
                                     or sort first",
                                    v.text
                                ),
                            );
                        }
                    }
                    break;
                }
            }
        }
        // must-use-handle.
        if t.is_ident("struct") {
            let Some(name) = toks.get(i + 1) else {
                continue;
            };
            if name.kind == TokKind::Ident
                && MUST_USE_SUFFIXES
                    .iter()
                    .any(|s| name.text.ends_with(s) && name.text.len() > s.len())
                && !has_preceding_attr(toks, i, "must_use")
            {
                push(
                    name.line,
                    "must-use-handle",
                    format!(
                        "handle type `{}` must be `#[must_use]`: dropping it \
                         unredeemed leaks the resource it tracks",
                        name.text
                    ),
                );
            }
        }
    }
    out
}

/// Lints every `src/**/*.rs` file of the six deterministic crates under
/// `root`, plus the tuner-fidelity mirror check on `hybrid.rs`.
///
/// # Errors
///
/// Returns an error when the workspace layout is unreadable (missing crate
/// directories), so a mis-pointed `--root` fails loudly instead of
/// reporting a clean empty run.
pub fn lint_workspace(root: &Path) -> Result<Vec<Violation>, String> {
    let mut files = Vec::new();
    for krate in LINTED_CRATES {
        let dir = root.join(krate).join("src");
        collect_rs_files(&dir, &mut files)
            .map_err(|e| format!("cannot walk {}: {e}", dir.display()))?;
    }
    files.sort();
    let mut out = Vec::new();
    for f in files {
        let src =
            std::fs::read_to_string(&f).map_err(|e| format!("cannot read {}: {e}", f.display()))?;
        let rel = f.strip_prefix(root).unwrap_or(&f);
        out.extend(lint_source(rel, &src));
    }
    let hybrid = root.join("crates/core/src/hybrid.rs");
    let src = std::fs::read_to_string(&hybrid)
        .map_err(|e| format!("cannot read {}: {e}", hybrid.display()))?;
    out.extend(crate::mirror::check_mirror_source(
        Path::new("crates/core/src/hybrid.rs"),
        &src,
        &crate::mirror::MirrorSpec::hybrid(),
    ));
    Ok(out)
}

/// `true` for files the `edge-clone` rule constrains: the arena engine's
/// sources under `crates/radix/src`. (The verbatim pre-refactor oracle
/// `legacy.rs`, whose `Vec<Token>` edges cloned by design, was the sole
/// exemption until its retirement in PR 10.)
fn is_radix_hot_path(file: &Path) -> bool {
    let p = file.to_string_lossy().replace('\\', "/");
    p.contains("crates/radix/src/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Marks every token inside a `#[cfg(test)]` or `#[test]` item (the item
/// the attribute is attached to, through its closing `}`, `;`, or `,`).
fn test_spans(toks: &[Tok]) -> Vec<bool> {
    let mut test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct('#') {
            i += 1;
            continue;
        }
        // `#![cfg(test)]` (inner attribute): the whole file is test code.
        let inner = toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
        let open = i + 1 + usize::from(inner);
        if !toks.get(open).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        let Some(close) = matching(toks, open, '[', ']') else {
            break;
        };
        let attr = &toks[open + 1..close];
        let is_test_attr = attr.first().is_some_and(|t| t.is_ident("test"))
            || (attr.first().is_some_and(|t| t.is_ident("cfg"))
                && attr.iter().any(|t| t.is_ident("test")));
        if !is_test_attr {
            i = close + 1;
            continue;
        }
        if inner {
            test.iter_mut().for_each(|t| *t = true);
            return test;
        }
        // Skip any further attributes, then span the item.
        let mut j = close + 1;
        while toks.get(j).is_some_and(|t| t.is_punct('#'))
            && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match matching(toks, j + 1, '[', ']') {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        let mut end = toks.len().saturating_sub(1);
        let mut depth = 0i32;
        for (k, t) in toks.iter().enumerate().skip(j) {
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('{') && depth == 0 {
                end = matching(toks, k, '{', '}').unwrap_or(end);
                break;
            } else if (t.is_punct(';') || t.is_punct(',')) && depth == 0 {
                end = k;
                break;
            }
        }
        test[i..=end.min(toks.len() - 1)]
            .iter_mut()
            .for_each(|t| *t = true);
        i = end + 1;
    }
    test
}

/// Index of the token closing the bracket opened at `open`.
fn matching(toks: &[Tok], open: usize, o: char, c: char) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Identifiers bound to `HashMap`/`HashSet` anywhere in the file, from
/// `name: HashMap<…>` (fields, params) and `let name = HashMap::new()`
/// style bindings. File-local and flow-insensitive — good enough, since
/// shadowing a hash map with a non-hash binding of the same name would be
/// its own readability bug.
fn hash_bound_idents(toks: &[Tok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk back over the path qualifier `std :: collections ::` and
        // reference sigils (`&`, `&'a mut`).
        let mut j = i;
        loop {
            if j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
                j -= 3; // over `:: segment`
            } else if j >= 1
                && (toks[j - 1].is_punct('&')
                    || toks[j - 1].is_ident("mut")
                    || toks[j - 1].kind == TokKind::Lifetime)
            {
                j -= 1;
            } else {
                break;
            }
        }
        // `name : [std::collections::] HashMap` — fields, lets, params.
        if j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].kind == TokKind::Ident {
            out.insert(toks[j - 2].text.clone());
        }
        // `let [mut] name = HashMap::…` / `= HashSet::…`.
        if j >= 2 && toks[j - 1].is_punct('=') && toks[j - 2].kind == TokKind::Ident {
            out.insert(toks[j - 2].text.clone());
        }
    }
    out
}

/// `true` if the item starting at token `item` (e.g. a `struct` keyword)
/// has `#[must_use]` among the attributes immediately preceding it.
fn has_preceding_attr(toks: &[Tok], item: usize, attr: &str) -> bool {
    // Walk backwards over visibility and attribute groups.
    let mut j = item;
    while j > 0 {
        let prev = &toks[j - 1];
        if prev.is_ident("pub") {
            j -= 1;
        } else if prev.is_punct(')') {
            // pub(crate) etc. — walk back to the '(' and the `pub`.
            let mut depth = 0i32;
            let mut k = j - 1;
            loop {
                if toks[k].is_punct(')') {
                    depth += 1;
                } else if toks[k].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    return false;
                }
                k -= 1;
            }
            j = k;
        } else if prev.is_punct(']') {
            // An attribute `#[…]` — scan it for the ident.
            let mut depth = 0i32;
            let mut k = j - 1;
            loop {
                if toks[k].is_punct(']') {
                    depth += 1;
                } else if toks[k].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    return false;
                }
                k -= 1;
            }
            if k == 0 || !toks[k - 1].is_punct('#') {
                return false;
            }
            if toks[k..j].iter().any(|t| t.is_ident(attr)) {
                return true;
            }
            j = k - 1;
        } else {
            return false;
        }
    }
    false
}

/// Waiver annotations by line: `// check:allow(rule-a, rule-b): reason`.
/// Waivers without a reason (no text after the closing paren) are ignored.
fn waivers(lexed: &Lexed) -> BTreeMap<u32, BTreeSet<String>> {
    let mut out: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for c in &lexed.comments {
        let Some(pos) = c.text.find("check:allow(") else {
            continue;
        };
        let rest = &c.text[pos + "check:allow(".len()..];
        let Some(end) = rest.find(')') else { continue };
        if rest[end + 1..].trim_start_matches([':', ' ']).is_empty() {
            continue; // a waiver must carry a reason
        }
        for rule in rest[..end].split(',') {
            out.entry(c.line)
                .or_default()
                .insert(rule.trim().to_owned());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Violation> {
        lint_source(Path::new("test.rs"), src)
    }

    fn rules(src: &str) -> Vec<&'static str> {
        lint(src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn wall_clock_is_denied_outside_tests() {
        assert_eq!(rules("fn f() { let t = Instant::now(); }"), ["wall-clock"]);
        assert_eq!(
            rules("use std::time::SystemTime;\nfn g() {}"),
            ["wall-clock"]
        );
        assert_eq!(rules("fn f() { let r = thread_rng(); }"), ["wall-clock"]);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); Instant::now(); }\n}";
        assert!(lint(src).is_empty());
        let src = "#[test]\nfn t() { x.unwrap(); }";
        assert!(lint(src).is_empty());
        let src = "#[cfg(test)]\nuse std::time::Instant;\nfn f() { let _ = 1; }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn cfg_test_field_is_exempt_but_siblings_are_not() {
        let src = "struct S {\n #[cfg(test)]\n log: Instant,\n later: SystemTime,\n}";
        assert_eq!(rules(src), ["wall-clock"]);
        assert_eq!(lint(src)[0].line, 4);
    }

    #[test]
    fn instantaneous_is_not_instant() {
        assert!(lint("fn f() { let m = ServiceMode::Instantaneous; }").is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        assert!(lint("fn f() { let s = \"Instant .unwrap()\"; } // Instant").is_empty());
    }

    #[test]
    fn unwrap_denied_expect_needs_contract_prefix() {
        assert_eq!(rules("fn f() { x.unwrap(); }"), ["unwrap"]);
        assert_eq!(rules("fn f() { x.expect(\"oops\"); }"), ["expect-message"]);
        assert!(lint("fn f() { x.expect(\"invariant: tree is non-empty\"); }").is_empty());
        assert!(lint("fn f() { l.read().expect(\"lock: shard poisoned\"); }").is_empty());
        // unwrap_or and friends are fine.
        assert!(lint("fn f() { x.unwrap_or(0); y.unwrap_or_default(); }").is_empty());
    }

    #[test]
    fn hash_iteration_is_denied_direct_and_for_loops() {
        let src = "struct S { index: HashMap<u32, u32> }\n\
                   fn f(s: &S) { for (k, v) in &s.index {} }";
        // field access `s.index` — the final ident before `{` is `index`.
        assert_eq!(rules(src), ["hash-iter"]);
        let src = "fn f() { let mut m = HashMap::new(); for k in m.keys() {} }";
        assert_eq!(rules(src), ["hash-iter"]);
        let src = "fn f(m: &HashMap<u32, u32>) { let v: Vec<_> = m.values().collect(); }";
        assert_eq!(rules(src), ["hash-iter"]);
    }

    #[test]
    fn hash_point_lookups_are_fine() {
        let src = "struct S { index: HashMap<u64, u32> }\n\
                   fn f(s: &mut S) { s.index.get(&1); s.index.insert(1, 2); s.index.remove(&1); }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn btree_iteration_is_fine() {
        let src = "fn f(m: &BTreeMap<u32, u32>) { for (k, v) in m { let _ = (k, v); } }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn must_use_handles() {
        assert_eq!(
            rules("pub struct PinTicket { node: u32 }"),
            ["must-use-handle"]
        );
        assert!(lint("#[must_use]\npub struct PinTicket { node: u32 }").is_empty());
        assert!(lint("#[derive(Debug)]\n#[must_use]\npub struct FooGuard;").is_empty());
        // A struct merely *named* Handle (no prefix) is not a handle type.
        assert!(lint("pub struct Handle;").is_empty());
        assert!(lint("pub struct Plain { x: u32 }").is_empty());
        // Cursors are handles since PR 10: dropping one forfeits the fast
        // path, so the suffix list covers them too.
        assert_eq!(
            rules("pub struct MatchCursor { node: u32 }"),
            ["must-use-handle"]
        );
        assert!(lint("#[must_use]\npub struct MatchCursor { node: u32 }").is_empty());
    }

    #[test]
    fn cursor_node_deref_needs_generation_check() {
        assert_eq!(
            rules("fn f(cursor: &C) -> u32 { cursor.node }"),
            ["cursor-deref"]
        );
        // Method-call form and compound receiver names are caught too.
        assert_eq!(
            rules("fn f() { let id = my_cursor.node(); }"),
            ["cursor-deref"]
        );
        // Non-cursor receivers and other cursor fields are fine.
        assert!(lint("fn f(tree: &T) -> u32 { tree.node }").is_empty());
        assert!(lint("fn f(cursor: &C) -> u64 { cursor.matched_len }").is_empty());
        // The resume validators waive the rule with a reason.
        let src = "// check:allow(cursor-deref): this IS the generation check\n\
                   fn resume(cursor: &C) -> u32 { cursor.node }";
        assert!(lint(src).is_empty());
        // Tests dissect cursors freely.
        let src = "#[test]\nfn t() { assert_eq!(cursor.node, expected); }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn edge_clone_denied_in_radix_hot_paths_only() {
        let src = "fn merge(head: &[u32]) -> Vec<u32> { head.to_vec() }";
        let hot = Path::new("crates/radix/src/tree.rs");
        let found = lint_source(hot, src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "edge-clone");
        let src = "fn snap(edge: &Vec<u32>) -> Vec<u32> { edge.clone() }";
        assert_eq!(lint_source(hot, src)[0].rule, "edge-clone");
        // Other crates clone freely; every radix source is a hot path now
        // that the `legacy.rs` oracle is retired.
        assert!(lint_source(Path::new("crates/core/src/hybrid.rs"), src).is_empty());
        assert_eq!(
            lint_source(Path::new("crates/radix/src/legacy.rs"), src)[0].rule,
            "edge-clone"
        );
        // Test spans inside radix sources are exempt.
        let src = "#[cfg(test)]\nmod tests {\n fn f(v: &[u32]) { v.to_vec(); }\n}";
        assert!(lint_source(hot, src).is_empty());
        // Waivers work as for every other rule.
        let src = "// check:allow(edge-clone): dot export, off the hot path\n\
                   fn dump(e: &[u32]) -> Vec<u32> { e.to_vec() }";
        assert!(lint_source(hot, src).is_empty());
    }

    #[test]
    fn print_macros_denied_outside_tests() {
        assert_eq!(rules("fn f() { println!(\"hi\"); }"), ["no-print"]);
        assert_eq!(rules("fn f() { eprintln!(\"warn\"); }"), ["no-print"]);
        assert_eq!(rules("fn f() { let v = dbg!(x); }"), ["no-print"]);
        // `!=` is not a macro bang; writeln! targets a caller's writer.
        assert!(lint("fn f(x: u32) -> bool { dbg != x }").is_empty());
        assert!(lint("fn f(w: &mut W) { writeln!(w, \"ok\"); }").is_empty());
        // Tests may print freely.
        let src = "#[test]\nfn t() { println!(\"debugging a test\"); }";
        assert!(lint(src).is_empty());
        // Waivers carry the usual reason requirement.
        let src = "// check:allow(no-print): CLI progress line, not lib code\n\
                   fn f() { println!(\"running\"); }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn waiver_with_reason_suppresses_waiver_without_does_not() {
        let src = "// check:allow(wall-clock): bench timing, not a report\n\
                   fn f() { let t = Instant::now(); }";
        assert!(lint(src).is_empty());
        let src = "// check:allow(wall-clock)\nfn f() { let t = Instant::now(); }";
        assert_eq!(rules(src), ["wall-clock"]);
        // Waiving one rule does not waive another.
        let src = "// check:allow(unwrap): reviewed\nfn f() { Instant::now(); }";
        assert_eq!(rules(src), ["wall-clock"]);
    }
}
