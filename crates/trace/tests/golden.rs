//! Golden-snapshot tests pinning both exporter schemas.
//!
//! The JSONL and Chrome-trace formats are consumed outside this workspace
//! (scripts, Perfetto), so format drift must be deliberate: these tests
//! compare exporter output byte-for-byte against checked-in goldens. To
//! bless an intentional schema change, run
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p marconi-trace --test golden
//! ```
//!
//! and review the diff of `tests/golden/` like any other code change.

use marconi_trace::{
    MissCause, PressureCause, ReloadDecision, ReplicaProbe, RingRecorder, StatCounters, TraceEvent,
    TraceTier, Tracer, VictimAction, VictimRecord,
};
use std::path::PathBuf;

/// One of every event kind, with fixed values, pushed through a real
/// recorder so sequence numbering is exercised too.
fn seeded_recording() -> RingRecorder {
    let (tracer, recorder) = Tracer::to_sink(RingRecorder::new(64));
    let cache = || -> std::sync::Arc<str> { "marconi[flop-aware]".into() };
    tracer.emit(|| TraceEvent::Lookup {
        ts: 0.25,
        cache: cache(),
        input_len: 96,
        matched: 0,
        host_tokens: 0,
        raw_matched: 0,
        attribution: Some(MissCause::Cold),
    });
    tracer.emit(|| TraceEvent::Admission {
        ts: 0.25,
        cache: cache(),
        input_len: 96,
        output_len: 32,
        checkpoints: 2,
        new_tokens: 128,
    });
    tracer.emit(|| TraceEvent::EdgeSplit {
        ts: 0.5,
        cache: cache(),
        node: 3,
        new_leaf: Some(4),
    });
    tracer.emit(|| TraceEvent::Pin {
        ts: 0.75,
        cache: cache(),
        node: 4,
    });
    tracer.emit(|| TraceEvent::EvictionEpisode {
        ts: 1.0,
        cache: cache(),
        tier: TraceTier::Device,
        cause: PressureCause::DeviceCapacity,
        pool_len: 5,
        alpha: 2.0,
        victims: vec![
            VictimRecord {
                node: 2,
                depth: 128,
                last_access: 0.25,
                flop_efficiency: 0.5,
                bytes: 4096,
                action: VictimAction::Demoted,
            },
            VictimRecord {
                node: 5,
                depth: 64,
                last_access: 0.125,
                flop_efficiency: 0.25,
                bytes: 2048,
                action: VictimAction::Evicted,
            },
        ],
    });
    tracer.emit(|| TraceEvent::EdgeMerge {
        ts: 1.0,
        cache: cache(),
        removed: 5,
        merged_into: 6,
    });
    tracer.emit(|| TraceEvent::Unpin {
        ts: 1.25,
        cache: cache(),
        node: 4,
    });
    tracer.emit(|| TraceEvent::Promotion {
        ts: 1.5,
        cache: cache(),
        tokens: 64,
    });
    tracer.emit(|| TraceEvent::Reload {
        ts: 1.5,
        cache: cache(),
        host_bytes: 1 << 20,
        load_secs: 0.004,
        recompute_secs: 0.001,
        decision: ReloadDecision::Recompute,
    });
    tracer.emit(|| TraceEvent::Lookup {
        ts: 1.75,
        cache: cache(),
        input_len: 96,
        matched: 64,
        host_tokens: 0,
        raw_matched: 80,
        attribution: Some(MissCause::NeverCheckpointedSsm),
    });
    tracer.emit(|| TraceEvent::RouterDecision {
        ts: 2.0,
        request: 7,
        chosen: 1,
        tie_break: "prefix-tokens",
        probes: vec![
            ReplicaProbe {
                replica: 0,
                matched_tokens: 0,
                host_tokens: 0,
                queued_tokens: 96,
                routed_tokens: 512,
            },
            ReplicaProbe {
                replica: 1,
                matched_tokens: 64,
                host_tokens: 0,
                queued_tokens: 0,
                routed_tokens: 256,
            },
        ],
    });
    tracer.emit(|| TraceEvent::QueueAdmission {
        ts: 2.0,
        request: 7,
        queue_depth: 2,
        queued_tokens: 192,
    });
    tracer.emit(|| TraceEvent::BatchIteration {
        ts: 2.25,
        iteration: 3,
        running: 2,
        queue_depth: 1,
    });
    tracer.emit(|| TraceEvent::Gauges {
        ts: 2.25,
        cache: cache(),
        usage_bytes: 1 << 16,
        host_usage_bytes: 1 << 12,
        pinned_nodes: 0,
        counters: StatCounters {
            lookups: 2,
            hits: 1,
            input_tokens: 192,
            hit_tokens: 64,
            host_hit_tokens: 0,
            evictions: 1,
            demotions: 1,
        },
    });
    let rec = recorder.lock().expect("lock: test-local recorder");
    rec.clone()
}

fn check_golden(name: &str, actual: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&path, actual).expect("invariant: goldens dir is writable on regen");
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {} ({e}); regenerate with GOLDEN_REGEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "exporter output drifted from {}; if the schema change is \
         deliberate, bless it with GOLDEN_REGEN=1 and review the diff",
        path.display()
    );
}

#[test]
fn jsonl_matches_golden() {
    let rec = seeded_recording();
    check_golden("trace.jsonl", &rec.to_jsonl());
}

#[test]
fn chrome_trace_matches_golden() {
    let rec = seeded_recording();
    check_golden("trace.chrome.json", &rec.to_chrome_trace());
}

#[test]
fn exports_are_deterministic() {
    let a = seeded_recording();
    let b = seeded_recording();
    assert_eq!(a.to_jsonl(), b.to_jsonl());
    assert_eq!(a.to_chrome_trace(), b.to_chrome_trace());
}
