//! The sink contract and the [`Tracer`] handle every emit site goes
//! through.

use crate::event::TraceEvent;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Receives structured events from a [`Tracer`].
///
/// `record` is called once per emitted event, in emission order; the sink
/// owns sequence numbering (see
/// [`RingRecorder`](crate::RingRecorder)). `is_enabled` is sampled **once,
/// at attach time**: a sink that returns `false` (the [`NullSink`])
/// disables the tracer outright, so emit sites never even construct the
/// event — this is what makes the off-is-free contract cheap to honor.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, event: TraceEvent);

    /// Whether attaching this sink should enable emission. Defaults to
    /// `true`; the [`NullSink`] returns `false`.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The do-nothing sink. Attaching it is indistinguishable from attaching
/// no sink at all: [`TraceSink::is_enabled`] returns `false`, the tracer
/// caches that, and every emit site reduces to one branch.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// Recovers a (possibly poisoned) mutex guard: a panicking recorder must
/// not take the serving path down with it.
fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The cloneable emission handle held by every instrumented component.
///
/// The default ([`Tracer::off`]) carries no sink; `emit` is then a single
/// branch on a cached `bool` and the event-constructing closure never
/// runs. Clones share the underlying sink, so one recorder can receive a
/// merged stream from a cache, its engine, and the router (the sink's
/// sequence numbers give the merged stream its total order).
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<Mutex<dyn TraceSink + Send>>>,
    enabled: bool,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl Tracer {
    /// The detached tracer: emits nothing, costs one branch per site.
    #[must_use]
    pub fn off() -> Self {
        Tracer::default()
    }

    /// Attaches an already-shared sink. Emission is enabled iff the sink
    /// reports [`TraceSink::is_enabled`] at this moment (sampled once).
    #[must_use]
    pub fn attached(sink: Arc<Mutex<dyn TraceSink + Send>>) -> Self {
        let enabled = lock(&sink).is_enabled();
        Tracer {
            sink: Some(sink),
            enabled,
        }
    }

    /// Wraps `sink` for attachment, returning the tracer and a shared
    /// handle for reading the sink back after the run:
    ///
    /// ```
    /// use marconi_trace::{RingRecorder, Tracer};
    /// let (tracer, recorder) = Tracer::to_sink(RingRecorder::new(1024));
    /// // … attach `tracer` to a cache / engine, run …
    /// # drop(tracer);
    /// let events = recorder.lock().unwrap().recorded();
    /// # assert_eq!(events, 0);
    /// ```
    #[must_use]
    pub fn to_sink<S: TraceSink + Send + 'static>(sink: S) -> (Self, Arc<Mutex<S>>) {
        let shared = Arc::new(Mutex::new(sink));
        let dynamic: Arc<Mutex<dyn TraceSink + Send>> = shared.clone();
        (Tracer::attached(dynamic), shared)
    }

    /// Whether emit sites should bother constructing events. Instrumented
    /// code may consult this to skip *preparatory* work (e.g. assembling
    /// per-victim breakdowns) — never to change a decision.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Emits the event produced by `make` — which runs only if the tracer
    /// is enabled, keeping disabled emission allocation-free.
    pub fn emit(&self, make: impl FnOnce() -> TraceEvent) {
        if !self.enabled {
            return;
        }
        if let Some(sink) = &self.sink {
            lock(sink).record(make());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RingRecorder;

    #[test]
    fn off_tracer_never_runs_the_closure() {
        let t = Tracer::off();
        let mut ran = false;
        t.emit(|| {
            ran = true;
            TraceEvent::Pin {
                ts: 0.0,
                cache: "".into(),
                node: 0,
            }
        });
        assert!(!ran);
        assert!(!t.is_enabled());
    }

    #[test]
    fn null_sink_disables_at_attach_time() {
        let (t, _sink) = Tracer::to_sink(NullSink);
        assert!(!t.is_enabled());
        let mut ran = false;
        t.emit(|| {
            ran = true;
            TraceEvent::Pin {
                ts: 0.0,
                cache: "".into(),
                node: 0,
            }
        });
        assert!(!ran);
    }

    #[test]
    fn clones_share_one_sequence() {
        let (t, rec) = Tracer::to_sink(RingRecorder::new(16));
        let t2 = t.clone();
        t.emit(|| TraceEvent::Pin {
            ts: 1.0,
            cache: "a".into(),
            node: 1,
        });
        t2.emit(|| TraceEvent::Unpin {
            ts: 2.0,
            cache: "a".into(),
            node: 1,
        });
        let r = rec.lock().unwrap();
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1]);
    }
}
