//! Deterministic flight recorder for the Marconi cache/sim stack.
//!
//! Every consequential decision the stack makes — admission, lookup (with
//! hit/miss attribution), eviction episodes with per-victim score
//! breakdowns, demotion/promotion, compute-or-load reloads, pin/unpin,
//! edge splits/merges, router choices, and event-sim queue/batch
//! boundaries — can be emitted as a structured [`TraceEvent`] through a
//! [`Tracer`] handle into a [`TraceSink`].
//!
//! ## The off-is-free contract
//!
//! Tracing must never change what the system *does*, only record it:
//!
//! 1. **Off is free.** A detached tracer ([`Tracer::off`], the default
//!    everywhere) reduces every emit site to a single branch on a cached
//!    `bool`; no event is even constructed. A tracer attached to the
//!    do-nothing [`NullSink`] is detected at attach time (via
//!    [`TraceSink::is_enabled`]) and behaves identically.
//! 2. **Recording is read-only.** Emit points read decision state; they
//!    never feed back into victim selection, admission, or routing.
//!    Victim logs, [`CacheStats`-style counters](StatCounters), and
//!    per-request records stay byte-identical with any sink attached.
//! 3. **Determinism.** Timestamps come from the caller's virtual clock
//!    (and a monotone sequence number assigned by the recorder) — never a
//!    wall clock — so a trace is a pure function of workload trace +
//!    config and replays byte-identically.
//!
//! ## Sinks and exporters
//!
//! - [`NullSink`] — discards everything; attaching it is free (see above).
//! - [`RingRecorder`] — a bounded in-memory ring with counter/gauge
//!   snapshots, a windowed hit rate, and a per-request
//!   [miss-attribution report](MissReport).
//! - [`to_jsonl`] / [`to_chrome_trace`] — schema-stable exporters to
//!   JSON-lines and Chrome trace-event JSON (loadable in Perfetto via
//!   <https://ui.perfetto.dev>).
//!
//! ## Miss attribution
//!
//! The [`MissLedger`] fingerprints evicted prefixes so a later lookup
//! that *would* have hit them can name its miss cause: `cold`,
//! `capacity-evicted`, `pinned-bystander`, `demoted-then-host-hit`, or
//! `never-checkpointed-ssm` (see [`MissCause`]). The ledger is maintained
//! only while a tracer is enabled, so it costs nothing when tracing is
//! off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod export;
mod ledger;
mod ring;
mod sink;

pub use event::{
    CursorFallbackCause, MissCause, PressureCause, ReloadDecision, ReplicaProbe, SeqEvent,
    StatCounters, TraceEvent, TraceTier, VictimAction, VictimRecord,
};
pub use export::{to_chrome_trace, to_jsonl};
pub use ledger::{
    fingerprint, Fingerprint, MissLedger, DEFAULT_LEDGER_CAP, FINGERPRINT_DEPTH, PROBE_BUDGET,
};
pub use ring::{MissReport, RingRecorder};
pub use sink::{NullSink, TraceSink, Tracer};
