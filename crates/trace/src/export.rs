//! Schema-stable exporters: JSON-lines and Chrome trace-event JSON.
//!
//! JSON is hand-formatted (the workspace vendors no JSON serializer);
//! the golden-snapshot tests in `tests/` pin both schemas, so format
//! changes must be deliberate.

use crate::event::{SeqEvent, TraceEvent};
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (`null` for non-finite values).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_owned()
    }
}

fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_owned(), |n| n.to_string())
}

/// The event's fields as a JSON fragment (`"k":v,…`, no braces, no
/// `seq`/`ts`/`type`) — shared by the JSONL lines and the Chrome `args`.
fn fields(ev: &TraceEvent) -> String {
    match ev {
        TraceEvent::Lookup {
            cache,
            input_len,
            matched,
            host_tokens,
            raw_matched,
            attribution,
            ..
        } => format!(
            "\"cache\":\"{}\",\"input_len\":{input_len},\"matched\":{matched},\
             \"host_tokens\":{host_tokens},\"raw_matched\":{raw_matched},\
             \"attribution\":{}",
            esc(cache),
            attribution.map_or_else(|| "null".to_owned(), |a| format!("\"{}\"", a.label())),
        ),
        TraceEvent::Admission {
            cache,
            input_len,
            output_len,
            checkpoints,
            new_tokens,
            ..
        } => format!(
            "\"cache\":\"{}\",\"input_len\":{input_len},\"output_len\":{output_len},\
             \"checkpoints\":{checkpoints},\"new_tokens\":{new_tokens}",
            esc(cache),
        ),
        TraceEvent::EdgeSplit {
            cache,
            node,
            new_leaf,
            ..
        } => format!(
            "\"cache\":\"{}\",\"node\":{node},\"new_leaf\":{}",
            esc(cache),
            opt(*new_leaf),
        ),
        TraceEvent::EdgeMerge {
            cache,
            removed,
            merged_into,
            ..
        } => format!(
            "\"cache\":\"{}\",\"removed\":{removed},\"merged_into\":{merged_into}",
            esc(cache),
        ),
        TraceEvent::EvictionEpisode {
            cache,
            tier,
            cause,
            pool_len,
            alpha,
            victims,
            ..
        } => {
            let mut vs = String::from("[");
            for (i, v) in victims.iter().enumerate() {
                if i > 0 {
                    vs.push(',');
                }
                let _ = write!(
                    vs,
                    "{{\"node\":{},\"depth\":{},\"last_access\":{},\
                     \"flop_efficiency\":{},\"bytes\":{},\"action\":\"{}\"}}",
                    v.node,
                    v.depth,
                    num(v.last_access),
                    num(v.flop_efficiency),
                    v.bytes,
                    v.action.label(),
                );
            }
            vs.push(']');
            format!(
                "\"cache\":\"{}\",\"tier\":\"{}\",\"cause\":\"{}\",\
                 \"pool_len\":{pool_len},\"alpha\":{},\"victims\":{vs}",
                esc(cache),
                tier.label(),
                cause.label(),
                num(*alpha),
            )
        }
        TraceEvent::Promotion { cache, tokens, .. } => {
            format!("\"cache\":\"{}\",\"tokens\":{tokens}", esc(cache))
        }
        TraceEvent::Pin { cache, node, .. } => {
            format!("\"cache\":\"{}\",\"node\":{node}", esc(cache))
        }
        TraceEvent::Unpin { cache, node, .. } => {
            format!("\"cache\":\"{}\",\"node\":{node}", esc(cache))
        }
        TraceEvent::Reload {
            cache,
            host_bytes,
            load_secs,
            recompute_secs,
            decision,
            ..
        } => format!(
            "\"cache\":\"{}\",\"host_bytes\":{host_bytes},\"load_secs\":{},\
             \"recompute_secs\":{},\"decision\":\"{}\"",
            esc(cache),
            num(*load_secs),
            num(*recompute_secs),
            decision.label(),
        ),
        TraceEvent::RouterDecision {
            request,
            chosen,
            tie_break,
            probes,
            ..
        } => {
            let mut ps = String::from("[");
            for (i, p) in probes.iter().enumerate() {
                if i > 0 {
                    ps.push(',');
                }
                let _ = write!(
                    ps,
                    "{{\"replica\":{},\"matched_tokens\":{},\"host_tokens\":{},\
                     \"queued_tokens\":{},\"routed_tokens\":{}}}",
                    p.replica, p.matched_tokens, p.host_tokens, p.queued_tokens, p.routed_tokens,
                );
            }
            ps.push(']');
            format!(
                "\"request\":{request},\"chosen\":{chosen},\
                 \"tie_break\":\"{tie_break}\",\"probes\":{ps}"
            )
        }
        TraceEvent::QueueAdmission {
            request,
            queue_depth,
            queued_tokens,
            ..
        } => format!(
            "\"request\":{request},\"queue_depth\":{queue_depth},\
             \"queued_tokens\":{queued_tokens}"
        ),
        TraceEvent::BatchIteration {
            iteration,
            running,
            queue_depth,
            ..
        } => format!(
            "\"iteration\":{iteration},\"running\":{running},\
             \"queue_depth\":{queue_depth}"
        ),
        TraceEvent::CursorResumed {
            cache,
            node,
            resumed_len,
            delta_tokens,
            ..
        } => format!(
            "\"cache\":\"{}\",\"node\":{node},\"resumed_len\":{resumed_len},\
             \"delta_tokens\":{delta_tokens}",
            esc(cache),
        ),
        TraceEvent::CursorFallback { cache, cause, .. } => format!(
            "\"cache\":\"{}\",\"cause\":\"{}\"",
            esc(cache),
            cause.label(),
        ),
        TraceEvent::Gauges {
            cache,
            usage_bytes,
            host_usage_bytes,
            pinned_nodes,
            counters,
            ..
        } => format!(
            "\"cache\":\"{}\",\"usage_bytes\":{usage_bytes},\
             \"host_usage_bytes\":{host_usage_bytes},\"pinned_nodes\":{pinned_nodes},\
             \"lookups\":{},\"hits\":{},\"input_tokens\":{},\"hit_tokens\":{},\
             \"host_hit_tokens\":{},\"evictions\":{},\"demotions\":{}",
            esc(cache),
            counters.lookups,
            counters.hits,
            counters.input_tokens,
            counters.hit_tokens,
            counters.host_hit_tokens,
            counters.evictions,
            counters.demotions,
        ),
    }
}

/// Exports events as JSON-lines: one object per line, fields
/// `seq`/`ts`/`type` first, then the event's own fields.
pub fn to_jsonl<'a>(events: impl IntoIterator<Item = &'a SeqEvent>) -> String {
    let mut out = String::new();
    for e in events {
        let _ = writeln!(
            out,
            "{{\"seq\":{},\"ts\":{},\"type\":\"{}\",{}}}",
            e.seq,
            num(e.event.ts()),
            e.event.kind(),
            fields(&e.event),
        );
    }
    out
}

/// Trace-event "thread" lanes grouping related event kinds in the
/// Perfetto timeline.
fn lane(ev: &TraceEvent) -> (u64, &'static str) {
    match ev {
        TraceEvent::Lookup { .. }
        | TraceEvent::Admission { .. }
        | TraceEvent::EdgeSplit { .. }
        | TraceEvent::EdgeMerge { .. }
        | TraceEvent::Promotion { .. }
        | TraceEvent::CursorResumed { .. }
        | TraceEvent::CursorFallback { .. } => (1, "cache"),
        TraceEvent::EvictionEpisode { .. } | TraceEvent::Pin { .. } | TraceEvent::Unpin { .. } => {
            (2, "eviction")
        }
        TraceEvent::Reload { .. } => (3, "tiering"),
        TraceEvent::QueueAdmission { .. } | TraceEvent::BatchIteration { .. } => (4, "sim"),
        TraceEvent::RouterDecision { .. } => (5, "router"),
        TraceEvent::Gauges { .. } => (6, "telemetry"),
    }
}

/// Exports events as Chrome trace-event JSON (the `traceEvents` array
/// format), loadable in Perfetto (<https://ui.perfetto.dev>) or
/// `chrome://tracing`. Decisions become instant events on per-category
/// lanes; [`TraceEvent::Gauges`] snapshots additionally become counter
/// tracks (`ph:"C"`) so occupancy plots as a time series. Virtual-clock
/// seconds map to trace microseconds.
pub fn to_chrome_trace<'a>(events: impl IntoIterator<Item = &'a SeqEvent>) -> String {
    let mut body = String::new();
    let mut lanes_seen: Vec<(u64, &'static str)> = Vec::new();
    let push = |line: String, body: &mut String| {
        if !body.is_empty() {
            body.push_str(",\n");
        }
        body.push_str(&line);
    };
    for e in events {
        let (tid, lane_name) = lane(&e.event);
        if !lanes_seen.contains(&(tid, lane_name)) {
            lanes_seen.push((tid, lane_name));
        }
        let us = e.event.ts() * 1e6;
        push(
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\
                 \"pid\":1,\"tid\":{tid},\"ts\":{},\"args\":{{\"seq\":{},{}}}}}",
                e.event.kind(),
                lane_name,
                num(us),
                e.seq,
                fields(&e.event),
            ),
            &mut body,
        );
        if let TraceEvent::Gauges {
            usage_bytes,
            host_usage_bytes,
            pinned_nodes,
            ..
        } = &e.event
        {
            push(
                format!(
                    "{{\"name\":\"occupancy\",\"ph\":\"C\",\"pid\":1,\"ts\":{},\
                     \"args\":{{\"device_bytes\":{usage_bytes},\
                     \"host_bytes\":{host_usage_bytes},\
                     \"pinned_nodes\":{pinned_nodes}}}}}",
                    num(us),
                ),
                &mut body,
            );
        }
    }
    let mut meta = String::new();
    for (tid, name) in lanes_seen {
        if !meta.is_empty() {
            meta.push_str(",\n");
        }
        let _ = write!(
            meta,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        );
    }
    let sep = if meta.is_empty() || body.is_empty() {
        ""
    } else {
        ",\n"
    };
    format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{meta}{sep}{body}\n]}}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MissCause;

    fn sample() -> Vec<SeqEvent> {
        vec![
            SeqEvent {
                seq: 0,
                event: TraceEvent::Lookup {
                    ts: 0.5,
                    cache: "m".into(),
                    input_len: 10,
                    matched: 0,
                    host_tokens: 0,
                    raw_matched: 0,
                    attribution: Some(MissCause::Cold),
                },
            },
            SeqEvent {
                seq: 1,
                event: TraceEvent::Gauges {
                    ts: 1.0,
                    cache: "m".into(),
                    usage_bytes: 64,
                    host_usage_bytes: 0,
                    pinned_nodes: 0,
                    counters: crate::StatCounters::default(),
                },
            },
        ]
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let s = to_jsonl(&sample());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\":0,\"ts\":0.5,\"type\":\"lookup\""));
        assert!(lines[0].contains("\"attribution\":\"cold\""));
        assert!(lines[1].contains("\"type\":\"gauges\""));
    }

    #[test]
    fn chrome_trace_has_counters_and_thread_names() {
        let s = to_chrome_trace(&sample());
        assert!(s.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(s.contains("\"ph\":\"C\""));
        assert!(s.contains("\"thread_name\""));
        assert!(s.contains("\"device_bytes\":64"));
        assert!(s.trim_end().ends_with("]}"));
    }

    #[test]
    fn strings_are_escaped() {
        let e = [SeqEvent {
            seq: 0,
            event: TraceEvent::Pin {
                ts: 0.0,
                cache: "we\"ird\\name".into(),
                node: 3,
            },
        }];
        let s = to_jsonl(&e);
        assert!(s.contains("we\\\"ird\\\\name"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(0.25), "0.25");
    }
}
