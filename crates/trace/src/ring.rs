//! The bounded in-memory recorder and its telemetry views.

use crate::event::{MissCause, SeqEvent, StatCounters, TraceEvent};
use crate::export;
use crate::sink::TraceSink;
use std::collections::VecDeque;
use std::fmt;

/// A bounded ring of recorded events with live telemetry accessors.
///
/// Keeps the most recent `cap` events (oldest dropped first, with a
/// [`dropped`](RingRecorder::dropped) counter so truncation is visible),
/// assigns the monotone sequence numbers that order the merged stream,
/// and derives counter/gauge views — latest occupancy, windowed hit rate
/// between successive [`TraceEvent::Gauges`] snapshots, and the
/// [miss-attribution report](MissReport).
#[derive(Debug, Clone)]
pub struct RingRecorder {
    cap: usize,
    next_seq: u64,
    dropped: u64,
    events: VecDeque<SeqEvent>,
}

impl RingRecorder {
    /// A recorder retaining at most `cap` events.
    ///
    /// The ring is pre-sized to `cap` slots (bounded at 64Ki up front so a
    /// huge cap does not eagerly allocate), so steady-state recording
    /// never grows the buffer: each record is a push + (at cap) a pop.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        RingRecorder {
            cap,
            next_seq: 0,
            dropped: 0,
            events: VecDeque::with_capacity(cap.min(1 << 16)),
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &SeqEvent> {
        self.events.iter()
    }

    /// Total events ever recorded (retained + dropped).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted from the ring by the bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained event count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The most recent [`TraceEvent::Gauges`] snapshot, if any — the
    /// "current occupancy" view.
    #[must_use]
    pub fn latest_gauges(&self) -> Option<&SeqEvent> {
        self.events
            .iter()
            .rev()
            .find(|e| matches!(e.event, TraceEvent::Gauges { .. }))
    }

    /// Token hit rate over the window between the two most recent
    /// [`TraceEvent::Gauges`] snapshots — the same subtraction
    /// `CacheStats::delta_since` performs, applied to the snapshot
    /// counters. `None` until two snapshots exist or if the window saw no
    /// input tokens.
    #[must_use]
    pub fn windowed_hit_rate(&self) -> Option<f64> {
        let mut it = self.events.iter().rev().filter_map(|e| match &e.event {
            TraceEvent::Gauges { counters, .. } => Some(*counters),
            _ => None,
        });
        let late: StatCounters = it.next()?;
        let early: StatCounters = it.next()?;
        let input = late.input_tokens.checked_sub(early.input_tokens)?;
        let hit = late.hit_tokens.checked_sub(early.hit_tokens)?;
        if input == 0 {
            return None;
        }
        Some(hit as f64 / input as f64)
    }

    /// Aggregates the retained [`TraceEvent::Lookup`] events into the
    /// per-request miss-attribution report.
    #[must_use]
    pub fn miss_attribution(&self) -> MissReport {
        let mut r = MissReport::default();
        for e in &self.events {
            if let TraceEvent::Lookup { attribution, .. } = &e.event {
                r.lookups += 1;
                match attribution {
                    None => r.clean_hits += 1,
                    Some(MissCause::Cold) => r.cold += 1,
                    Some(MissCause::CapacityEvicted) => r.capacity_evicted += 1,
                    Some(MissCause::PinnedBystander) => r.pinned_bystander += 1,
                    Some(MissCause::DemotedHostHit) => r.demoted_host_hit += 1,
                    Some(MissCause::NeverCheckpointedSsm) => r.never_checkpointed_ssm += 1,
                }
            }
        }
        r
    }

    /// Exports the retained events as JSON-lines (see
    /// [`to_jsonl`](crate::to_jsonl)).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        export::to_jsonl(self.events.iter())
    }

    /// Exports the retained events as Chrome trace-event JSON (see
    /// [`to_chrome_trace`](crate::to_chrome_trace)).
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        export::to_chrome_trace(self.events.iter())
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, event: TraceEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(SeqEvent { seq, event });
    }
}

/// Lookup outcomes bucketed by the miss-attribution taxonomy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissReport {
    /// Lookup events seen.
    pub lookups: u64,
    /// Clean full-length device hits (no cause).
    pub clean_hits: u64,
    /// Prefix was never cached.
    pub cold: u64,
    /// Prefix was cached but deleted under capacity pressure.
    pub capacity_evicted: u64,
    /// Prefix was deleted while other nodes were pinned.
    pub pinned_bystander: u64,
    /// Prefix hit from the host tier after demotion.
    pub demoted_host_hit: u64,
    /// Raw match forfeited by a missing SSM checkpoint.
    pub never_checkpointed_ssm: u64,
}

impl fmt::Display for MissReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} lookups: {} clean, {} cold, {} capacity-evicted, \
             {} pinned-bystander, {} demoted-then-host-hit, {} never-checkpointed-ssm",
            self.lookups,
            self.clean_hits,
            self.cold,
            self.capacity_evicted,
            self.pinned_bystander,
            self.demoted_host_hit,
            self.never_checkpointed_ssm,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauges(ts: f64, input_tokens: u64, hit_tokens: u64) -> TraceEvent {
        TraceEvent::Gauges {
            ts,
            cache: "m".into(),
            usage_bytes: 0,
            host_usage_bytes: 0,
            pinned_nodes: 0,
            counters: StatCounters {
                input_tokens,
                hit_tokens,
                ..StatCounters::default()
            },
        }
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut r = RingRecorder::new(2);
        for i in 0..5u64 {
            r.record(TraceEvent::Pin {
                ts: i as f64,
                cache: "m".into(),
                node: i,
            });
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 3);
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs, [3, 4]);
    }

    #[test]
    fn windowed_hit_rate_needs_two_snapshots() {
        let mut r = RingRecorder::new(8);
        assert_eq!(r.windowed_hit_rate(), None);
        r.record(gauges(1.0, 100, 10));
        assert_eq!(r.windowed_hit_rate(), None);
        r.record(gauges(2.0, 300, 110));
        let rate = r.windowed_hit_rate().expect("two snapshots recorded");
        assert!((rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn miss_report_buckets_lookups() {
        let mut r = RingRecorder::new(8);
        let mk = |attribution| TraceEvent::Lookup {
            ts: 0.0,
            cache: "m".into(),
            input_len: 4,
            matched: 0,
            host_tokens: 0,
            raw_matched: 0,
            attribution,
        };
        r.record(mk(None));
        r.record(mk(Some(MissCause::Cold)));
        r.record(mk(Some(MissCause::PinnedBystander)));
        r.record(mk(Some(MissCause::PinnedBystander)));
        let rep = r.miss_attribution();
        assert_eq!(rep.lookups, 4);
        assert_eq!(rep.clean_hits, 1);
        assert_eq!(rep.cold, 1);
        assert_eq!(rep.pinned_bystander, 2);
        assert!(rep.to_string().contains("2 pinned-bystander"));
    }
}
