//! Structured decision events.
//!
//! One [`TraceEvent`] per consequential decision. Node ids are carried as
//! their arena indices (`u64`) so the event schema is independent of the
//! radix crate's id representation; timestamps (`ts`) are the caller's
//! virtual-clock seconds. The recorder assigns a monotone sequence number
//! at record time ([`SeqEvent`]), giving a total order even when several
//! events share a virtual timestamp.
//!
//! Cache names are carried as `Arc<str>`: every emitting cache holds its
//! name refcounted, so building an event clones a pointer instead of
//! heap-allocating a `String` — the dominant cost of the live-recording
//! hot path before PR 10 (BENCH_9 measured +19.7% with a `RingRecorder`
//! attached).

/// Memory tier an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceTier {
    /// Device HBM (the capacity-bounded tier).
    Device,
    /// Host DRAM (the demotion target).
    Host,
}

impl TraceTier {
    /// Stable lowercase label used by the exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TraceTier::Device => "device",
            TraceTier::Host => "host",
        }
    }
}

/// Why an eviction episode ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PressureCause {
    /// Device usage exceeded the device capacity (phase 1).
    DeviceCapacity,
    /// Host usage exceeded the host budget (phase 2).
    HostCapacity,
    /// The device candidate pool drained while still over capacity; the
    /// O(arena) fallback pass demoted non-candidate nodes.
    DeviceFallback,
}

impl PressureCause {
    /// Stable lowercase label used by the exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PressureCause::DeviceCapacity => "device-capacity",
            PressureCause::HostCapacity => "host-capacity",
            PressureCause::DeviceFallback => "device-fallback",
        }
    }
}

/// What happened to one victim inside an eviction episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimAction {
    /// Deleted outright (bytes freed).
    Evicted,
    /// Moved device → host (bytes retained, demoted).
    Demoted,
}

impl VictimAction {
    /// Stable lowercase label used by the exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            VictimAction::Evicted => "evicted",
            VictimAction::Demoted => "demoted",
        }
    }
}

/// Per-victim score breakdown recorded by an eviction episode: the two
/// inputs of `S(n) = recency + α · flop_efficiency` (the episode carries
/// the α), plus what the action freed or moved.
#[derive(Debug, Clone, PartialEq)]
pub struct VictimRecord {
    /// Arena index of the victim node.
    pub node: u64,
    /// Token depth of the victim (root through its edge).
    pub depth: u64,
    /// The recency input of the score (the node's last-access time).
    pub last_access: f64,
    /// The FLOP-efficiency input of the score (saved FLOPs per byte).
    pub flop_efficiency: f64,
    /// Bytes freed (evicted) or moved (demoted) by the action.
    pub bytes: u64,
    /// Whether the victim was deleted or demoted.
    pub action: VictimAction,
}

/// Which way a compute-or-load decision went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReloadDecision {
    /// Transfer the host-resident bytes over PCIe.
    Load,
    /// Recompute the prefix on the device instead.
    Recompute,
}

impl ReloadDecision {
    /// Stable lowercase label used by the exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ReloadDecision::Load => "load",
            ReloadDecision::Recompute => "recompute",
        }
    }
}

/// Why a lookup missed (or was degraded), per the miss-attribution
/// taxonomy. A clean full-length device hit carries no cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MissCause {
    /// The prefix was never cached.
    Cold,
    /// The prefix was cached but deleted under capacity pressure.
    CapacityEvicted,
    /// The prefix was deleted while *other* nodes were pinned — an
    /// innocent bystander squeezed by in-flight protection.
    PinnedBystander,
    /// The prefix hit, but from the host tier (it had been demoted), so
    /// reuse required a transfer or recompute.
    DemotedHostHit,
    /// A raw token match existed but no SSM checkpoint was taken at that
    /// boundary, so the all-or-nothing SSM rule forfeited the reuse.
    NeverCheckpointedSsm,
}

impl MissCause {
    /// Stable kebab-case label used by the exporters and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MissCause::Cold => "cold",
            MissCause::CapacityEvicted => "capacity-evicted",
            MissCause::PinnedBystander => "pinned-bystander",
            MissCause::DemotedHostHit => "demoted-then-host-hit",
            MissCause::NeverCheckpointedSsm => "never-checkpointed-ssm",
        }
    }
}

/// Why a session-cursor hint was rejected and the operation fell back to
/// the root walk. Fallbacks are always safe (the root walk is the ground
/// truth); the cause is telemetry for tuning cursor-table sizing and
/// spotting pathologies (e.g. a workload whose sessions hop shards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CursorFallbackCause {
    /// The resume node was evicted (its arena slot was freed or reused).
    StaleGeneration,
    /// The resume node's structure version moved past the cursor (an edge
    /// merge absorbed into it, its leaf status flipped, or its edge
    /// changed), so the memoized match can no longer be trusted.
    StructureChanged,
    /// The query does not extend the cursor's matched prefix (shorter than
    /// the match, or diverging at the resume edge).
    QueryDiverged,
    /// The resume node's state was demoted off the device tier; the
    /// session has gone cold enough that the hint is not trusted.
    ResumeDemoted,
    /// The hint was minted by a different shard of a sharded cache;
    /// cursors are shard-local by construction.
    CrossShard,
}

impl CursorFallbackCause {
    /// Stable kebab-case label used by the exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CursorFallbackCause::StaleGeneration => "stale-generation",
            CursorFallbackCause::StructureChanged => "structure-changed",
            CursorFallbackCause::QueryDiverged => "query-diverged",
            CursorFallbackCause::ResumeDemoted => "resume-demoted",
            CursorFallbackCause::CrossShard => "cross-shard",
        }
    }
}

/// The cache counters a [`TraceEvent::Gauges`] snapshot carries — the
/// subset of `CacheStats` the live-telemetry views derive rates from.
/// Cumulative, so two snapshots subtract into a window (the same
/// `delta_since` arithmetic `CacheStats` exposes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatCounters {
    /// Lookups served.
    pub lookups: u64,
    /// Lookups that reused a non-empty prefix.
    pub hits: u64,
    /// Total input tokens across all lookups.
    pub input_tokens: u64,
    /// Total tokens served from cache.
    pub hit_tokens: u64,
    /// Tokens of hits whose state was host-resident at lookup time.
    pub host_hit_tokens: u64,
    /// Entries deleted outright.
    pub evictions: u64,
    /// Entries demoted device → host.
    pub demotions: u64,
}

/// One replica's view at routing time, as probed by the router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaProbe {
    /// Replica index.
    pub replica: u64,
    /// Longest reusable cached prefix of the request on this replica.
    pub matched_tokens: u64,
    /// Host-resident share of that match.
    pub host_tokens: u64,
    /// Tokens enqueued but not yet admitted (0 for instantaneous sims).
    pub queued_tokens: u64,
    /// Input tokens already routed to this replica.
    pub routed_tokens: u64,
}

/// A structured decision event. See the crate docs for the taxonomy; the
/// exporters serialize each variant under the stable name returned by
/// [`TraceEvent::kind`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A cache lookup resolved, with hit/miss attribution.
    Lookup {
        /// Virtual-clock seconds.
        ts: f64,
        /// Name of the cache that served the lookup.
        cache: std::sync::Arc<str>,
        /// Length of the request's input in tokens.
        input_len: u64,
        /// Reusable tokens matched (the hit length).
        matched: u64,
        /// Host-resident share of the match.
        host_tokens: u64,
        /// Raw radix-tree match length before SSM all-or-nothing
        /// truncation (`>= matched`; the gap is forfeited reuse).
        raw_matched: u64,
        /// Why the lookup missed or was degraded; `None` for a clean
        /// full-length device hit.
        attribution: Option<MissCause>,
    },
    /// A completed request's states were admitted.
    Admission {
        /// Virtual-clock seconds.
        ts: f64,
        /// Name of the admitting cache.
        cache: std::sync::Arc<str>,
        /// Prefilled input length in tokens.
        input_len: u64,
        /// Decoded output length in tokens.
        output_len: u64,
        /// SSM checkpoints taken for this sequence (≤ 2, per the paper's
        /// judicious-admission rule).
        checkpoints: u64,
        /// New tokens added to the tree by this admission.
        new_tokens: u64,
    },
    /// An insertion split an existing edge (a new branch point).
    EdgeSplit {
        /// Virtual-clock seconds.
        ts: f64,
        /// Name of the cache.
        cache: std::sync::Arc<str>,
        /// Arena index of the new intermediate node.
        node: u64,
        /// Arena index of the new leaf holding the un-shared suffix, if
        /// one was created.
        new_leaf: Option<u64>,
    },
    /// A removal merged a single-child node's edge into its child.
    EdgeMerge {
        /// Virtual-clock seconds.
        ts: f64,
        /// Name of the cache.
        cache: std::sync::Arc<str>,
        /// Arena index of the removed node.
        removed: u64,
        /// Arena index of the child that absorbed the edge.
        merged_into: u64,
    },
    /// One pressure episode: the pool it drew from and every victim it
    /// took, with per-victim score inputs.
    EvictionEpisode {
        /// Virtual-clock seconds.
        ts: f64,
        /// Name of the cache under pressure.
        cache: std::sync::Arc<str>,
        /// Tier the episode relieved.
        tier: TraceTier,
        /// Why the episode ran.
        cause: PressureCause,
        /// Victim-pool size when the episode started.
        pool_len: u64,
        /// The α the score `recency + α · flop_efficiency` used.
        alpha: f64,
        /// Victims in the order they were taken.
        victims: Vec<VictimRecord>,
    },
    /// Host-resident state on a re-inserted path was promoted back to the
    /// device tier.
    Promotion {
        /// Virtual-clock seconds.
        ts: f64,
        /// Name of the cache.
        cache: std::sync::Arc<str>,
        /// Tokens whose backing state moved host → device.
        tokens: u64,
    },
    /// An in-flight request pinned its hit path.
    Pin {
        /// Virtual-clock seconds.
        ts: f64,
        /// Name of the cache.
        cache: std::sync::Arc<str>,
        /// Arena index of the pinned hit node.
        node: u64,
    },
    /// A completed request released its pin.
    Unpin {
        /// Virtual-clock seconds.
        ts: f64,
        /// Name of the cache.
        cache: std::sync::Arc<str>,
        /// Arena index of the released node.
        node: u64,
    },
    /// The serving layer priced a host hit: transfer over PCIe vs
    /// recompute on device, and which one won.
    Reload {
        /// Virtual-clock seconds.
        ts: f64,
        /// Name of the cache whose hit is being reloaded.
        cache: std::sync::Arc<str>,
        /// Host-resident bytes the hit needs.
        host_bytes: u64,
        /// Seconds to transfer them over PCIe.
        load_secs: f64,
        /// Seconds to recompute the prefix on device.
        recompute_secs: f64,
        /// The winner under the cache's reload policy.
        decision: ReloadDecision,
    },
    /// A cluster router picked a replica.
    RouterDecision {
        /// Virtual-clock seconds (the request's arrival).
        ts: f64,
        /// Index of the routed request in the trace.
        request: u64,
        /// The chosen replica.
        chosen: u64,
        /// Which comparator stage decided (e.g. `prefix-tokens`,
        /// `queue-depth`, `replica-index`).
        tie_break: &'static str,
        /// Every replica's probed state, in replica order.
        probes: Vec<ReplicaProbe>,
    },
    /// The event-sim admitted a request to a replica's queue.
    QueueAdmission {
        /// Virtual-clock seconds.
        ts: f64,
        /// Index of the request in the trace.
        request: u64,
        /// Queue depth after admission (requests).
        queue_depth: u64,
        /// Queued input tokens after admission.
        queued_tokens: u64,
    },
    /// One batch iteration boundary in the event-sim executor.
    BatchIteration {
        /// Virtual-clock seconds at the iteration's start.
        ts: f64,
        /// Monotone iteration counter.
        iteration: u64,
        /// Requests running in the batch.
        running: u64,
        /// Requests still queued.
        queue_depth: u64,
    },
    /// A session-cursor hint validated and the walk resumed from the deep
    /// node, consuming only the delta tokens (the PR 10 fast path).
    CursorResumed {
        /// Virtual-clock seconds.
        ts: f64,
        /// Name of the cache.
        cache: std::sync::Arc<str>,
        /// Arena index of the resume node.
        node: u64,
        /// Tokens the cursor skipped (the memoized matched prefix).
        resumed_len: u64,
        /// Tokens the operation actually walked past the cursor.
        delta_tokens: u64,
    },
    /// A session-cursor hint was rejected; the operation fell back to the
    /// byte-identical root walk.
    CursorFallback {
        /// Virtual-clock seconds.
        ts: f64,
        /// Name of the cache.
        cache: std::sync::Arc<str>,
        /// Why the hint was rejected.
        cause: CursorFallbackCause,
    },
    /// A periodic telemetry snapshot: occupancy gauges plus cumulative
    /// counters (two snapshots subtract into a window).
    Gauges {
        /// Virtual-clock seconds.
        ts: f64,
        /// Name of the cache.
        cache: std::sync::Arc<str>,
        /// Device-tier bytes resident.
        usage_bytes: u64,
        /// Host-tier bytes resident.
        host_usage_bytes: u64,
        /// Nodes currently pinned by in-flight requests.
        pinned_nodes: u64,
        /// Cumulative cache counters at snapshot time.
        counters: StatCounters,
    },
}

impl TraceEvent {
    /// Stable event-kind label (the `type` field of the JSONL schema and
    /// the event name in Chrome traces).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Lookup { .. } => "lookup",
            TraceEvent::Admission { .. } => "admission",
            TraceEvent::EdgeSplit { .. } => "edge-split",
            TraceEvent::EdgeMerge { .. } => "edge-merge",
            TraceEvent::EvictionEpisode { .. } => "eviction-episode",
            TraceEvent::Promotion { .. } => "promotion",
            TraceEvent::Pin { .. } => "pin",
            TraceEvent::Unpin { .. } => "unpin",
            TraceEvent::Reload { .. } => "reload",
            TraceEvent::RouterDecision { .. } => "router-decision",
            TraceEvent::QueueAdmission { .. } => "queue-admission",
            TraceEvent::BatchIteration { .. } => "batch-iteration",
            TraceEvent::CursorResumed { .. } => "cursor-resumed",
            TraceEvent::CursorFallback { .. } => "cursor-fallback",
            TraceEvent::Gauges { .. } => "gauges",
        }
    }

    /// The event's virtual timestamp in seconds.
    #[must_use]
    pub fn ts(&self) -> f64 {
        match self {
            TraceEvent::Lookup { ts, .. }
            | TraceEvent::Admission { ts, .. }
            | TraceEvent::EdgeSplit { ts, .. }
            | TraceEvent::EdgeMerge { ts, .. }
            | TraceEvent::EvictionEpisode { ts, .. }
            | TraceEvent::Promotion { ts, .. }
            | TraceEvent::Pin { ts, .. }
            | TraceEvent::Unpin { ts, .. }
            | TraceEvent::Reload { ts, .. }
            | TraceEvent::RouterDecision { ts, .. }
            | TraceEvent::QueueAdmission { ts, .. }
            | TraceEvent::BatchIteration { ts, .. }
            | TraceEvent::CursorResumed { ts, .. }
            | TraceEvent::CursorFallback { ts, .. }
            | TraceEvent::Gauges { ts, .. } => *ts,
        }
    }
}

/// An event paired with the monotone sequence number the recorder
/// assigned at record time — the deterministic total order.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqEvent {
    /// Record-time sequence number (monotone per recorder).
    pub seq: u64,
    /// The event.
    pub event: TraceEvent,
}
