//! The miss-attribution ledger.
//!
//! When an eviction episode deletes a node, the cache (only while a
//! tracer is enabled) records a 64-bit fingerprint of the node's full
//! token path together with why it was deleted. A later lookup that
//! matched fewer tokens than its input can then ask whether some longer
//! prefix of that input was *previously cached and deleted* — turning an
//! anonymous miss into `capacity-evicted` or `pinned-bystander`.
//!
//! The ledger lives on the serving hot path (every delete records, every
//! traced lookup probes), so its costs are bounded twice over:
//!
//! * hashing touches at most [`FINGERPRINT_DEPTH`] tokens per sequence —
//!   deeper paths are keyed by (truncated hash, exact length), so two
//!   entries alias only when they share their first `FINGERPRINT_DEPTH`
//!   tokens *and* their total length;
//! * probing checks at most [`PROBE_BUDGET`] recorded lengths per lookup,
//!   deepest first.
//!
//! A re-admitted prefix needs no ledger cleanup: the next lookup hits at
//! (or beyond) the fingerprinted depth, so the stale entry is never
//! consulted.

use crate::event::MissCause;
use std::collections::{BTreeMap, VecDeque};

/// Default bound on remembered evictions.
pub const DEFAULT_LEDGER_CAP: usize = 4096;

/// Tokens hashed per fingerprint before truncation. Sequences longer than
/// this are disambiguated by their exact length in the ledger key, so the
/// per-event hashing cost is O(min(len, depth)) while attribution stays
/// exact for any two prefixes that differ within the window.
pub const FINGERPRINT_DEPTH: usize = 1024;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a-style mix, one step per token (the whole `u32` is one symbol —
/// byte-granular FNV costs 4× on a path-hashing hot path).
fn fnv_step(hash: u64, token: u32) -> u64 {
    (hash ^ u64::from(token)).wrapping_mul(FNV_PRIME)
}

/// Fingerprint of a token sequence: FNV-1a-style over the first
/// [`FINGERPRINT_DEPTH`] tokens. Prefix-sensitive within that window
/// (every length hashes differently); the ledger pairs it with the exact
/// sequence length to tell deeper sequences apart.
#[must_use]
pub fn fingerprint(tokens: &[u32]) -> u64 {
    let mut fp = Fingerprint::new();
    fp.update(tokens);
    fp.finish()
}

/// Streaming [`fingerprint`] builder: hashing the concatenation of every
/// `update` slice yields the same value as one call over the whole
/// sequence (including the [`FINGERPRINT_DEPTH`] truncation). Lets the
/// cache hash a radix path edge-by-edge on the eviction hot path without
/// materializing the token vector.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint {
    hash: u64,
    len: usize,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

impl Fingerprint {
    /// An empty-sequence fingerprint.
    #[must_use]
    pub fn new() -> Self {
        Fingerprint {
            hash: FNV_OFFSET,
            len: 0,
        }
    }

    /// Absorbs the next run of tokens (tokens past the
    /// [`FINGERPRINT_DEPTH`] window count toward [`len`](Fingerprint::len)
    /// but no longer stir the hash).
    pub fn update(&mut self, tokens: &[u32]) {
        let hashed = tokens.len().min(FINGERPRINT_DEPTH.saturating_sub(self.len));
        self.hash = tokens[..hashed]
            .iter()
            .fold(self.hash, |h, &t| fnv_step(h, t));
        self.len += tokens.len();
    }

    /// Tokens absorbed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` before any token is absorbed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fingerprint of everything absorbed.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

/// Bound on map probes per [`MissLedger::deepest_match`] call: only the
/// deepest this-many recorded path lengths beyond the match are checked,
/// keeping classification cheap even when the ledger holds thousands of
/// distinct depths. A miss whose only ledger evidence sits below the
/// probed window falls back to `cold` — deterministically, since the
/// window depends only on ledger contents.
pub const PROBE_BUDGET: usize = 64;

/// The ledger key: truncated-prefix hash disambiguated by exact length.
fn entry_key(fp: u64, len: usize) -> u64 {
    fp ^ (len as u64).wrapping_mul(FNV_PRIME)
}

/// Bounded map from evicted-prefix fingerprints to their eviction cause.
///
/// Deterministic by construction: insertion order is the cache's eviction
/// order, the bound drops oldest-first, and probes walk a `BTreeMap`.
#[derive(Debug, Clone)]
pub struct MissLedger {
    entries: BTreeMap<u64, MissCause>,
    /// Live entry count per recorded path length — the probe schedule for
    /// [`MissLedger::deepest_match`].
    lengths: BTreeMap<usize, usize>,
    order: VecDeque<(u64, usize)>,
    cap: usize,
}

impl Default for MissLedger {
    fn default() -> Self {
        MissLedger::new(DEFAULT_LEDGER_CAP)
    }
}

impl MissLedger {
    /// A ledger remembering at most `cap` evicted prefixes (oldest
    /// dropped first).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        MissLedger {
            entries: BTreeMap::new(),
            lengths: BTreeMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// Records that the prefix `path` was deleted for `cause`
    /// (re-recording an already-known prefix just updates its cause).
    pub fn record_eviction(&mut self, path: &[u32], cause: MissCause) {
        self.record_fingerprint(fingerprint(path), path.len(), cause);
    }

    /// [`record_eviction`](MissLedger::record_eviction) for callers that
    /// streamed the path through a [`Fingerprint`] instead of
    /// materializing it.
    pub fn record_fingerprint(&mut self, fp: u64, path_len: usize, cause: MissCause) {
        let key = entry_key(fp, path_len);
        if self.entries.insert(key, cause).is_none() {
            *self.lengths.entry(path_len).or_insert(0) += 1;
            self.order.push_back((key, path_len));
            if self.order.len() > self.cap {
                if let Some((old, old_len)) = self.order.pop_front() {
                    self.entries.remove(&old);
                    if let Some(n) = self.lengths.get_mut(&old_len) {
                        *n -= 1;
                        if *n == 0 {
                            self.lengths.remove(&old_len);
                        }
                    }
                }
            }
        }
    }

    /// The cause recorded for the *deepest* prefix of `input` strictly
    /// longer than `matched` tokens, if any — i.e. "had it not been
    /// evicted, the lookup would have matched at least this far". Probes
    /// the deepest [`PROBE_BUDGET`] recorded lengths beyond the match.
    #[must_use]
    pub fn deepest_match(&self, input: &[u32], matched: usize) -> Option<MissCause> {
        if self.entries.is_empty() || matched >= input.len() {
            return None;
        }
        // Probe only at lengths the ledger actually holds, capped at the
        // PROBE_BUDGET deepest; collect them ascending for the hash walk.
        let mut lens: Vec<usize> = self
            .lengths
            .range(matched + 1..=input.len())
            .rev()
            .map(|(&len, _)| len)
            .take(PROBE_BUDGET)
            .collect();
        lens.reverse();
        // One progressive walk records the prefix hash at each candidate
        // length (lengths past the truncation window all reuse the
        // depth-capped hash), then the probes run deepest-first so the
        // first hit wins.
        let mut keys = Vec::with_capacity(lens.len());
        let mut hash = FNV_OFFSET;
        let mut pos = 0usize;
        for &len in &lens {
            let target = len.min(FINGERPRINT_DEPTH);
            while pos < target {
                hash = fnv_step(hash, input[pos]);
                pos += 1;
            }
            keys.push(entry_key(hash, len));
        }
        keys.iter().rev().find_map(|k| self.entries.get(k).copied())
    }

    /// Number of remembered prefixes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is remembered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Forgets everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.lengths.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_prefix_sensitive() {
        assert_ne!(fingerprint(&[1, 2]), fingerprint(&[1, 2, 3]));
        assert_ne!(fingerprint(&[]), fingerprint(&[0]));
        assert_eq!(fingerprint(&[7, 8, 9]), fingerprint(&[7, 8, 9]));
    }

    #[test]
    fn streamed_fingerprint_matches_whole_sequence() {
        let tokens: Vec<u32> = (0..2000).collect();
        let mut fp = Fingerprint::new();
        for chunk in tokens.chunks(7) {
            fp.update(chunk);
        }
        assert_eq!(fp.finish(), fingerprint(&tokens));
        assert_eq!(fp.len(), tokens.len());
    }

    #[test]
    fn truncated_sequences_disambiguate_by_length() {
        // Beyond FINGERPRINT_DEPTH the hash stops stirring…
        let a: Vec<u32> = (0..FINGERPRINT_DEPTH as u32 + 8).collect();
        let mut b = a.clone();
        *b.last_mut().expect("invariant: non-empty") = 999_999;
        assert_eq!(fingerprint(&a), fingerprint(&b));
        // …but the ledger still tells different *lengths* apart.
        let mut l = MissLedger::new(16);
        l.record_eviction(&a[..a.len() - 4], MissCause::CapacityEvicted);
        l.record_eviction(&a, MissCause::PinnedBystander);
        assert_eq!(l.len(), 2);
        assert_eq!(l.deepest_match(&a, 0), Some(MissCause::PinnedBystander));
        assert_eq!(
            l.deepest_match(&a[..a.len() - 4], 0),
            Some(MissCause::CapacityEvicted)
        );
    }

    #[test]
    fn deepest_match_beyond_matched_only() {
        let mut l = MissLedger::new(16);
        l.record_eviction(&[1, 2], MissCause::CapacityEvicted);
        l.record_eviction(&[1, 2, 3, 4], MissCause::PinnedBystander);
        // Matched 2 tokens: only the depth-4 entry is beyond the match.
        assert_eq!(
            l.deepest_match(&[1, 2, 3, 4, 5], 2),
            Some(MissCause::PinnedBystander)
        );
        // Matched 0: the deepest of both wins.
        assert_eq!(
            l.deepest_match(&[1, 2, 3, 4], 0),
            Some(MissCause::PinnedBystander)
        );
        // A fully-matched input has nothing beyond it.
        assert_eq!(l.deepest_match(&[1, 2], 2), None);
        // Unrelated input: no match.
        assert_eq!(l.deepest_match(&[9, 9, 9], 0), None);
    }

    #[test]
    fn cap_drops_oldest_first() {
        let mut l = MissLedger::new(2);
        l.record_eviction(&[1], MissCause::CapacityEvicted);
        l.record_eviction(&[2], MissCause::CapacityEvicted);
        l.record_eviction(&[3], MissCause::CapacityEvicted);
        assert_eq!(l.len(), 2);
        assert_eq!(l.deepest_match(&[1], 0), None);
        assert_eq!(l.deepest_match(&[3], 0), Some(MissCause::CapacityEvicted));
    }

    #[test]
    fn re_recording_updates_cause_without_duplicating() {
        let mut l = MissLedger::new(2);
        l.record_eviction(&[1], MissCause::CapacityEvicted);
        l.record_eviction(&[1], MissCause::PinnedBystander);
        assert_eq!(l.len(), 1);
        assert_eq!(l.deepest_match(&[1], 0), Some(MissCause::PinnedBystander));
    }
}
