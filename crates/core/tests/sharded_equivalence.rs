//! Property test: an N-shard [`ShardedCache`] is observationally equivalent
//! to N independent single-threaded [`HybridPrefixCache`]s fed the same
//! shard-routed op streams.
//!
//! This is the sharding layer's core contract (see `docs/verification.md`):
//! the concurrent front-end adds *routing and locking only* — every
//! per-request result (lookup, admission, probe) and every piece of
//! per-shard end state must match what the underlying single-threaded cache
//! would have produced. Random op sequences drive both sides through the
//! full public surface, including pins held across evicting inserts.

use marconi_core::{
    HybridPrefixCache, HybridPrefixCacheBuilder, PinTicket, PrefixCache, ShardedCache,
};
use marconi_model::ModelConfig;
use marconi_radix::Token;
use proptest::prelude::*;

const SHARDS: usize = 4;

/// One operation against the cache's public surface.
#[derive(Debug, Clone)]
enum Op {
    /// `insert_at(input, output)`.
    Insert(Vec<Token>, Vec<Token>),
    /// `lookup_at(input)` — mutates recency and stats.
    Lookup(Vec<Token>),
    /// `longest_cached_prefix_len` + `probe_tiers` — must not mutate.
    Probe(Vec<Token>),
    /// `pin_prefix(input)`, held until the end of the run.
    Pin(Vec<Token>),
}

/// Sequences share a tiny alphabet so streams collide heavily, but the
/// *first* token ranges wider: it alone picks the shard, and we want all
/// four shards populated.
fn seq_strategy() -> impl Strategy<Value = Vec<Token>> {
    (0u32..8, prop::collection::vec(0u32..4, 0..24))
        .prop_map(|(first, rest)| std::iter::once(first).chain(rest).collect())
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0u8..4,
        seq_strategy(),
        prop::collection::vec(100u32..104, 1..12),
    )
        .prop_map(|(kind, seq, out)| match kind {
            0 => Op::Insert(seq, out),
            1 => Op::Lookup(seq),
            2 => Op::Probe(seq),
            _ => Op::Pin(seq),
        })
}

fn builder(model: ModelConfig) -> HybridPrefixCacheBuilder {
    // Capacity small enough that insert streams overflow a shard and force
    // evictions, so the equivalence also covers the eviction + pin
    // interplay (a pinned path must survive identically on both sides).
    let cap = 96 * model.kv_bytes_per_token();
    HybridPrefixCache::builder(model).capacity_bytes(cap)
}

/// Drives `ops` through a sharded cache and through `SHARDS` independent
/// plain caches routed by the same deterministic hash, asserting every
/// observable result and the complete per-shard end state agree.
fn assert_equivalent(model: ModelConfig, ops: &[Op]) {
    let sharded = ShardedCache::new(builder(model.clone()), SHARDS);
    let mut reference: Vec<HybridPrefixCache> = (0..SHARDS)
        .map(|_| builder(model.clone()).build())
        .collect();
    let mut sharded_pins: Vec<PinTicket> = Vec::new();
    let mut reference_pins: Vec<(usize, PinTicket)> = Vec::new();

    for (i, op) in ops.iter().enumerate() {
        // Caller-supplied logical time, identical on both sides.
        let now = i as f64;
        match op {
            Op::Insert(input, output) => {
                let shard = sharded.shard_of(input);
                let got = sharded.insert_at(input, output, now);
                let want = reference[shard].insert_at(input, output, now);
                prop_assert_eq!(got, want, "insert_at diverged at op {}", i);
            }
            Op::Lookup(input) => {
                let shard = sharded.shard_of(input);
                let got = sharded.lookup_at(input, now);
                let want = reference[shard].lookup_at(input, now);
                prop_assert_eq!(got, want, "lookup_at diverged at op {}", i);
            }
            Op::Probe(input) => {
                let shard = sharded.shard_of(input);
                prop_assert_eq!(
                    sharded.longest_cached_prefix_len(input),
                    reference[shard].longest_cached_prefix_len(input),
                    "probe diverged at op {}",
                    i
                );
                prop_assert_eq!(
                    sharded.probe_tiers(input),
                    reference[shard].probe_tiers(input),
                    "probe_tiers diverged at op {}",
                    i
                );
            }
            Op::Pin(input) => {
                let shard = sharded.shard_of(input);
                let got = sharded.pin_prefix(input);
                let want = reference[shard].pin_prefix(input);
                prop_assert_eq!(got.is_empty(), want.is_empty(), "pin diverged at op {}", i);
                sharded_pins.push(got);
                reference_pins.push((shard, want));
            }
        }
        prop_assert_eq!(
            sharded.pinned_bytes(),
            reference.iter().map(|c| c.pinned_bytes()).sum::<u64>()
        );
    }

    // Complete per-shard end-state equality.
    for (idx, reference_cache) in reference.iter().enumerate() {
        sharded.with_shard(idx, |shard_cache| {
            assert_eq!(
                shard_cache.usage_bytes(),
                reference_cache.usage_bytes(),
                "shard {idx} usage diverged"
            );
            assert_eq!(
                shard_cache.pinned_node_count(),
                reference_cache.pinned_node_count(),
                "shard {idx} pin counts diverged"
            );
            assert_eq!(
                *shard_cache.stats(),
                *reference_cache.stats(),
                "shard {idx} stats diverged"
            );
        });
    }
    let aggregate = sharded.stats();
    let mut expected = marconi_core::CacheStats::default();
    for c in &reference {
        expected.accumulate(c.stats());
    }
    prop_assert_eq!(aggregate, expected, "aggregate stats diverged");

    // Release every pin on both sides (and keep the debug-build leak
    // detector quiet); refcounts must drain back to zero identically.
    for ticket in sharded_pins {
        sharded.unpin(ticket);
    }
    for (shard, ticket) in reference_pins {
        reference[shard].unpin(ticket);
    }
    prop_assert_eq!(sharded.pinned_bytes(), 0);
    prop_assert_eq!(reference.iter().map(|c| c.pinned_bytes()).sum::<u64>(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sharded_equals_independent_caches_transformer(
        ops in prop::collection::vec(op_strategy(), 1..60)
    ) {
        assert_equivalent(ModelConfig::transformer_7b(), &ops);
    }

    #[test]
    fn sharded_equals_independent_caches_hybrid(
        ops in prop::collection::vec(op_strategy(), 1..60)
    ) {
        assert_equivalent(ModelConfig::hybrid_7b(), &ops);
    }
}
