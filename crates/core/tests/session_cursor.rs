//! Session-cursor invalidation contract (PR 10, see
//! `docs/session-fastpath.md`).
//!
//! Every way a cursor can go stale — its resume node evicted
//! (stale-generation), a split landing under it (structure-changed), the
//! next query diverging inside the resume edge (query-diverged), the
//! resume path demoted off the device tier (resume-demoted), or a hint
//! presented to the wrong shard (cross-shard) — must (a) fall back to the
//! root walk with results byte-identical to never having offered the
//! hint, and (b) name its cause in a `CursorFallback` trace event. The
//! closing property test replays random session interleavings, randomly
//! dropping and spending hints, and demands hinted and unhinted runs
//! agree on every per-request result and all end-state counters.

use marconi_core::{
    HybridPrefixCache, HybridPrefixCacheBuilder, PrefixCache, SessionCursor, ShardedCache,
};
use marconi_model::ModelConfig;
use marconi_radix::Token;
use marconi_trace::{RingRecorder, TraceEvent, Tracer};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

fn seq(range: std::ops::Range<u32>) -> Vec<Token> {
    range.collect()
}

fn builder(capacity: u64) -> HybridPrefixCacheBuilder {
    HybridPrefixCache::builder(ModelConfig::hybrid_7b()).capacity_bytes(capacity)
}

/// Capacity fitting exactly two 128-token single-checkpoint sequences.
fn two_seq_capacity() -> u64 {
    let m = ModelConfig::hybrid_7b();
    2 * (128 * m.kv_bytes_per_token() + m.ssm_checkpoint_bytes()) + 1
}

fn recorded(capacity: u64) -> (HybridPrefixCache, Arc<Mutex<RingRecorder>>) {
    let (tracer, recorder) = Tracer::to_sink(RingRecorder::new(1 << 12));
    let mut c = builder(capacity).build();
    c.set_tracer(tracer);
    (c, recorder)
}

fn fallback_causes(recorder: &Arc<Mutex<RingRecorder>>) -> Vec<&'static str> {
    recorder
        .lock()
        .expect("lock: test-local recorder")
        .events()
        .filter_map(|e| match &e.event {
            TraceEvent::CursorFallback { cause, .. } => Some(cause.label()),
            _ => None,
        })
        .collect()
}

fn resumed_count(recorder: &Arc<Mutex<RingRecorder>>) -> usize {
    recorder
        .lock()
        .expect("lock: test-local recorder")
        .events()
        .filter(|e| e.event.kind() == "cursor-resumed")
        .count()
}

/// Mints a cursor by admitting `input ⧺ output` at `now`.
fn mint(c: &mut HybridPrefixCache, input: &[Token], output: &[Token], now: f64) -> SessionCursor {
    let (_, next) = c.insert_at_with(input, output, now, None);
    next.expect("admission at spare capacity mints a cursor")
}

/// Asserts the hinted lookup on `hinted_cache` equals the unhinted lookup
/// on a twin cache that saw the exact same operation stream.
fn assert_lookup_parity(
    hinted_cache: &mut HybridPrefixCache,
    cold_cache: &mut HybridPrefixCache,
    query: &[Token],
    now: f64,
    hint: SessionCursor,
) {
    let hinted = hinted_cache.lookup_at_with(query, now, Some(hint));
    let cold = cold_cache.lookup_at(query, now);
    assert_eq!(hinted, cold, "fallback must be byte-identical to root walk");
    assert_eq!(*hinted_cache.stats(), *cold_cache.stats(), "stats parity");
}

#[test]
fn evicted_resume_node_falls_back_as_stale_generation() {
    let (mut c, rec) = recorded(two_seq_capacity());
    let mut cold = builder(two_seq_capacity()).build();
    let drive = |c: &mut HybridPrefixCache| {
        // Single-tier cache at two-sequence capacity: admitting B and C
        // deletes session A's whole path, freeing its arena slots.
        c.insert_at(&seq(10_000..10_096), &seq(10_500..10_532), 1.0);
        c.insert_at(&seq(20_000..20_096), &seq(20_500..20_532), 2.0);
    };
    let cursor = mint(&mut c, &seq(0..96), &seq(500..532), 0.0);
    cold.insert_at(&seq(0..96), &seq(500..532), 0.0);
    drive(&mut c);
    drive(&mut cold);
    let mut resume: Vec<Token> = seq(0..96);
    resume.extend(seq(500..532));
    resume.push(42);
    assert_lookup_parity(&mut c, &mut cold, &resume, 3.0, cursor);
    assert_eq!(fallback_causes(&rec), ["stale-generation"]);
    assert_eq!(resumed_count(&rec), 0);
}

#[test]
fn split_under_cursor_falls_back_as_structure_changed() {
    let (mut c, rec) = recorded(1 << 40);
    let mut cold = builder(1 << 40).build();
    let cursor = mint(&mut c, &seq(0..96), &seq(500..532), 0.0);
    cold.insert_at(&seq(0..96), &seq(500..532), 0.0);
    // A shorter replay of the same conversation ends mid-edge of A's path,
    // splitting the resume node's own edge — its version bumps even though
    // the node (and its full root-path tokens) survive.
    c.insert_at(&seq(0..96), &seq(500..516), 1.0);
    cold.insert_at(&seq(0..96), &seq(500..516), 1.0);
    let mut resume: Vec<Token> = seq(0..96);
    resume.extend(seq(500..532));
    resume.push(42);
    assert_lookup_parity(&mut c, &mut cold, &resume, 2.0, cursor);
    assert_eq!(fallback_causes(&rec), ["structure-changed"]);
}

#[test]
fn diverged_query_falls_back_as_query_diverged() {
    let (mut c, rec) = recorded(1 << 40);
    let mut cold = builder(1 << 40).build();
    let cursor = mint(&mut c, &seq(0..96), &seq(500..532), 0.0);
    cold.insert_at(&seq(0..96), &seq(500..532), 0.0);
    // Same session id, different history: one token inside the resume edge
    // flipped (edge divergence) …
    let mut diverged: Vec<Token> = seq(0..96);
    diverged.extend(seq(500..532));
    diverged[100] = 9_999;
    diverged.push(42);
    assert_lookup_parity(&mut c, &mut cold, &diverged, 1.0, cursor);
    // … and a query shorter than the memoized prefix.
    let short: Vec<Token> = seq(0..64);
    assert_lookup_parity(&mut c, &mut cold, &short, 2.0, cursor);
    assert_eq!(fallback_causes(&rec), ["query-diverged", "query-diverged"]);
}

#[test]
fn demoted_resume_path_falls_back_as_resume_demoted() {
    let capacity = two_seq_capacity();
    let mk = || {
        builder(capacity)
            .host_capacity_bytes(1 << 40)
            .policy(marconi_core::EvictionPolicy::Lru)
            .build()
    };
    let (tracer, rec) = Tracer::to_sink(RingRecorder::new(1 << 12));
    let mut c = mk();
    c.set_tracer(tracer);
    let mut cold = mk();
    let cursor = mint(&mut c, &seq(0..96), &seq(500..532), 0.0);
    cold.insert_at(&seq(0..96), &seq(500..532), 0.0);
    let drive = |c: &mut HybridPrefixCache| {
        // Device pressure demotes A's path to the host tier (it survives in
        // the tree, so the tree-level checks all pass).
        c.insert_at(&seq(10_000..10_096), &seq(10_500..10_532), 1.0);
        c.insert_at(&seq(20_000..20_096), &seq(20_500..20_532), 2.0);
    };
    drive(&mut c);
    drive(&mut cold);
    assert!(c.stats().demotions > 0, "pressure must demote A");
    let mut resume: Vec<Token> = seq(0..96);
    resume.extend(seq(500..532));
    resume.push(42);
    assert_lookup_parity(&mut c, &mut cold, &resume, 3.0, cursor);
    assert_eq!(fallback_causes(&rec), ["resume-demoted"]);
}

#[test]
fn demotion_suppresses_cursor_minting() {
    // If the admission itself ends with the end node off-device, no cursor
    // is handed out: a fresh hint must always point at device-resident
    // state.
    let m = ModelConfig::hybrid_7b();
    let tiny = 64 * m.kv_bytes_per_token();
    let mut c = builder(tiny).host_capacity_bytes(1 << 40).build();
    let (_, next) = c.insert_at_with(&seq(0..96), &seq(500..532), 0.0, None);
    assert!(
        next.is_none(),
        "a 128-token path cannot stay device-resident under a 64-token cap"
    );
}

#[test]
fn cross_shard_hint_is_rejected_not_resumed() {
    let sharded = ShardedCache::new(builder(1 << 40), 4);
    let (tracer, rec) = Tracer::to_sink(RingRecorder::new(1 << 12));
    sharded.set_tracer(tracer);
    // Two session roots on different shards.
    let a_root = 100u32;
    let b_root = (101..10_000)
        .find(|&t| sharded.shard_of(&[t]) != sharded.shard_of(&[a_root]))
        .expect("some token routes elsewhere among 4 shards");
    let a: Vec<Token> = std::iter::once(a_root).chain(0..95).collect();
    let b: Vec<Token> = std::iter::once(b_root).chain(0..95).collect();
    let (_, cursor) = sharded.insert_at_with(&a, &seq(500..532), 0.0, None);
    let cursor = cursor.expect("shard admission mints a cursor");
    assert_eq!(
        cursor.shard(),
        sharded.shard_of(&a),
        "cursor carries its minting shard"
    );
    sharded.insert_at(&b, &seq(600..632), 1.0);
    // Spend A's cursor on B's session (routes to a different shard): the
    // owning shard must reject it and root-walk, byte-identical to no hint.
    let mut b_resume = b.clone();
    b_resume.extend(seq(600..632));
    b_resume.push(42);
    let hinted = sharded.lookup_at_with(&b_resume, 2.0, Some(cursor));
    let reference = ShardedCache::new(builder(1 << 40), 4);
    reference.insert_at(&a, &seq(500..532), 0.0);
    reference.insert_at(&b, &seq(600..632), 1.0);
    let cold = reference.lookup_at(&b_resume, 2.0);
    assert_eq!(hinted, cold, "cross-shard fallback must match root walk");
    assert_eq!(sharded.stats(), reference.stats());
    assert_eq!(fallback_causes(&rec), ["cross-shard"]);
    // A hint on its own shard still resumes.
    let mut a_resume = a.clone();
    a_resume.extend(seq(500..532));
    let (_, again) = sharded.insert_at_with(&a_resume, &seq(700..716), 3.0, None);
    let again = again.expect("cursor re-minted");
    let mut a_next = a_resume.clone();
    a_next.extend(seq(700..716));
    a_next.push(43);
    sharded.lookup_at_with(&a_next, 4.0, Some(again));
    assert_eq!(resumed_count(&rec), 1, "same-shard hint resumes");
}

/// One logical session: a growing conversation that each turn extends.
#[derive(Debug, Clone)]
struct Session {
    history: Vec<Token>,
    cursor: Option<SessionCursor>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random interleavings of N sessions, each turn randomly spending or
    /// dropping its hint (and occasionally diverging its history so stale
    /// cursors meet foreign queries): the hinted cache must agree with an
    /// unhinted twin on every lookup result, every admission report, and
    /// all end-state counters.
    #[test]
    fn random_interleavings_keep_hinted_and_unhinted_runs_identical(
        roots in prop::collection::vec(0u32..6, 2..5),
        turns in prop::collection::vec((0usize..4, 0u32..3, 1usize..24, 0u8..2), 1..40),
    ) {
        let m = ModelConfig::hybrid_7b();
        // Tight enough that long runs overflow and evict mid-stream.
        let capacity = 600 * m.kv_bytes_per_token();
        let mut hinted_cache = builder(capacity).build();
        let mut cold_cache = builder(capacity).build();
        let mut sessions: Vec<Session> = roots
            .iter()
            .map(|&r| Session { history: vec![r * 50_000], cursor: None })
            .collect();
        for (i, (which, kind, len, spend)) in turns.iter().enumerate() {
            let now = i as f64;
            let idx = which % sessions.len();
            let s = &mut sessions[idx];
            match kind {
                // Extend the conversation (the fast-path case).
                0 | 1 => {}
                // Diverge: rewrite the tail so a live cursor meets a
                // different continuation than it memoized.
                _ => {
                    let keep = s.history.len() / 2;
                    s.history.truncate(keep.max(1));
                }
            }
            let input = s.history.clone();
            let output: Vec<Token> = (0..*len as u32).map(|t| 30_000 + t).collect();
            let hint = if *spend == 1 { s.cursor.take() } else { None };
            let a = hinted_cache.lookup_at_with(&input, now, hint);
            let b = cold_cache.lookup_at(&input, now);
            prop_assert_eq!(a, b, "lookup diverged at turn {}", i);
            let (ra, next) = hinted_cache.insert_at_with(&input, &output, now, hint);
            let rb = cold_cache.insert_at(&input, &output, now);
            prop_assert_eq!(ra, rb, "admission diverged at turn {}", i);
            s.cursor = next;
            s.history.extend(output);
        }
        prop_assert_eq!(*hinted_cache.stats(), *cold_cache.stats());
        prop_assert_eq!(hinted_cache.usage_bytes(), cold_cache.usage_bytes());
        for s in &sessions {
            prop_assert_eq!(
                hinted_cache.longest_cached_prefix_len(&s.history),
                cold_cache.longest_cached_prefix_len(&s.history)
            );
        }
    }
}
