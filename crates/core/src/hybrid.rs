//! The Marconi prefix cache (and, with LRU eviction, the SGLang+ baseline).

use crate::cursor::{CursorHint, SessionCursor};
use crate::policy::{pick_victim_index, Candidate, EvictionPolicy};
use crate::result::{AdmissionReport, LookupResult};
use crate::stats::CacheStats;
use crate::tier::{ReloadPolicy, Tier, TieredPrefix};
use crate::tuner::{TunerConfig, TunerState};
use crate::{PinTicket, PrefixCache};
use marconi_model::ModelConfig;
use marconi_radix::{
    recency_stamp, CursorFault, InsertOutcome, MatchCursor, NodeId, PrefixMatch, RadixTree, Token,
};
use marconi_trace::{
    CursorFallbackCause, Fingerprint, MissCause, MissLedger, PressureCause, StatCounters,
    TraceEvent, TraceTier, Tracer, VictimAction, VictimRecord,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Per-node cache metadata: edge KVs are implicit (the edge's tokens); the
/// node additionally records SSM-checkpoint presence, the memory tier the
/// node's state lives on, recency, and the counters GDSF-style policies
/// need.
#[derive(Debug, Clone, Copy, Default)]
struct NodeMeta {
    last_access: f64,
    has_ssm_state: bool,
    /// Where this node's state (edge KVs + checkpoint) physically lives.
    /// Demotion flips it to [`Tier::Host`]; re-insertion through the node
    /// promotes it back. Always [`Tier::Device`] when `host_capacity = 0`.
    tier: Tier,
    /// Accesses since admission (GDSF's `F`).
    frequency: u32,
    /// GDSF priority `H = L + F·C/S`, refreshed on access.
    gdsf_priority: f64,
    /// Memoized eviction-scoring inputs, or `None` when never computed /
    /// explicitly invalidated (SSM-checkpoint admission). Also implicitly
    /// invalidated whenever the node's leaf status, edge length, or depth
    /// changes, via the tree's structure version.
    cost_memo: Option<CostMemo>,
}

/// Memoized per-node `freed_bytes` / `flop_efficiency`, valid while the
/// node's [`structure_version`](RadixTree::structure_version) still equals
/// `version`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CostMemo {
    version: u32,
    freed_bytes: u64,
    flop_efficiency: f64,
}

/// How SSM states are materialized at a branch point during prefill
/// (paper §4.1, "Obtaining states during prefill").
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize, Default)]
pub enum CheckpointMode {
    /// Two-pass prefill (or a custom roll-forward kernel): the state is
    /// checkpointed at the exact branch depth. Default.
    #[default]
    Exact,
    /// Chunked state passing (Mamba-2/RetNet/GLA-style): only states at
    /// chunk boundaries are materialized, so the checkpoint lands at the
    /// last boundary at or before the branch point, sacrificing up to
    /// `chunk_size − 1` tokens of reuse for minimal runtime overhead.
    Chunked {
        /// Prefill chunk size (e.g. 64 or 256).
        chunk_size: u64,
    },
}

impl CheckpointMode {
    /// The depth actually checkpointed for a branch at `branch_depth`.
    /// Returns 0 (no checkpoint) if no boundary precedes the branch.
    #[must_use]
    pub fn checkpoint_depth(self, branch_depth: u64) -> u64 {
        match self {
            CheckpointMode::Exact => branch_depth,
            CheckpointMode::Chunked { chunk_size } => {
                assert!(chunk_size > 0, "chunk size must be positive");
                (branch_depth / chunk_size) * chunk_size
            }
        }
    }
}

/// Bootstrap snapshot: the tree and its derived byte accounting (both
/// tiers' counters, so a tiered cache's replay replicas start from the
/// exact same residency state).
#[derive(Debug, Clone)]
struct Snapshot {
    tree: RadixTree<NodeMeta>,
    ssm_states: u64,
    host_tokens: u64,
    host_ssm_states: u64,
    clock: f64,
}

/// Internal tuner lifecycle (public view: [`TunerState`]).
#[derive(Debug, Clone)]
enum Tuner {
    Waiting {
        config: TunerConfig,
        requests_seen: u64,
    },
    Bootstrapping {
        config: TunerConfig,
        snapshot: Box<Snapshot>,
        recorded: Vec<(Vec<Token>, Vec<Token>, f64)>,
        target: u64,
    },
    Tuned {
        alpha: f64,
    },
}

/// Prefix cache for hybrid (and pure) LLMs over a radix tree, holding KVs
/// and SSM states for the same prefixes in the same nodes.
///
/// With the default [`EvictionPolicy::AutoTuned`] this is **Marconi**; with
/// [`EvictionPolicy::Lru`] it is the paper's **SGLang+** baseline (same
/// judicious admission, recency-only eviction).
///
/// See the [crate docs](crate) for the policy description and an example.
#[derive(Debug, Clone)]
pub struct HybridPrefixCache {
    /// Refcounted so every trace event clones a pointer, not a heap
    /// string (the live-recording hot path).
    name: Arc<str>,
    model: ModelConfig,
    capacity: u64,
    /// Host-DRAM tier budget in bytes. 0 disables tiering entirely: every
    /// device-pressure victim is deleted, exactly like the single-tier
    /// cache (the parity contract).
    host_capacity: u64,
    /// How host-resident hits are brought back to the device (consumed by
    /// the serving layer; a behavioral knob mirrored by tuner replicas).
    reload_policy: ReloadPolicy,
    tree: RadixTree<NodeMeta>,
    ssm_states: u64,
    /// Tokens of edges whose node is host-resident (device tokens are the
    /// tree total minus this).
    host_tokens: u64,
    /// SSM checkpoints on host-resident nodes.
    host_ssm_states: u64,
    policy: EvictionPolicy,
    tuner: Option<Tuner>,
    effective_alpha: f64,
    stats: CacheStats,
    clock: f64,
    checkpoint_mode: CheckpointMode,
    /// §4.3(2) ablation: refresh every ancestor's timestamp on a hit, like
    /// pre-Marconi systems, instead of only the accessed node's.
    refresh_ancestors: bool,
    /// §4.3(1) ablation: restrict eviction candidates to leaves, like
    /// pre-Marconi systems, leaving single-child nodes' SSM states pinned.
    leaf_only_eviction: bool,
    /// Honor in-flight pins ([`PrefixCache::pin_prefix`]): pinned nodes
    /// are excluded from eviction *and* demotion in both tiers. Off, the
    /// cache ignores pin requests entirely (tickets come back empty), for
    /// A/B-ing the headline mid-decode-reclaim bug. A behavioral knob
    /// mirrored by tuner replicas.
    pin_in_flight: bool,
    /// Honor session-cursor hints (PR 10): hinted lookups, insertions,
    /// and pins resume their walk from the hinted node instead of the
    /// root. Results are byte-identical either way (the parity contract),
    /// so the knob is behavioral only in that it decides whether
    /// `insert_at_with` mints cursors at all; mirrored by tuner replicas
    /// like every other knob.
    session_cursors: bool,
    /// GDSF inflation clock `L` (monotone, set to each victim's priority).
    gdsf_clock: f64,
    /// Decision-level flight recorder ([`Tracer::off`] by default — one
    /// dead branch per emit site). **Not** a behavioral knob: emission is
    /// read-only with respect to every decision, so it is attached after
    /// `build()` via [`set_tracer`](Self::set_tracer) and deliberately
    /// absent from the builder and from tuner replicas.
    tracer: Tracer,
    /// Fingerprints of deleted prefixes for miss attribution; written only
    /// while the tracer is enabled (and never read by any decision), so
    /// tracing stays off-is-free.
    miss_ledger: MissLedger,
    /// Victim ids in eviction order; recorded so parity tests can compare
    /// the incremental selection byte-for-byte against the scan reference.
    #[cfg(test)]
    eviction_log: Vec<NodeId>,
    /// Route evictions through the pre-refactor full-arena-scan selection
    /// (the parity tests' reference implementation).
    #[cfg(test)]
    use_scan_eviction: bool,
}

impl HybridPrefixCache {
    /// Starts building a cache for `model`.
    ///
    /// Defaults: 16 GiB capacity, [`EvictionPolicy::AutoTuned`], name
    /// derived from the policy.
    #[must_use]
    pub fn builder(model: ModelConfig) -> HybridPrefixCacheBuilder {
        HybridPrefixCacheBuilder {
            model,
            capacity: 16 << 30,
            host_capacity: 0,
            reload_policy: ReloadPolicy::default(),
            policy: EvictionPolicy::default(),
            name: None,
            checkpoint_mode: CheckpointMode::Exact,
            refresh_ancestors: false,
            leaf_only_eviction: false,
            pin_in_flight: true,
            session_cursors: true,
        }
    }

    /// The eviction policy this cache was built with.
    #[must_use]
    pub fn policy(&self) -> &EvictionPolicy {
        &self.policy
    }

    /// The α currently applied by eviction scoring (0 while the tuner is
    /// still in its LRU phase).
    #[must_use]
    pub fn current_alpha(&self) -> f64 {
        self.effective_alpha
    }

    /// Tuner lifecycle, when the policy is [`EvictionPolicy::AutoTuned`].
    #[must_use]
    pub fn tuner_state(&self) -> Option<TunerState> {
        self.tuner.as_ref().map(|t| match t {
            Tuner::Waiting { .. } => TunerState::WaitingForFirstEviction,
            Tuner::Bootstrapping {
                recorded, target, ..
            } => TunerState::Bootstrapping {
                recorded: recorded.len() as u64,
                target: *target,
            },
            Tuner::Tuned { alpha } => TunerState::Tuned { alpha: *alpha },
        })
    }

    /// Number of SSM checkpoints currently cached (both tiers).
    #[must_use]
    pub fn ssm_state_count(&self) -> u64 {
        self.ssm_states
    }

    /// Configured host-tier (DRAM) budget in bytes; 0 means the cache is
    /// single-tier and eviction deletes.
    #[must_use]
    pub fn host_capacity_bytes(&self) -> u64 {
        self.host_capacity
    }

    /// Bytes of model states currently demoted to the host tier.
    #[must_use]
    pub fn host_usage_bytes(&self) -> u64 {
        self.host_usage()
    }

    /// `true` if the cache honors in-flight pins (the default); see
    /// [`HybridPrefixCacheBuilder::in_flight_pinning`].
    #[must_use]
    pub fn pins_in_flight(&self) -> bool {
        self.pin_in_flight
    }

    /// Number of nodes currently protected by in-flight pins (diagnostic;
    /// counts every node on pinned paths, not tickets).
    #[must_use]
    pub fn pinned_node_count(&self) -> usize {
        self.tree.pinned_count()
    }

    /// Length and tier split of the longest *reusable* cached prefix of
    /// `input`, without mutating any cache state.
    ///
    /// The non-mutating-probe contract of
    /// [`longest_cached_prefix_len`](PrefixCache::longest_cached_prefix_len)
    /// applies unchanged, and `probe_tiers(input).tokens` always equals it;
    /// the extra `host_tokens` field lets cluster routers weigh a
    /// host-resident hit below an equally deep device-resident one.
    #[must_use]
    pub fn probe_tiers(&self, input: &[Token]) -> TieredPrefix {
        let m = self.tree.match_prefix(input);
        let tokens = self.reusable_len(&m);
        let (host_tokens, _, _) = self.host_share(&m, tokens);
        TieredPrefix {
            tokens,
            host_tokens,
        }
    }

    /// Number of live radix-tree nodes (diagnostic).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.tree.len()
    }

    /// Attaches a flight recorder: every subsequent decision (lookups with
    /// miss attribution, admissions, eviction episodes with per-victim
    /// score breakdowns, demotions/promotions, pins) is emitted through
    /// it. Recording is read-only — victim selection, admission, and every
    /// statistic stay byte-identical with any sink attached (the
    /// off-is-free contract; see `marconi_trace`). Deliberately not a
    /// builder knob: tuner replicas replay silently regardless.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The attached tracer (a clone can be handed to sibling components so
    /// one recorder receives the merged stream).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Emits a [`TraceEvent::Gauges`] telemetry snapshot (occupancy per
    /// tier, pinned nodes, cumulative counters) at virtual time `now`.
    /// Called automatically after every admission; serving layers may also
    /// call it on their own cadence. No-op while the tracer is disabled.
    pub fn emit_gauges(&self, now: f64) {
        self.tracer.emit(|| TraceEvent::Gauges {
            ts: now,
            cache: self.name.clone(),
            usage_bytes: self.usage(),
            host_usage_bytes: self.host_usage(),
            pinned_nodes: self.tree.pinned_count() as u64,
            counters: StatCounters {
                lookups: self.stats.lookups,
                hits: self.stats.hits,
                input_tokens: self.stats.input_tokens,
                hit_tokens: self.stats.hit_tokens,
                host_hit_tokens: self.stats.host_hit_tokens,
                evictions: self.stats.evictions,
                demotions: self.stats.demotions,
            },
        });
    }

    /// Convenience [`PrefixCache::lookup_at`] using an internal logical
    /// clock.
    pub fn lookup(&mut self, input: &[Token]) -> LookupResult {
        self.clock += 1.0;
        let now = self.clock;
        self.lookup_at(input, now)
    }

    /// Convenience [`PrefixCache::insert_at`] using an internal logical
    /// clock.
    pub fn insert_sequence(&mut self, input: &[Token], output: &[Token]) -> AdmissionReport {
        self.clock += 1.0;
        let now = self.clock;
        self.insert_at(input, output, now)
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    /// Device-resident bytes (the quantity the device capacity bounds).
    /// With `host_capacity = 0` no node is ever host-resident, so this is
    /// exactly the pre-tiering total.
    fn usage(&self) -> u64 {
        (self.tree.token_count() - self.host_tokens) * self.model.kv_bytes_per_token()
            + (self.ssm_states - self.host_ssm_states) * self.model.ssm_checkpoint_bytes()
    }

    /// Host-resident bytes (the quantity the host capacity bounds).
    fn host_usage(&self) -> u64 {
        self.host_tokens * self.model.kv_bytes_per_token()
            + self.host_ssm_states * self.model.ssm_checkpoint_bytes()
    }

    /// Bytes a node's state occupies on its tier: its edge KVs plus its
    /// checkpoint. (Unlike [`freed_bytes`](Self::freed_bytes) this counts
    /// the edge KVs of intermediate nodes too — demotion moves the whole
    /// node's state, whereas deletion hands intermediate edges to the
    /// child.)
    fn node_bytes(&self, id: NodeId) -> u64 {
        let ssm = if self.tree.data(id).has_ssm_state {
            self.model.ssm_checkpoint_bytes()
        } else {
            0
        };
        self.tree.edge_len(id) * self.model.kv_bytes_per_token() + ssm
    }

    /// Moves a device-resident node's state to the host tier; returns the
    /// bytes moved. Tree structure (and therefore every memoized score) is
    /// untouched — only residency accounting changes.
    fn demote(&mut self, id: NodeId) -> u64 {
        let meta = self.tree.data(id);
        debug_assert_eq!(meta.tier, Tier::Device, "double demotion of {id}");
        let bytes = self.node_bytes(id);
        self.host_tokens += self.tree.edge_len(id);
        if meta.has_ssm_state {
            self.host_ssm_states += 1;
        }
        self.tree.data_mut(id).tier = Tier::Host;
        bytes
    }

    /// Promotes every host-resident node on the path ending at `end` back
    /// to the device tier. Called after admission with the admitted
    /// sequence's end node: prefilling (or reloading) the sequence
    /// materialized those states on the device, so the path is
    /// device-resident again and the following pressure episode re-decides
    /// what to demote. Walks the parent chain (O(path nodes)) rather than
    /// re-matching from the root (O(prompt tokens)) — the node set is
    /// identical because the admitted sequence's fully-matched path *is*
    /// the end node's root path. No-op on a host-empty cache — in
    /// particular, byte-identical behavior when `host_capacity = 0`.
    /// Returns the tokens whose state moved host → device (trace
    /// telemetry only).
    fn promote_resident_path(&mut self, end: Option<NodeId>) -> u64 {
        if self.host_tokens == 0 {
            return 0;
        }
        let Some(end) = end else {
            return 0;
        };
        let mut promoted = 0u64;
        let mut cur = end;
        // The loop visits every node on the path except the root (which
        // carries no edge or payload).
        while let Some(parent) = self.tree.parent(cur) {
            if self.tree.data(cur).tier == Tier::Host {
                let edge = self.tree.edge_len(cur);
                self.host_tokens -= edge;
                promoted += edge;
                if self.tree.data(cur).has_ssm_state {
                    self.host_ssm_states -= 1;
                }
                self.tree.data_mut(cur).tier = Tier::Device;
            }
            cur = parent;
        }
        promoted
    }

    /// Repairs tier attribution after an insertion split an edge: the new
    /// intermediate node holds the *head* tokens of the split edge, so it
    /// must inherit the old child's tier or host-token accounting drifts
    /// (the tree itself default-initializes new payloads to
    /// [`Tier::Device`]).
    fn inherit_split_tier(&mut self, outcome: &InsertOutcome) {
        if self.host_tokens == 0 {
            return;
        }
        let Some(mid) = outcome.split_node else {
            return;
        };
        let old_child = self
            .tree
            .children(mid)
            .find(|&c| Some(c) != outcome.new_leaf);
        if let Some(c) = old_child {
            if self.tree.data(c).tier == Tier::Host {
                // Tokens moved between two host-resident edges: the
                // counters are already correct, only the flag was missing.
                self.tree.data_mut(mid).tier = Tier::Host;
            }
        }
    }

    /// Reusable prefix length for a match, shared by `lookup_at`,
    /// `longest_cached_prefix_len`, and `probe_tiers` so the three can
    /// never disagree. All-or-nothing for SSM models (deepest checkpointed
    /// node on the path); the raw match for pure Transformers.
    fn reusable_len(&self, m: &PrefixMatch) -> u64 {
        if self.model.has_ssm() {
            m.path
                .iter()
                .rev()
                .copied()
                .find(|&id| self.tree.data(id).has_ssm_state)
                .map_or(0, |id| self.tree.depth(id))
        } else {
            m.matched_len
        }
    }

    /// Host-resident share of a hit of `tokens_matched` tokens along `m`:
    /// `(host tokens, bytes to transfer, FLOPs to recompute)`.
    ///
    /// Walks the matched path once; each host-tier node contributes its
    /// edge KV bytes and its span's incremental prefill FLOPs, and the hit
    /// node's SSM checkpoint contributes its bytes when host-resident. The
    /// recompute arm is idealized roll-forward accounting: a span `[a, b)`
    /// costs `prefill_flops(b) − prefill_flops(a)`, exact for attention KVs
    /// and an optimistic bound for interior SSM spans (demotion targets
    /// ≤ 1-child chains, so host spans are suffixes of the matched path in
    /// practice).
    fn host_share(&self, m: &PrefixMatch, tokens_matched: u64) -> (u64, u64, u128) {
        if self.host_tokens == 0 || tokens_matched == 0 {
            return (0, 0, 0);
        }
        let kv = self.model.kv_bytes_per_token();
        let mut h_tokens = 0u64;
        let mut h_bytes = 0u64;
        let mut h_flops = 0u128;
        for &id in &m.path {
            let depth = self.tree.depth(id);
            if depth > tokens_matched {
                break;
            }
            let meta = self.tree.data(id);
            if meta.tier == Tier::Host {
                let edge = self.tree.edge_len(id);
                h_tokens += edge;
                h_bytes += edge * kv;
                h_flops += self.model.prefill_flops(depth).total()
                    - self.model.prefill_flops(depth - edge).total();
                if meta.has_ssm_state && depth == tokens_matched && self.model.has_ssm() {
                    h_bytes += self.model.ssm_checkpoint_bytes();
                }
            }
        }
        // A pure-Transformer match may end inside an edge: the partial
        // tokens live in the containing child.
        if let Some(child) = m.mid_edge_child {
            let start = self.tree.depth(child) - self.tree.edge_len(child);
            if tokens_matched > start && self.tree.data(child).tier == Tier::Host {
                let part = tokens_matched - start;
                h_tokens += part;
                h_bytes += part * kv;
                h_flops += self.model.prefill_flops(tokens_matched).total()
                    - self.model.prefill_flops(start).total();
            }
        }
        (h_tokens, h_bytes, h_flops)
    }

    // ------------------------------------------------------------------
    // Session-cursor fast path (PR 10). A hint is *only* a shortcut: any
    // validation failure falls back to the root walk, and a resumed walk
    // is byte-identical to the root walk by the radix layer's
    // path-invariance contract. See docs/session-fastpath.md.
    // ------------------------------------------------------------------

    /// Validates a radix cursor against this cache's state: the tree-level
    /// checks (generation, structure version, token divergence) plus the
    /// cache-level rule that the resume node's state must still be
    /// device-resident (a demoted resume path means the session has gone
    /// cold; distrust the hint). Returns the live resume node.
    fn resolve_cursor(
        &self,
        cursor: &MatchCursor,
        query: &[Token],
    ) -> Result<NodeId, CursorFallbackCause> {
        let node = self.tree.resume(cursor, query).map_err(|f| match f {
            CursorFault::StaleGeneration => CursorFallbackCause::StaleGeneration,
            CursorFault::StructureChanged => CursorFallbackCause::StructureChanged,
            CursorFault::QueryTooShort | CursorFault::EdgeDivergence => {
                CursorFallbackCause::QueryDiverged
            }
        })?;
        if self.tree.data(node).tier != Tier::Device {
            return Err(CursorFallbackCause::ResumeDemoted);
        }
        Ok(node)
    }

    /// Resolves a hint and produces the prefix match for `query`: resumed
    /// from the hinted node when the hint validates, the root walk
    /// otherwise. The second value is the telemetry outcome for
    /// [`emit_cursor_outcome`](Self::emit_cursor_outcome).
    fn match_with_hint(&self, query: &[Token], hint: CursorHint) -> (PrefixMatch, HintOutcome) {
        if !self.session_cursors {
            return (self.tree.match_prefix(query), HintOutcome::Cold);
        }
        let cursor = match hint {
            CursorHint::Cold => return (self.tree.match_prefix(query), HintOutcome::Cold),
            CursorHint::Rejected(cause) => {
                return (self.tree.match_prefix(query), HintOutcome::Fallback(cause));
            }
            CursorHint::Hint(c) => c,
        };
        match self.resolve_cursor(&cursor, query) {
            Ok(node) => {
                let m = self
                    .tree
                    .match_prefix_from(&cursor, query)
                    .expect("invariant: the cursor was validated against this query");
                let outcome = HintOutcome::Resumed {
                    node,
                    resumed_len: cursor.matched_len(),
                };
                (m, outcome)
            }
            Err(cause) => (self.tree.match_prefix(query), HintOutcome::Fallback(cause)),
        }
    }

    /// Emits the one cursor telemetry event a hinted operation produces
    /// (nothing for unhinted operations). Inside `emit(|| ...)` closures,
    /// so off stays free.
    fn emit_cursor_outcome(&self, outcome: &HintOutcome, query_len: usize, now: f64) {
        match *outcome {
            HintOutcome::Cold => {}
            HintOutcome::Resumed { node, resumed_len } => {
                self.tracer.emit(|| TraceEvent::CursorResumed {
                    ts: now,
                    cache: self.name.clone(),
                    node: node.index() as u64,
                    resumed_len,
                    delta_tokens: query_len as u64 - resumed_len,
                });
            }
            HintOutcome::Fallback(cause) => {
                self.tracer.emit(|| TraceEvent::CursorFallback {
                    ts: now,
                    cache: self.name.clone(),
                    cause,
                });
            }
        }
    }

    /// Maps the public `Option<SessionCursor>` hint into the internal
    /// [`CursorHint`]. An unsharded cache only honors shard-0 handles: a
    /// hint minted by a sharded front-end surfaces as a cross-shard
    /// fallback instead of silently resuming in the wrong tree.
    fn hint_from(hint: Option<SessionCursor>) -> CursorHint {
        match hint {
            None => CursorHint::Cold,
            Some(h) if h.shard == 0 => CursorHint::Hint(h.cursor),
            Some(_) => CursorHint::Rejected(CursorFallbackCause::CrossShard),
        }
    }

    /// Inserts `tokens`, resuming from the validated `resume` node when a
    /// fresh cursor can be captured there and `tokens` still extends its
    /// prefix; falls back to the root insert otherwise. Both paths produce
    /// byte-identical trees by the radix differential contract — the
    /// resume is purely a walk shortcut.
    ///
    /// A *fresh* cursor is captured per insert (rather than reusing the
    /// caller's) because earlier inserts in the same admission may have
    /// bumped the resume node's version (leaf flip, new child). The node
    /// itself cannot die mid-admission — inserts never remove nodes and
    /// eviction only runs after all of them — and its depth is
    /// path-invariant, so `cursor_at` always re-captures a valid resume
    /// point; `insert_from`'s own validation covers the rest (e.g. a
    /// checkpoint prefix shorter than the resume depth).
    /// The sequence arrives as the virtual concatenation `head ‖ tail`
    /// (callers with a single slice pass an empty tail), so admitting an
    /// input + output pair never allocates or copies the joined prompt —
    /// the seam-aware tree walks read the segments in place.
    fn insert_via(
        &mut self,
        resume: Option<NodeId>,
        head: &[Token],
        tail: &[Token],
    ) -> InsertOutcome {
        if let Some(id) = resume {
            if let Some(c) = self.tree.cursor_at(id) {
                if let Ok(outcome) = self.tree.insert_parts_from(&c, head, tail) {
                    return outcome;
                }
            }
        }
        self.tree.insert_parts(head, tail)
    }

    // ------------------------------------------------------------------
    // Flight-recorder emit helpers. Everything below is read-only with
    // respect to cache decisions and runs only while the tracer is
    // enabled (the off-is-free contract).
    // ------------------------------------------------------------------

    /// Miss-attribution taxonomy for one resolved lookup: `None` for a
    /// clean full-length device hit, otherwise the dominant cause —
    /// a raw match forfeited by the SSM all-or-nothing rule, a prefix the
    /// miss ledger remembers deleting (capacity pressure, or squeezed out
    /// while other paths were pinned), a degraded host-tier hit, or plain
    /// cold.
    fn classify_lookup(&self, input: &[Token], result: &LookupResult) -> Option<MissCause> {
        let input_len = input.len() as u64;
        if result.tokens_matched == input_len && result.host_tokens == 0 {
            return None;
        }
        if result.raw_matched > result.tokens_matched {
            return Some(MissCause::NeverCheckpointedSsm);
        }
        if let Some(cause) = self
            .miss_ledger
            .deepest_match(input, result.tokens_matched as usize)
        {
            return Some(cause);
        }
        if result.host_tokens > 0 {
            return Some(MissCause::DemotedHostHit);
        }
        if result.tokens_matched < input_len {
            return Some(MissCause::Cold);
        }
        None
    }

    /// Assembles the per-victim score breakdown for an eviction-episode
    /// event. Reads the same memoized inputs the scorer reads; populating
    /// the memo is invisible to every decision and log.
    fn victim_record(&mut self, victim: NodeId, action: VictimAction) -> VictimRecord {
        let (freed, eff) = self.node_costs(victim);
        let bytes = match action {
            VictimAction::Evicted => freed,
            VictimAction::Demoted => self.node_bytes(victim),
        };
        VictimRecord {
            node: victim.index() as u64,
            depth: self.tree.depth(victim),
            last_access: self.tree.data(victim).last_access,
            flop_efficiency: eff,
            bytes,
            action,
        }
    }

    /// Emits an [`TraceEvent::EdgeSplit`] if `outcome` split an edge.
    fn emit_split(&self, outcome: &InsertOutcome, now: f64) {
        if let Some(mid) = outcome.split_node {
            self.tracer.emit(|| TraceEvent::EdgeSplit {
                ts: now,
                cache: self.name.clone(),
                node: mid.index() as u64,
                new_leaf: outcome.new_leaf.map(|l| l.index() as u64),
            });
        }
    }

    /// Emits one [`TraceEvent::EvictionEpisode`] for the victims an
    /// episode took (no-op for an empty episode).
    fn emit_episode(
        &self,
        now: f64,
        tier: Tier,
        cause: PressureCause,
        pool_len: usize,
        victims: Vec<VictimRecord>,
    ) {
        if victims.is_empty() {
            return;
        }
        self.tracer.emit(|| TraceEvent::EvictionEpisode {
            ts: now,
            cache: self.name.clone(),
            tier: match tier {
                Tier::Device => TraceTier::Device,
                Tier::Host => TraceTier::Host,
            },
            cause,
            pool_len: pool_len as u64,
            alpha: self.effective_alpha,
            victims,
        });
    }

    /// Debug/test-only: the incremental host counters must equal a
    /// from-scratch scan of per-node tiers.
    #[cfg(any(debug_assertions, test))]
    fn assert_tier_accounting(&self) {
        let mut tokens = 0u64;
        let mut ssm = 0u64;
        for id in self.tree.node_ids() {
            let meta = self.tree.data(id);
            if meta.tier == Tier::Host {
                tokens += self.tree.edge_len(id);
                ssm += u64::from(meta.has_ssm_state);
            }
        }
        assert_eq!(tokens, self.host_tokens, "host_tokens drift");
        assert_eq!(ssm, self.host_ssm_states, "host_ssm_states drift");
    }

    /// Bytes that evicting `id` would free: a leaf releases its edge KVs
    /// and checkpoint; an intermediate node only its checkpoint (the child
    /// absorbs the edge KVs, §4.3).
    fn freed_bytes(&self, id: NodeId) -> u64 {
        let ssm = if self.tree.data(id).has_ssm_state {
            self.model.ssm_checkpoint_bytes()
        } else {
            0
        };
        if self.tree.is_leaf(id) {
            self.tree.edge_len(id) * self.model.kv_bytes_per_token() + ssm
        } else {
            ssm
        }
    }

    /// FLOPs a hit at `id` saves relative to its parent, per byte freed by
    /// evicting `id` (infinite when eviction frees nothing).
    fn node_flop_efficiency(&self, id: NodeId) -> f64 {
        let freed = self.freed_bytes(id);
        if freed == 0 {
            return f64::INFINITY;
        }
        let parent_depth = self
            .tree
            .parent(id)
            .map(|p| self.tree.depth(p))
            .unwrap_or(0);
        let delta =
            self.model.flops_saved(self.tree.depth(id)) - self.model.flops_saved(parent_depth);
        delta as f64 / freed as f64
    }

    /// Memoized `(freed_bytes, flop_efficiency)` for `id`.
    ///
    /// The FLOP math behind these scores walks the model's layer
    /// configuration, which dominated the old per-victim re-scan; here it
    /// runs once per node and is reused until the node's leaf status, edge
    /// length, or depth changes (tracked by the tree's structure version)
    /// or an SSM checkpoint lands on the node (explicit invalidation in
    /// [`checkpoint`](Self::checkpoint)).
    fn node_costs(&mut self, id: NodeId) -> (u64, f64) {
        let version = self.tree.structure_version(id);
        if let Some(memo) = self.tree.data(id).cost_memo {
            if memo.version == version {
                debug_assert_eq!(
                    memo.freed_bytes,
                    self.freed_bytes(id),
                    "stale freed_bytes memo on {id}"
                );
                debug_assert_eq!(
                    memo.flop_efficiency.to_bits(),
                    self.node_flop_efficiency(id).to_bits(),
                    "stale flop_efficiency memo on {id}"
                );
                return (memo.freed_bytes, memo.flop_efficiency);
            }
        }
        let freed = self.freed_bytes(id);
        let eff = self.node_flop_efficiency(id);
        self.tree.data_mut(id).cost_memo = Some(CostMemo {
            version,
            freed_bytes: freed,
            flop_efficiency: eff,
        });
        (freed, eff)
    }

    /// Refreshes a node's GDSF priority `H = L + F·C/S` after an access.
    ///
    /// No-op unless the active policy is [`EvictionPolicy::Gdsf`]: the
    /// other policies never read `frequency`/`gdsf_priority`, so paying a
    /// parent lookup plus two FLOP evaluations per inserted node for them
    /// was pure overhead.
    fn refresh_gdsf(&mut self, id: NodeId, bump_frequency: bool) {
        if !matches!(self.policy, EvictionPolicy::Gdsf) {
            return;
        }
        let (_, cost_per_byte) = self.node_costs(id);
        let clock = self.gdsf_clock;
        let meta = self.tree.data_mut(id);
        if bump_frequency {
            meta.frequency = meta.frequency.saturating_add(1);
        } else if meta.frequency == 0 {
            meta.frequency = 1;
        }
        meta.gdsf_priority = clock + f64::from(meta.frequency) * cost_per_byte;
    }

    /// Picks the GDSF victim's position in `pool`: minimum priority, ties
    /// toward older nodes, then lower ids — a strict total order, so the
    /// result is independent of pool ordering.
    fn pick_gdsf_victim_index(&self, pool: &[NodeId]) -> Option<usize> {
        pool.iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| {
                let (ma, mb) = (self.tree.data(a), self.tree.data(b));
                ma.gdsf_priority
                    .total_cmp(&mb.gdsf_priority)
                    .then(ma.last_access.total_cmp(&mb.last_access))
                    .then(a.cmp(&b))
            })
            .map(|(i, _)| i)
    }

    /// Resolves memory pressure on both tiers.
    ///
    /// Phase 1 (*device pressure*): while device usage exceeds the device
    /// capacity, pick the lowest-utility device-resident candidate with the
    /// existing victim machinery. With a host tier (`host_capacity > 0`)
    /// the victim is **demoted** — its whole state moves to host DRAM, the
    /// tree is untouched; without one (or for zero-byte structural nodes)
    /// it is deleted exactly as before, so `host_capacity = 0` is
    /// byte-identical to the single-tier cache.
    ///
    /// Phase 2 (*host pressure*): while host usage exceeds the host budget,
    /// the same victim machinery runs over the host-resident candidates and
    /// **deletes** them (host is the last tier). Deleting a host-resident
    /// intermediate node hands its edge to the absorbing child, re-homing
    /// those KVs on the child's tier.
    ///
    /// The phases repeat until both tiers fit or neither can make progress
    /// (a merge into a device child can push the device tier back over).
    ///
    /// Complexity contract (PR 2, per tier): one pressure episode costs
    /// O(candidates) to build the victim pool — straight off the tree's
    /// incremental candidate index, never an arena scan — plus O(pool) of
    /// cheap memoized score reads per victim, with in-place pool repair.
    /// Selection at `host_capacity = 0` is deterministically identical to
    /// re-collecting and re-scoring every candidate per victim (the
    /// pre-refactor behavior); debug builds re-verify pool membership, memo
    /// freshness, and tier accounting on every iteration.
    fn evict_until_fits(&mut self, report: &mut AdmissionReport) {
        #[cfg(test)]
        if self.use_scan_eviction {
            debug_assert_eq!(self.host_capacity, 0, "the scan reference predates tiering");
            return self.evict_until_fits_scan(report);
        }
        #[cfg(debug_assertions)]
        self.assert_tier_accounting();
        loop {
            let work_before = self.stats.evictions + self.stats.demotions;
            self.evict_device_pressure(report);
            self.evict_host_pressure(report);
            let fits = self.usage() <= self.capacity && self.host_usage() <= self.host_capacity;
            if fits || self.stats.evictions + self.stats.demotions == work_before {
                break;
            }
        }
    }

    /// Collects the victim pool for one tier: eviction candidates resident
    /// on `tier` (plus the leaf-only ablation filter), excluding nodes
    /// protected by in-flight pins.
    ///
    /// Pinned nodes are *filtered out* here rather than removed from the
    /// candidate index: removal would swap-reorder the index permanently,
    /// so even a transient pin would perturb the pin-free victim order.
    /// Filtering leaves the index untouched — with zero pins the pool is
    /// byte-identical to the pre-pinning build.
    ///
    /// The pool is drawn from the recency index's `lru_candidates()`
    /// (the PR 8 follow-on): one candidate source for every policy
    /// family, already in ascending `(stamp, id)` order. The scored
    /// pickers are pool-order-independent (strict total orders), so this
    /// only unifies the plumbing; the debug scan assert keeps proving the
    /// membership.
    fn tier_pool(&self, tier: Tier) -> Vec<NodeId> {
        let leaf_only = self.leaf_only_eviction;
        self.tree
            .lru_candidates()
            .map(|(_, id)| id)
            .filter(|&id| self.tree.data(id).tier == tier)
            .filter(|&id| !leaf_only || self.tree.is_leaf(id))
            .filter(|&id| !self.tree.is_pinned(id))
            .collect()
    }

    /// Phase 1: demote (or, single-tier, delete) device-resident victims
    /// until device usage fits.
    ///
    /// Demotion of the ≤ 1-child candidates can strand device bytes:
    /// a branch node whose children were all *demoted* (not deleted) keeps
    /// its 2+ children forever, never enters the candidate pool, and its
    /// edge KVs pin the device tier. Deletion never had this problem
    /// (removing leaves cascaded candidacy up). Demotion, however — unlike
    /// deletion — is structurally safe for *any* node, so when the
    /// candidate pool drains with the device tier still over its (hard,
    /// physical) capacity, a fallback pass demotes the remaining
    /// device-resident nodes by the same score until it fits.
    fn evict_device_pressure(&mut self, report: &mut AdmissionReport) {
        if self.usage() <= self.capacity || self.tree.is_empty() {
            return;
        }
        if self.lru_fast_path() {
            self.lru_tier_pressure(Tier::Device, report);
        } else {
            self.scored_tier_pressure(Tier::Device, report);
        }
        // Fallback: the candidate pool drained but non-candidate (2+
        // child) device nodes still hold bytes. Only reachable with a host
        // tier (single-tier deletion always cascades down to fit), so the
        // O(arena) scan never touches the parity path.
        if self.host_capacity > 0 && self.usage() > self.capacity {
            let mut rest: Vec<NodeId> = self
                .tree
                .node_ids()
                .filter(|&id| self.tree.data(id).tier == Tier::Device && self.node_bytes(id) > 0)
                .filter(|&id| !self.tree.is_pinned(id))
                .collect();
            let mut scored: Vec<Candidate<NodeId>> = Vec::with_capacity(rest.len());
            let pool_len = rest.len();
            let mut episode: Option<Vec<VictimRecord>> = self.tracer.is_enabled().then(Vec::new);
            while self.usage() > self.capacity {
                let Some(i) = self.pick_from_pool(&rest, &mut scored) else {
                    break;
                };
                let victim = rest.swap_remove(i);
                if let Some(ep) = episode.as_mut() {
                    ep.push(self.victim_record(victim, VictimAction::Demoted));
                }
                self.demote_victim(victim, report);
            }
            if let Some(victims) = episode {
                self.emit_episode(
                    self.clock,
                    Tier::Device,
                    PressureCause::DeviceFallback,
                    pool_len,
                    victims,
                );
            }
            // In-flight pins are the one legitimate way the fallback can
            // come up short: pinned bytes are unreclaimable until their
            // requests complete, so the device tier spills over its budget
            // rather than corrupting an in-flight path (graceful
            // admit-while-over-budget, not a livelock — the caller's
            // no-progress check terminates the episode).
            debug_assert!(
                self.usage() <= self.capacity
                    || self
                        .tree
                        .pinned_ids()
                        .any(|id| self.tree.data(id).tier == Tier::Device),
                "every unpinned device byte is demotable, so the fallback must fit"
            );
        }
    }

    /// Phase 2: delete host-resident victims until host usage fits the
    /// host budget. Host is the last tier, so pressure here means deletion
    /// — same candidate set, same scoring, same pool repair as the device
    /// phase. Host-resident nodes that grew extra children since demotion
    /// are not candidates (deleting a shared prefix is structurally
    /// impossible); when only those remain the pool drains and the host
    /// tier stays (softly) over budget until their descendants go.
    fn evict_host_pressure(&mut self, report: &mut AdmissionReport) {
        if self.host_usage() <= self.host_capacity || self.tree.is_empty() {
            return;
        }
        if self.lru_fast_path() {
            self.lru_tier_pressure(Tier::Host, report);
        } else {
            self.scored_tier_pressure(Tier::Host, report);
        }
    }

    /// One pressure episode for `tier` through the scored victim pool: the
    /// PR 2 machinery — build the tier's pool once, re-score it per victim
    /// with memoized cost reads, repair it in place. Device episodes
    /// demote byte-bearing victims when a host tier exists; host episodes
    /// (the last tier) always delete.
    ///
    /// Since PR 9 the pool is snapshotted off the tree's O(log n) recency
    /// index ([`tier_pool`](Self::tier_pool) iterates `lru_candidates()`),
    /// the same source the LRU fast path consumes — victim choice is
    /// independent of pool ordering (strict `(score, last_access, id)` /
    /// GDSF total orders), so selection is byte-identical to the old
    /// `eviction_candidates()` sourcing, and the debug pool-vs-scan assert
    /// still re-proves the membership every iteration.
    fn scored_tier_pressure(&mut self, tier: Tier, report: &mut AdmissionReport) {
        let mut pool = self.tier_pool(tier);
        let mut scored: Vec<Candidate<NodeId>> = Vec::with_capacity(pool.len());
        let pool_len = pool.len();
        let mut episode: Option<Vec<VictimRecord>> = self.tracer.is_enabled().then(Vec::new);
        loop {
            let pressing = match tier {
                Tier::Device => self.usage() > self.capacity && !self.tree.is_empty(),
                Tier::Host => self.host_usage() > self.host_capacity && !pool.is_empty(),
            };
            if !pressing {
                break;
            }
            #[cfg(debug_assertions)]
            self.assert_pool_matches_scan(&pool, tier);
            let Some(i) = self.pick_from_pool(&pool, &mut scored) else {
                break;
            };
            let victim = pool.swap_remove(i);
            // Tiered mode: demote everything that actually moves bytes;
            // zero-byte structural nodes (no checkpoint, zero-width KVs)
            // still merge away so the loop always progresses.
            if tier == Tier::Device && self.host_capacity > 0 && self.node_bytes(victim) > 0 {
                if let Some(ep) = episode.as_mut() {
                    ep.push(self.victim_record(victim, VictimAction::Demoted));
                }
                self.demote_victim(victim, report);
                continue;
            }
            if let Some(ep) = episode.as_mut() {
                ep.push(self.victim_record(victim, VictimAction::Evicted));
            }
            self.delete_victim(victim, &mut pool, report, tier);
        }
        if let Some(victims) = episode {
            let cause = match tier {
                Tier::Device => PressureCause::DeviceCapacity,
                Tier::Host => PressureCause::HostCapacity,
            };
            self.emit_episode(self.clock, tier, cause, pool_len, victims);
        }
    }

    /// `true` when victim selection collapses to pure LRU — a non-GDSF
    /// policy with `effective_alpha == 0` (Lru always; FlopAware at
    /// `α = 0`; AutoTuned until the tuner decides on a nonzero α). Under
    /// that collapse [`pick_victim_index`] reduces to the minimum of
    /// `(last_access, id)`, which is exactly the ascending key order of the
    /// tree's recency index, so the O(log n) episode in
    /// [`lru_tier_pressure`](Self::lru_tier_pressure) picks byte-identical
    /// victims without building or re-scoring a pool.
    fn lru_fast_path(&self) -> bool {
        !matches!(self.policy, EvictionPolicy::Gdsf) && self.effective_alpha == 0.0
    }

    /// One pressure episode for `tier` on the LRU fast path: victims come
    /// straight off the tree's O(log n) recency index instead of a
    /// re-scored pool, in provably the same order as
    /// [`pick_from_pool`](Self::pick_from_pool) (see
    /// [`lru_fast_path`](Self::lru_fast_path); debug builds re-check every
    /// pick against the scored reference).
    ///
    /// The episode snapshots the index's `(stamp, id)` entries once, then
    /// merges in parents promoted to candidacy by mid-episode deletions
    /// through a min-heap keyed the same way. Entries the episode itself
    /// invalidates (deleted nodes, demoted nodes, duplicates of a
    /// heap-promoted parent under leaf-only ablation) are rejected at
    /// consumption time by re-checking liveness, stamp, child count, tier,
    /// leaf status, and pins against the live tree — the same predicates
    /// [`tier_pool`](Self::tier_pool) builds from.
    fn lru_tier_pressure(&mut self, tier: Tier, report: &mut AdmissionReport) {
        let over = |c: &Self| match tier {
            Tier::Device => c.usage() > c.capacity,
            Tier::Host => c.host_usage() > c.host_capacity,
        };
        let snapshot: Vec<(u64, NodeId)> = self.tree.lru_candidates().collect();
        let mut cursor = 0usize;
        let mut promoted: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
        let mut sink: Vec<NodeId> = Vec::new();
        let pool_len = snapshot.len();
        let mut episode: Option<Vec<VictimRecord>> = self.tracer.is_enabled().then(Vec::new);
        while over(self) && !self.tree.is_empty() {
            let victim = loop {
                // Next entry in global (stamp, id) order across the
                // snapshot and the promoted parents.
                let snap = snapshot.get(cursor).copied();
                let prom = promoted.peek().map(|r| r.0);
                let (stamp, id) = match (snap, prom) {
                    (None, None) => break None,
                    (Some(s), None) => {
                        cursor += 1;
                        s
                    }
                    (None, Some(p)) => {
                        promoted.pop();
                        p
                    }
                    (Some(s), Some(p)) => {
                        if s <= p {
                            cursor += 1;
                            s
                        } else {
                            promoted.pop();
                            p
                        }
                    }
                };
                // Consumption-time staleness filters (tier_pool's
                // predicates, re-evaluated against the live tree).
                if !self.tree.contains(id) || self.tree.stamp(id) != stamp {
                    continue;
                }
                if self.tree.child_count(id) > 1 || self.tree.data(id).tier != tier {
                    continue;
                }
                if self.leaf_only_eviction && !self.tree.is_leaf(id) {
                    continue;
                }
                if self.tree.is_pinned(id) {
                    continue;
                }
                break Some(id);
            };
            let Some(victim) = victim else {
                break;
            };
            #[cfg(debug_assertions)]
            self.assert_lru_victim_matches_scored_pick(victim, tier);
            if tier == Tier::Device && self.host_capacity > 0 && self.node_bytes(victim) > 0 {
                if let Some(ep) = episode.as_mut() {
                    ep.push(self.victim_record(victim, VictimAction::Demoted));
                }
                self.demote_victim(victim, report);
                continue;
            }
            if let Some(ep) = episode.as_mut() {
                ep.push(self.victim_record(victim, VictimAction::Evicted));
            }
            // delete_victim pushes any parent that just became eligible
            // for this tier's pool into `sink` — exactly the entries the
            // scored loop would append — and they re-enter the merged
            // stream through the heap at their current stamp.
            self.delete_victim(victim, &mut sink, report, tier);
            for parent in sink.drain(..) {
                promoted.push(Reverse((self.tree.stamp(parent), parent)));
            }
        }
        if let Some(victims) = episode {
            let cause = match tier {
                Tier::Device => PressureCause::DeviceCapacity,
                Tier::Host => PressureCause::HostCapacity,
            };
            self.emit_episode(self.clock, tier, cause, pool_len, victims);
        }
    }

    /// Debug-only: the fast-path victim must equal what the scored pool
    /// loop would have picked at this exact cache state.
    #[cfg(debug_assertions)]
    fn assert_lru_victim_matches_scored_pick(&mut self, victim: NodeId, tier: Tier) {
        let pool = self.tier_pool(tier);
        self.assert_pool_matches_scan(&pool, tier);
        let mut scored = Vec::with_capacity(pool.len());
        let want = self
            .pick_from_pool(&pool, &mut scored)
            .map(|i| pool[i])
            .expect("invariant: fast path found a victim, so the scored pool is non-empty");
        assert_eq!(
            victim, want,
            "O(log n) LRU fast path diverged from the scored reference pick"
        );
    }

    /// Demotes `victim` and records the move in stats and the admission
    /// report.
    fn demote_victim(&mut self, victim: NodeId, report: &mut AdmissionReport) {
        let moved = self.demote(victim);
        self.stats.demotions += 1;
        self.stats.bytes_demoted += moved;
        report.entries_demoted += 1;
        report.bytes_demoted += moved;
    }

    /// Deletes `victim` from `tier`: removes it from the tree, repairs the
    /// live `pool` (a leaf victim's parent may become a same-tier
    /// candidate; a merge victim changes no candidacies — its child keeps
    /// its own children and simply absorbs the edge), updates the
    /// cross-tier accounting, and books the eviction. The one deletion
    /// body both pressure phases share, so their victim handling can never
    /// drift.
    fn delete_victim(
        &mut self,
        victim: NodeId,
        pool: &mut Vec<NodeId>,
        report: &mut AdmissionReport,
        tier: Tier,
    ) {
        let (freed, _) = self.node_costs(victim);
        let victim_edge = self.tree.edge_len(victim);
        if self.tracer.is_enabled() {
            // Ledger first, while the path still exists: a later
            // short-matching lookup turns this entry into its attribution.
            // Stream the path's fingerprint edge-by-edge — materializing
            // the token vector per victim dominates recording cost.
            let mut chain = Vec::new();
            let mut cur = Some(victim);
            while let Some(c) = cur {
                chain.push(c);
                cur = self.tree.parent(c);
            }
            let mut fp = Fingerprint::new();
            for &id in chain.iter().rev() {
                fp.update(self.tree.edge_tokens(id));
            }
            let cause = if self.tree.pinned_count() > 0 {
                MissCause::PinnedBystander
            } else {
                MissCause::CapacityEvicted
            };
            self.miss_ledger
                .record_fingerprint(fp.finish(), fp.len(), cause);
        }
        let parent = self
            .tree
            .parent(victim)
            .expect("invariant: eviction victims are non-root");
        let parent_children_before = self.tree.child_count(parent);
        let removed = self
            .tree
            .remove(victim)
            .expect("invariant: eviction candidates are unpinned leaves, hence removable");
        if let Some(child) = removed.merged_into {
            let victim_id = victim.index() as u64;
            self.tracer.emit(|| TraceEvent::EdgeMerge {
                ts: self.clock,
                cache: self.name.clone(),
                removed: victim_id,
                merged_into: child.index() as u64,
            });
        }
        if removed.merged_into.is_none() && parent != self.tree.root() {
            let newly_eligible = if self.leaf_only_eviction {
                parent_children_before == 1
            } else {
                parent_children_before == 2
            };
            if newly_eligible && self.tree.data(parent).tier == tier && !self.tree.is_pinned(parent)
            {
                pool.push(parent);
            }
        }
        self.apply_removed_accounting(victim_edge, &removed, tier);
        if removed.data.has_ssm_state {
            self.ssm_states -= 1;
        }
        #[cfg(test)]
        self.eviction_log.push(victim);
        self.stats.evictions += 1;
        self.stats.bytes_evicted += freed;
        if tier == Tier::Host {
            self.stats.host_evictions += 1;
            self.stats.bytes_host_evicted += freed;
        }
        report.entries_evicted += 1;
        report.bytes_evicted += freed;
    }

    /// Shared victim picker over a tier-filtered pool: GDSF priority under
    /// `EvictionPolicy::Gdsf` (advancing the inflation clock), the
    /// `S(n) = recency + α·flop_efficiency` order otherwise.
    fn pick_from_pool(
        &mut self,
        pool: &[NodeId],
        scored: &mut Vec<Candidate<NodeId>>,
    ) -> Option<usize> {
        if matches!(self.policy, EvictionPolicy::Gdsf) {
            let idx = self.pick_gdsf_victim_index(pool);
            if let Some(i) = idx {
                let h = self.tree.data(pool[i]).gdsf_priority;
                if h.is_finite() {
                    self.gdsf_clock = self.gdsf_clock.max(h);
                }
            }
            idx
        } else {
            scored.clear();
            for &id in pool {
                let (_, eff) = self.node_costs(id);
                scored.push(Candidate {
                    id,
                    last_access: self.tree.data(id).last_access,
                    flop_efficiency: eff,
                });
            }
            pick_victim_index(scored, self.effective_alpha)
        }
    }

    /// Updates the host counters for a `victim_edge`-token node removed
    /// from `tier`. A leaf's edge leaves the tree; a merged intermediate's
    /// edge is absorbed by the child and re-homed on the *child's* tier
    /// (the cross-tier flow that can push the device tier back over
    /// capacity and re-trigger phase 1).
    fn apply_removed_accounting(
        &mut self,
        victim_edge: u64,
        removed: &marconi_radix::Removed<NodeMeta>,
        tier: Tier,
    ) {
        match tier {
            Tier::Device => {
                // A device leaf's tokens were device-resident; only a merge
                // into a host-resident child moves tokens across tiers.
                if let Some(child) = removed.merged_into {
                    if self.tree.data(child).tier == Tier::Host {
                        self.host_tokens += victim_edge;
                    }
                }
            }
            Tier::Host => {
                if removed.data.has_ssm_state {
                    self.host_ssm_states -= 1;
                }
                match removed.merged_into {
                    // Host leaf deleted outright.
                    None => self.host_tokens -= victim_edge,
                    Some(child) => {
                        if self.tree.data(child).tier == Tier::Device {
                            // The absorbed edge re-homes on the device
                            // child.
                            self.host_tokens -= victim_edge;
                        }
                    }
                }
            }
        }
    }

    /// Debug-only: the incremental pool must equal the from-scratch scan of
    /// live ≤ 1-child nodes on `tier` (at `host_capacity = 0` the device
    /// pool is exactly the pre-refactor candidate set).
    #[cfg(debug_assertions)]
    fn assert_pool_matches_scan(&self, pool: &[NodeId], tier: Tier) {
        let mut got: Vec<NodeId> = pool.to_vec();
        got.sort_unstable();
        got.windows(2)
            .for_each(|w| assert_ne!(w[0], w[1], "duplicate pool entry {}", w[0]));
        let mut want: Vec<NodeId> = self
            .tree
            .node_ids()
            .filter(|&id| self.tree.child_count(id) <= 1)
            .filter(|&id| self.tree.data(id).tier == tier)
            .filter(|&id| !self.leaf_only_eviction || self.tree.is_leaf(id))
            .filter(|&id| !self.tree.is_pinned(id))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want, "incremental victim pool diverged from scan");
    }

    /// The pre-refactor eviction loop, verbatim: re-collect every candidate
    /// by scanning the arena and re-derive every score, once per victim.
    /// Kept (test-only) as the reference the parity suite replays against.
    #[cfg(test)]
    fn evict_until_fits_scan(&mut self, report: &mut AdmissionReport) {
        use crate::policy::pick_victim;
        while self.usage() > self.capacity && !self.tree.is_empty() {
            let leaf_only = self.leaf_only_eviction;
            let ids: Vec<NodeId> = self
                .tree
                .node_ids()
                .filter(|&id| self.tree.child_count(id) <= 1)
                .filter(|&id| !leaf_only || self.tree.is_leaf(id))
                .collect();
            let victim = if matches!(self.policy, EvictionPolicy::Gdsf) {
                let v = self.pick_gdsf_victim_index(&ids).map(|i| ids[i]);
                if let Some(v) = v {
                    let h = self.tree.data(v).gdsf_priority;
                    if h.is_finite() {
                        self.gdsf_clock = self.gdsf_clock.max(h);
                    }
                }
                v
            } else {
                let candidates: Vec<Candidate<NodeId>> = ids
                    .iter()
                    .map(|&id| Candidate {
                        id,
                        last_access: self.tree.data(id).last_access,
                        flop_efficiency: self.node_flop_efficiency(id),
                    })
                    .collect();
                pick_victim(&candidates, self.effective_alpha)
            };
            let Some(victim) = victim else {
                break;
            };
            let freed = self.freed_bytes(victim);
            let removed = self
                .tree
                .remove(victim)
                .expect("invariant: eviction candidates are unpinned leaves, hence removable");
            if removed.data.has_ssm_state {
                self.ssm_states -= 1;
            }
            self.eviction_log.push(victim);
            self.stats.evictions += 1;
            self.stats.bytes_evicted += freed;
            report.entries_evicted += 1;
            report.bytes_evicted += freed;
        }
    }

    /// Records an access on `id`: the float timestamp in the node's
    /// metadata (what the scoring paths read) and its order-preserving
    /// integer image in the tree's recency index (what the O(log n) LRU
    /// fast path reads). Every `last_access` write must go through here so
    /// the two views can never drift.
    fn stamp_access(&mut self, id: NodeId, now: f64) {
        self.tree.data_mut(id).last_access = now;
        self.tree.touch(id, recency_stamp(now));
    }

    /// Marks an SSM checkpoint on `id` if absent; returns 1 if newly added.
    fn checkpoint(&mut self, id: NodeId, now: f64) -> u64 {
        self.stamp_access(id, now);
        let meta = self.tree.data_mut(id);
        if meta.has_ssm_state {
            0
        } else {
            meta.has_ssm_state = true;
            // The checkpoint changes what evicting this node frees: drop
            // the memoized scores.
            meta.cost_memo = None;
            if meta.tier == Tier::Host {
                // Checkpointing a still-host-resident node (promotion runs
                // after all checkpoints land): keep the tier counters in
                // step.
                self.host_ssm_states += 1;
            }
            self.ssm_states += 1;
            1
        }
    }

    /// Stamps recency on any nodes an insertion created and seeds their
    /// GDSF priorities.
    fn stamp_new_nodes(&mut self, outcome: &marconi_radix::InsertOutcome, now: f64) {
        for id in [outcome.split_node, outcome.new_leaf, Some(outcome.end_node)]
            .into_iter()
            .flatten()
        {
            self.stamp_access(id, now);
            self.refresh_gdsf(id, false);
        }
    }

    /// Runs the α tuner state machine after an admission.
    fn observe_for_tuning(&mut self, input: &[Token], output: &[Token], now: f64) {
        let Some(tuner) = self.tuner.take() else {
            return;
        };
        self.tuner = Some(match tuner {
            Tuner::Waiting {
                config,
                requests_seen,
            } => {
                let requests_seen = requests_seen + 1;
                if self.stats.evictions + self.stats.demotions > 0 {
                    // First pressure event — a deletion, or (tiered) a
                    // demotion: snapshot and start the bootstrap window
                    // (recording begins with the *next* request). A tiered
                    // cache with an ample host budget may never delete,
                    // but α starts mattering at the first demotion: it
                    // decides which nodes stay device-resident vs pay a
                    // PCIe reload.
                    let target = config.window_len(requests_seen);
                    Tuner::Bootstrapping {
                        config,
                        snapshot: Box::new(Snapshot {
                            tree: self.tree.clone(),
                            ssm_states: self.ssm_states,
                            host_tokens: self.host_tokens,
                            host_ssm_states: self.host_ssm_states,
                            clock: self.clock,
                        }),
                        recorded: Vec::new(),
                        target,
                    }
                } else {
                    Tuner::Waiting {
                        config,
                        requests_seen,
                    }
                }
            }
            Tuner::Bootstrapping {
                config,
                snapshot,
                mut recorded,
                target,
            } => {
                recorded.push((input.to_vec(), output.to_vec(), now));
                if (recorded.len() as u64) < target {
                    Tuner::Bootstrapping {
                        config,
                        snapshot,
                        recorded,
                        target,
                    }
                } else {
                    let alpha = grid_search(
                        self,
                        &snapshot,
                        &recorded,
                        &config.alpha_grid,
                        config.parallel,
                    );
                    self.effective_alpha = alpha;
                    Tuner::Tuned { alpha }
                }
            }
            tuned @ Tuner::Tuned { .. } => tuned,
        });
    }

    /// Builds a fixed-α replica seeded from a snapshot, for replay.
    ///
    /// The replica mirrors every behavioral knob of the live cache —
    /// checkpoint mode, ancestor refresh, leaf-only eviction, in-flight
    /// pinning, and the tier knobs (host capacity, reload policy) —
    /// differing only in its (fixed) α. Anything less and the tuner grades each α against replay
    /// dynamics the live cache will never exhibit: e.g. a tiered cache's
    /// demoted entries keep hitting, so a single-tier replica would
    /// systematically underestimate reuse.
    fn replica(&self, snapshot: &Snapshot, alpha: f64) -> Self {
        // The snapshot may have been taken while requests were in flight;
        // replay models no request lifetimes, so the replica starts with
        // every pin released (the live cache's pins drain by completion
        // anyway — a replica keeping them would protect paths forever).
        let mut tree = snapshot.tree.clone();
        tree.clear_pins();
        HybridPrefixCache {
            name: "replica".into(),
            model: self.model.clone(),
            capacity: self.capacity,
            host_capacity: self.host_capacity,
            reload_policy: self.reload_policy,
            tree,
            ssm_states: snapshot.ssm_states,
            host_tokens: snapshot.host_tokens,
            host_ssm_states: snapshot.host_ssm_states,
            policy: EvictionPolicy::FlopAware { alpha },
            tuner: None,
            effective_alpha: alpha,
            stats: CacheStats::default(),
            clock: snapshot.clock,
            checkpoint_mode: self.checkpoint_mode,
            refresh_ancestors: self.refresh_ancestors,
            leaf_only_eviction: self.leaf_only_eviction,
            pin_in_flight: self.pin_in_flight,
            session_cursors: self.session_cursors,
            gdsf_clock: 0.0,
            // Replicas replay silently: the tuner's grid-search probes are
            // hypotheticals, not serving decisions, so they never trace.
            tracer: Tracer::off(),
            miss_ledger: MissLedger::default(),
            #[cfg(test)]
            eviction_log: Vec::new(),
            #[cfg(test)]
            use_scan_eviction: self.use_scan_eviction,
        }
    }
}

/// Replays the bootstrap window for each α and returns the hit-rate
/// maximizer (ties break toward the smaller α, so LRU wins when FLOP
/// awareness adds nothing).
fn grid_search(
    parent: &HybridPrefixCache,
    snapshot: &Snapshot,
    events: &[(Vec<Token>, Vec<Token>, f64)],
    grid: &[f64],
    parallel: bool,
) -> f64 {
    assert!(!grid.is_empty(), "alpha grid must be non-empty");
    let score = |alpha: f64| -> f64 {
        let mut cache = parent.replica(snapshot, alpha);
        for (input, output, at) in events {
            cache.lookup_at(input, *at);
            cache.insert_at(input, output, *at);
        }
        cache.stats.token_hit_rate()
    };
    let scores: Vec<(f64, f64)> = if parallel {
        std::thread::scope(|s| {
            let handles: Vec<_> = grid
                .iter()
                .map(|&alpha| s.spawn(move || (alpha, score(alpha))))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .expect("invariant: replica replay threads do not panic")
                })
                .collect()
        })
    } else {
        grid.iter().map(|&a| (a, score(a))).collect()
    };
    scores
        .into_iter()
        .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.total_cmp(&a.0)))
        .map(|(alpha, _)| alpha)
        .expect("invariant: the α grid is non-empty")
}

/// How a hinted operation obtained its prefix match — the telemetry
/// currency between hint resolution and the single
/// `CursorResumed`/`CursorFallback` event each hinted operation emits.
/// Never consulted for cache decisions: hinted and unhinted paths are
/// byte-identical apart from these events.
#[derive(Debug, Clone, Copy)]
enum HintOutcome {
    /// No hint offered (or session cursors disabled): silent root walk.
    Cold,
    /// The hint validated; the walk resumed from `node`.
    Resumed {
        /// The validated resume node.
        node: NodeId,
        /// Tokens the resume skipped (the cursor's matched length).
        resumed_len: u64,
    },
    /// The hint failed validation; root walk plus a fallback event.
    Fallback(CursorFallbackCause),
}

impl PrefixCache for HybridPrefixCache {
    fn name(&self) -> &str {
        &self.name
    }

    fn model(&self) -> &ModelConfig {
        &self.model
    }

    fn longest_cached_prefix_len(&self, input: &[Token]) -> u64 {
        // Mirror of `lookup_at`'s match logic over `&self`: `match_prefix`
        // never mutates, no timestamps are stamped, no stats move, and no
        // speculative insertion fires — the whole point of the probe.
        let m = self.tree.match_prefix(input);
        self.reusable_len(&m)
    }

    fn lookup_at(&mut self, input: &[Token], now: f64) -> LookupResult {
        self.lookup_at_with(input, now, None)
    }

    fn lookup_at_with(
        &mut self,
        input: &[Token],
        now: f64,
        hint: Option<SessionCursor>,
    ) -> LookupResult {
        self.clock = self.clock.max(now);
        let (m, hint_outcome) = self.match_with_hint(input, Self::hint_from(hint));
        self.emit_cursor_outcome(&hint_outcome, input.len(), now);
        let mut result = if self.model.has_ssm() {
            // All-or-nothing: reuse stops at the deepest checkpointed node.
            let hit = m
                .path
                .iter()
                .rev()
                .copied()
                .find(|&id| self.tree.data(id).has_ssm_state);
            match hit {
                Some(node) => {
                    let depth = self.tree.depth(node);
                    LookupResult {
                        tokens_matched: depth,
                        raw_matched: m.matched_len,
                        node: Some(node),
                        flops_saved: self.model.flops_saved(depth),
                        ..LookupResult::MISS
                    }
                }
                None => LookupResult {
                    raw_matched: m.matched_len,
                    ..LookupResult::MISS
                },
            }
        } else {
            // Pure Transformer: KVs slice at any token boundary. A match
            // ending mid-edge is served from the *containing child's* KVs,
            // so that child is the node whose recency the hit must refresh;
            // crediting only `deepest()` (or nothing, at the root) would
            // leave a hot, partially-matched prefix looking idle until LRU
            // pressure evicts it.
            LookupResult {
                tokens_matched: m.matched_len,
                raw_matched: m.matched_len,
                node: if m.ends_mid_edge {
                    m.mid_edge_child
                } else {
                    m.deepest()
                },
                flops_saved: self.model.flops_saved(m.matched_len),
                ..LookupResult::MISS
            }
        };
        // Tier split of the hit: which part of the reused prefix must cross
        // PCIe (or be recomputed) before it is usable on the device.
        let (host_tokens, host_bytes, host_reload_flops) =
            self.host_share(&m, result.tokens_matched);
        result.host_tokens = host_tokens;
        result.host_bytes = host_bytes;
        result.host_reload_flops = host_reload_flops;
        // §4.3(2): only the accessed node's timestamp is updated (unless
        // the ancestor-refresh ablation is enabled).
        if let Some(node) = result.node {
            if result.is_hit() {
                self.stamp_access(node, now);
                self.refresh_gdsf(node, true);
                if self.refresh_ancestors {
                    let hit_depth = self.tree.depth(node);
                    for &id in &m.path {
                        if self.tree.depth(id) <= hit_depth {
                            self.stamp_access(id, now);
                        }
                    }
                }
            }
        }
        self.stats.lookups += 1;
        self.stats.input_tokens += input.len() as u64;
        self.stats.hit_tokens += result.tokens_matched;
        self.stats.host_hit_tokens += result.host_tokens;
        self.stats.flops_saved += result.flops_saved;
        if result.is_hit() {
            self.stats.hits += 1;
            if result.needs_reload() {
                self.stats.host_hits += 1;
            }
        }
        if self.tracer.is_enabled() {
            let attribution = self.classify_lookup(input, &result);
            self.tracer.emit(|| TraceEvent::Lookup {
                ts: now,
                cache: self.name.clone(),
                input_len: input.len() as u64,
                matched: result.tokens_matched,
                host_tokens: result.host_tokens,
                raw_matched: result.raw_matched,
                attribution,
            });
        }
        result
    }

    fn insert_at(&mut self, input: &[Token], output: &[Token], now: f64) -> AdmissionReport {
        self.insert_at_with(input, output, now, None).0
    }

    fn insert_at_with(
        &mut self,
        input: &[Token],
        output: &[Token],
        now: f64,
        hint: Option<SessionCursor>,
    ) -> (AdmissionReport, Option<SessionCursor>) {
        self.clock = self.clock.max(now);
        let mut report = AdmissionReport::default();
        let tokens_before = self.tree.token_count();
        let mut admitted = 0u64;

        // Resolve the hint once, against the input prefix the session
        // extends. The validated node stays a correct resume anchor for
        // every walk below (`insert_via` re-captures fresh cursors there).
        let (resume, hint_outcome) = if !self.session_cursors {
            (None, HintOutcome::Cold)
        } else {
            match Self::hint_from(hint) {
                CursorHint::Cold => (None, HintOutcome::Cold),
                CursorHint::Rejected(cause) => (None, HintOutcome::Fallback(cause)),
                CursorHint::Hint(c) => match self.resolve_cursor(&c, input) {
                    Ok(node) => (
                        Some(node),
                        HintOutcome::Resumed {
                            node,
                            resumed_len: c.matched_len(),
                        },
                    ),
                    Err(cause) => (None, HintOutcome::Fallback(cause)),
                },
            }
        };
        self.emit_cursor_outcome(&hint_outcome, input.len(), now);

        // Purely-input reuse (§4.1): speculative insertion of the input
        // segment; a predicted intermediate node marks a shared prefix
        // whose SSM state is checkpointed during prefill.
        if self.model.has_ssm() && !input.is_empty() {
            let spec = match resume.and_then(|id| self.tree.cursor_at(id)) {
                Some(c) => self
                    .tree
                    .speculate_insert_from(&c, input)
                    .unwrap_or_else(|_| self.tree.speculate_insert(input)),
                None => self.tree.speculate_insert(input),
            };
            if let Some(branch_depth) = spec.creates_branch_at {
                // Chunked state passing can only materialize states at
                // chunk boundaries; two-pass/exact hits the branch itself.
                let target = self.checkpoint_mode.checkpoint_depth(branch_depth);
                if target > 0 {
                    let outcome = self.insert_via(resume, &input[..target as usize], &[]);
                    self.inherit_split_tier(&outcome);
                    self.stamp_new_nodes(&outcome, now);
                    self.emit_split(&outcome, now);
                    let node = outcome.end_node;
                    debug_assert_eq!(self.tree.depth(node), target);
                    admitted += self.checkpoint(node, now);
                    report.branch_checkpoint_depth = Some(target);
                }
            }
        }

        // Input-and-output reuse (§4.1): the full sequence's KVs are cached
        // along the path and the state at the last decoded token is always
        // checkpointed (conversations resume from it). The sequence is the
        // virtual concatenation input ‖ output, handed to the seam-aware
        // tree inserts as two slices: materializing the join cost an
        // O(prompt) allocate-and-copy per admission — the last full read
        // of the prompt left on the cursor-resumed path — and dominated
        // the session-replay profile at long prompt lengths.
        let mut end_node = None;
        if !input.is_empty() || !output.is_empty() {
            let outcome = self.insert_via(resume, input, output);
            self.inherit_split_tier(&outcome);
            self.stamp_new_nodes(&outcome, now);
            self.emit_split(&outcome, now);
            if self.model.has_ssm() {
                admitted += self.checkpoint(outcome.end_node, now);
            }
            end_node = Some(outcome.end_node);
        }

        // Serving this request (re)materialized its whole path's states on
        // the device — whether by prefill, reload, or recompute — so any
        // host-resident node along it promotes back to the device tier
        // before pressure is re-resolved below. (No-op while the host tier
        // is empty, so `host_capacity = 0` behavior is untouched.)
        let promoted_tokens = self.promote_resident_path(end_node);
        if promoted_tokens > 0 {
            self.tracer.emit(|| TraceEvent::Promotion {
                ts: now,
                cache: self.name.clone(),
                tokens: promoted_tokens,
            });
        }

        let kv_added = (self.tree.token_count() - tokens_before) * self.model.kv_bytes_per_token();
        report.ssm_states_admitted = admitted;
        report.bytes_added = kv_added + admitted * self.model.ssm_checkpoint_bytes();
        self.stats.insertions += 1;
        self.stats.ssm_states_admitted += admitted;
        self.stats.peak_usage_bytes = self.stats.peak_usage_bytes.max(self.usage());
        self.tracer.emit(|| TraceEvent::Admission {
            ts: now,
            cache: self.name.clone(),
            input_len: input.len() as u64,
            output_len: output.len() as u64,
            checkpoints: admitted,
            new_tokens: self.tree.token_count() - tokens_before,
        });

        self.evict_until_fits(&mut report);
        self.observe_for_tuning(input, output, now);
        if self.tracer.is_enabled() {
            self.emit_gauges(now);
        }

        // Mint the next turn's cursor only now: eviction and demotion have
        // settled, so a handed-out cursor always points at a live,
        // device-resident end node (and is still revalidated on return).
        let next = if self.session_cursors {
            end_node.and_then(|id| {
                let cursor = self.tree.cursor_at(id)?;
                (self.tree.data(id).tier == Tier::Device)
                    .then_some(SessionCursor { cursor, shard: 0 })
            })
        } else {
            None
        };
        (report, next)
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn usage_bytes(&self) -> u64 {
        self.usage()
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn reload_policy(&self) -> ReloadPolicy {
        self.reload_policy
    }

    fn pin_prefix(&mut self, input: &[Token]) -> PinTicket {
        self.pin_prefix_with(input, None)
    }

    fn pin_prefix_with(&mut self, input: &[Token], hint: Option<SessionCursor>) -> PinTicket {
        if !self.pin_in_flight {
            return PinTicket::default();
        }
        // Mirror of `lookup_at`'s hit-node selection over the same match,
        // so the pinned node is exactly the node whose KVs (and, through
        // the subtree-inclusive pin walk, whose ancestors' KVs) the
        // in-flight request reads while decoding. No recency, stats, or
        // GDSF state moves: pinning composes with the non-mutating-probe
        // discipline even though it needs `&mut` for the refcounts.
        let (m, hint_outcome) = self.match_with_hint(input, Self::hint_from(hint));
        self.emit_cursor_outcome(&hint_outcome, input.len(), self.clock);
        let node = if self.model.has_ssm() {
            m.path
                .iter()
                .rev()
                .copied()
                .find(|&id| self.tree.data(id).has_ssm_state)
        } else if m.ends_mid_edge {
            m.mid_edge_child
        } else {
            m.deepest()
        };
        if let Some(id) = node {
            self.tree.pin(id);
            self.tracer.emit(|| TraceEvent::Pin {
                ts: self.clock,
                cache: self.name.clone(),
                node: id.index() as u64,
            });
        }
        PinTicket { node, shard: 0 }
    }

    fn unpin(&mut self, mut ticket: PinTicket) {
        // `redeem` takes the node out so the debug-build leak detector in
        // `PinTicket::drop` knows the pin was released.
        if let Some(id) = ticket.redeem() {
            self.tree.unpin(id);
            self.tracer.emit(|| TraceEvent::Unpin {
                ts: self.clock,
                cache: self.name.clone(),
                node: id.index() as u64,
            });
        }
    }

    fn pinned_bytes(&self) -> u64 {
        self.tree.pinned_ids().map(|id| self.node_bytes(id)).sum()
    }
}

/// Builder for [`HybridPrefixCache`]; see
/// [`HybridPrefixCache::builder`].
#[derive(Debug, Clone)]
pub struct HybridPrefixCacheBuilder {
    model: ModelConfig,
    capacity: u64,
    host_capacity: u64,
    reload_policy: ReloadPolicy,
    policy: EvictionPolicy,
    name: Option<String>,
    checkpoint_mode: CheckpointMode,
    refresh_ancestors: bool,
    leaf_only_eviction: bool,
    pin_in_flight: bool,
    session_cursors: bool,
}

impl HybridPrefixCacheBuilder {
    /// Sets the device-tier cache capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(mut self, bytes: u64) -> Self {
        self.capacity = bytes;
        self
    }

    /// Sets the host-DRAM tier budget in bytes (default 0 = single-tier).
    ///
    /// With a nonzero budget, device-pressure victims are *demoted* to the
    /// host tier instead of deleted, and host pressure deletes with the
    /// same victim machinery. A `host_capacity` of 0 keeps the cache
    /// byte-identical to the pre-tiering single-tier behavior.
    #[must_use]
    pub fn host_capacity_bytes(mut self, bytes: u64) -> Self {
        self.host_capacity = bytes;
        self
    }

    /// Sets how host-resident hits are brought back to the device (default
    /// [`ReloadPolicy::ComputeOrLoad`]). Consumed by the serving layer's
    /// timing model; mirrored by tuner replicas like every behavioral knob.
    #[must_use]
    pub fn reload_policy(mut self, policy: ReloadPolicy) -> Self {
        self.reload_policy = policy;
        self
    }

    /// Sets the eviction policy (default: [`EvictionPolicy::AutoTuned`]).
    #[must_use]
    pub fn policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the system name used in reports.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Sets how branch-point SSM states are materialized during prefill
    /// (default [`CheckpointMode::Exact`]).
    #[must_use]
    pub fn checkpoint_mode(mut self, mode: CheckpointMode) -> Self {
        self.checkpoint_mode = mode;
        self
    }

    /// Ablation switch (§4.3(2)): also refresh ancestor timestamps on a
    /// hit, like pre-Marconi systems. Default off.
    #[must_use]
    pub fn refresh_ancestors(mut self, enabled: bool) -> Self {
        self.refresh_ancestors = enabled;
        self
    }

    /// Ablation switch (§4.3(1)): restrict eviction to leaf nodes, like
    /// pre-Marconi systems, pinning single-child nodes' SSM states.
    /// Default off.
    #[must_use]
    pub fn leaf_only_eviction(mut self, enabled: bool) -> Self {
        self.leaf_only_eviction = enabled;
        self
    }

    /// Honor in-flight pins ([`PrefixCache::pin_prefix`]): pinned paths
    /// are excluded from eviction and demotion in both tiers until their
    /// requests complete, at the cost of the device tier spilling over its
    /// byte budget when everything reclaimable is pinned. Default on;
    /// turning it off reproduces the pre-pinning behavior where pressure
    /// can reclaim a path an in-flight request is still decoding against.
    #[must_use]
    pub fn in_flight_pinning(mut self, enabled: bool) -> Self {
        self.pin_in_flight = enabled;
        self
    }

    /// Honor session-cursor hints ([`PrefixCache::lookup_at_with`] /
    /// [`PrefixCache::insert_at_with`] / [`PrefixCache::pin_prefix_with`]):
    /// a valid hint resumes the walk from the session's deep node in
    /// O(new tokens). Default on. Results are byte-identical with the
    /// knob off (hints are ignored and no cursors are minted) — the
    /// switch exists for the root-walk baseline in benches and the parity
    /// tests that pin that contract.
    #[must_use]
    pub fn session_cursors(mut self, enabled: bool) -> Self {
        self.session_cursors = enabled;
        self
    }

    /// Builds the cache.
    pub fn build(self) -> HybridPrefixCache {
        let (tuner, effective_alpha) = match &self.policy {
            EvictionPolicy::Lru | EvictionPolicy::Gdsf => (None, 0.0),
            EvictionPolicy::FlopAware { alpha } => (None, *alpha),
            EvictionPolicy::AutoTuned(config) => (
                Some(Tuner::Waiting {
                    config: config.clone(),
                    requests_seen: 0,
                }),
                0.0,
            ),
        };
        let name = self.name.unwrap_or_else(|| {
            match &self.policy {
                EvictionPolicy::Lru => "sglang+",
                EvictionPolicy::FlopAware { .. } => "marconi-static",
                EvictionPolicy::AutoTuned(_) => "marconi",
                EvictionPolicy::Gdsf => "gdsf",
            }
            .to_owned()
        });
        HybridPrefixCache {
            name: name.into(),
            model: self.model,
            capacity: self.capacity,
            host_capacity: self.host_capacity,
            reload_policy: self.reload_policy,
            tree: RadixTree::new(),
            ssm_states: 0,
            host_tokens: 0,
            host_ssm_states: 0,
            policy: self.policy,
            tuner,
            effective_alpha,
            stats: CacheStats::default(),
            clock: 0.0,
            checkpoint_mode: self.checkpoint_mode,
            refresh_ancestors: self.refresh_ancestors,
            leaf_only_eviction: self.leaf_only_eviction,
            pin_in_flight: self.pin_in_flight,
            session_cursors: self.session_cursors,
            gdsf_clock: 0.0,
            tracer: Tracer::off(),
            miss_ledger: MissLedger::default(),
            #[cfg(test)]
            eviction_log: Vec::new(),
            #[cfg(test)]
            use_scan_eviction: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marconi(capacity: u64) -> HybridPrefixCache {
        HybridPrefixCache::builder(ModelConfig::hybrid_7b())
            .capacity_bytes(capacity)
            .build()
    }

    fn sglang(capacity: u64) -> HybridPrefixCache {
        HybridPrefixCache::builder(ModelConfig::hybrid_7b())
            .capacity_bytes(capacity)
            .policy(EvictionPolicy::Lru)
            .build()
    }

    fn seq(range: std::ops::Range<u32>) -> Vec<Token> {
        range.collect()
    }

    #[test]
    fn cold_lookup_misses() {
        let mut c = marconi(1 << 40);
        let r = c.lookup(&seq(0..100));
        assert!(!r.is_hit());
        assert_eq!(c.stats().lookups, 1);
        assert_eq!(c.stats().token_hit_rate(), 0.0);
    }

    #[test]
    fn conversation_resume_hits_last_decoded_state() {
        // Input-and-output reuse: turn 2 = turn 1's input + output + more.
        let mut c = marconi(1 << 40);
        let input = seq(0..100);
        let output = seq(1000..1050);
        c.insert_sequence(&input, &output);

        let mut turn2 = input.clone();
        turn2.extend_from_slice(&output);
        turn2.extend(seq(2000..2020));
        let r = c.lookup(&turn2);
        assert_eq!(r.tokens_matched, 150, "hit at the last decoded token");
        assert_eq!(r.raw_matched, 150);
    }

    #[test]
    fn purely_input_prefix_hits_on_third_occurrence() {
        // §4.1 tradeoffs: the first occurrence caches nothing reusable at
        // the branch point, the second identifies + checkpoints it, the
        // third hits.
        let mut c = marconi(1 << 40);
        let prompt = seq(0..500);
        let mk = |i: u32| {
            let mut v = prompt.clone();
            v.extend(seq(1000 * i..1000 * i + 50));
            v
        };

        let r1 = c.lookup(&mk(1));
        assert_eq!(r1.tokens_matched, 0);
        c.insert_sequence(&mk(1), &seq(9000..9010));

        let r2 = c.lookup(&mk(2));
        assert_eq!(r2.tokens_matched, 0, "shared prefix not yet checkpointed");
        let rep2 = c.insert_sequence(&mk(2), &seq(9100..9110));
        assert_eq!(rep2.branch_checkpoint_depth, Some(500));

        let r3 = c.lookup(&mk(3));
        assert_eq!(r3.tokens_matched, 500, "branch-point state reused");
        assert_eq!(r3.raw_matched, 500);
    }

    #[test]
    fn at_most_two_ssm_states_per_sequence() {
        let mut c = marconi(1 << 40);
        c.insert_sequence(&seq(0..300), &seq(1000..1100));
        let report = c.insert_sequence(&seq(0..200), &seq(2000..2100));
        assert!(report.ssm_states_admitted <= 2, "judicious admission");
        // First insertion: only the final state (no branch existed yet).
        assert_eq!(
            c.stats().ssm_states_admitted,
            1 + report.ssm_states_admitted
        );
    }

    #[test]
    fn hybrid_hits_are_all_or_nothing() {
        // A request sharing only part of a cached sequence cannot reuse the
        // deeper SSM state: raw match > usable match.
        let mut c = marconi(1 << 40);
        c.insert_sequence(&seq(0..100), &seq(1000..1010));
        let query = seq(0..50); // strict prefix: no checkpoint at 50
        let r = c.lookup(&query);
        assert_eq!(r.raw_matched, 50);
        assert_eq!(r.tokens_matched, 0, "no state at token 50");
    }

    #[test]
    fn pure_transformer_reuses_arbitrary_prefixes() {
        let mut c = HybridPrefixCache::builder(ModelConfig::transformer_7b())
            .capacity_bytes(1 << 40)
            .build();
        c.insert_sequence(&seq(0..100), &seq(1000..1010));
        let r = c.lookup(&seq(0..50));
        assert_eq!(r.tokens_matched, 50, "KVs slice at any boundary");
        assert_eq!(r.node, None.or(r.node), "node may be None mid-edge");
    }

    #[test]
    fn usage_accounting_matches_model_math() {
        let mut c = marconi(1 << 40);
        let input = seq(0..128);
        let output = seq(1000..1032);
        c.insert_sequence(&input, &output);
        let m = ModelConfig::hybrid_7b();
        let expect = 160 * m.kv_bytes_per_token() + m.ssm_checkpoint_bytes();
        assert_eq!(c.usage_bytes(), expect);
        assert_eq!(c.ssm_state_count(), 1);
    }

    #[test]
    fn eviction_keeps_usage_within_capacity() {
        let m = ModelConfig::hybrid_7b();
        // Room for roughly two 128-token sequences with one state each.
        let capacity = 2 * (128 * m.kv_bytes_per_token() + m.ssm_checkpoint_bytes()) + 1;
        let mut c = sglang(capacity);
        for i in 0..10u32 {
            let input = seq(i * 10_000..i * 10_000 + 96);
            let output = seq(i * 10_000 + 500..i * 10_000 + 532);
            c.insert_sequence(&input, &output);
            assert!(c.usage_bytes() <= capacity, "iteration {i}");
        }
        assert!(c.stats().evictions > 0);
    }

    #[test]
    fn lru_evicts_oldest_sequence_first() {
        let m = ModelConfig::hybrid_7b();
        let capacity = 2 * (128 * m.kv_bytes_per_token() + m.ssm_checkpoint_bytes()) + 1;
        let mut c = sglang(capacity);
        c.insert_sequence(&seq(0..96), &seq(500..532)); // A (oldest)
        c.insert_sequence(&seq(10_000..10_096), &seq(10_500..10_532)); // B

        // C forces eviction of A.
        c.insert_sequence(&seq(20_000..20_096), &seq(20_500..20_532));
        let mut turn_b = seq(10_000..10_096);
        turn_b.extend(seq(10_500..10_532));
        assert!(c.lookup(&turn_b).is_hit(), "B retained");
        let mut turn_a = seq(0..96);
        turn_a.extend(seq(500..532));
        assert!(!c.lookup(&turn_a).is_hit(), "A evicted");
    }

    #[test]
    fn hit_refreshes_recency_and_prevents_eviction() {
        let m = ModelConfig::hybrid_7b();
        let capacity = 2 * (128 * m.kv_bytes_per_token() + m.ssm_checkpoint_bytes()) + 1;
        let mut c = sglang(capacity);
        c.insert_sequence(&seq(0..96), &seq(500..532)); // A
        c.insert_sequence(&seq(10_000..10_096), &seq(10_500..10_532)); // B

        // Touch A so B becomes the LRU victim.
        let mut turn_a = seq(0..96);
        turn_a.extend(seq(500..532));
        assert!(c.lookup(&turn_a).is_hit());
        c.insert_sequence(&seq(20_000..20_096), &seq(20_500..20_532)); // C
        assert!(c.lookup(&turn_a).is_hit(), "A survived after refresh");
    }

    #[test]
    fn flop_aware_trades_short_for_long_sequences() {
        // Under contention, high α retains the long sequence even when the
        // short one is more recent — the paper's core eviction tradeoff.
        let m = ModelConfig::hybrid_7b();
        let long_input = seq(0..4096);
        let short_input = seq(100_000..100_128);
        let fits_one_long = 4200 * m.kv_bytes_per_token() + 3 * m.ssm_checkpoint_bytes();

        let run = |policy: EvictionPolicy| {
            let mut c = HybridPrefixCache::builder(m.clone())
                .capacity_bytes(fits_one_long)
                .policy(policy)
                .build();
            c.insert_sequence(&long_input, &seq(200_000..200_032));
            // A burst of fresh short sequences applies pressure.
            for i in 0..4u32 {
                c.insert_sequence(
                    &seq(300_000 + i * 1000..300_000 + i * 1000 + 128),
                    &seq(400_000 + i * 1000..400_000 + i * 1000 + 16),
                );
            }
            let mut long_turn2 = long_input.clone();
            long_turn2.extend(seq(200_000..200_032));
            let _ = c.lookup(&short_input);
            c.lookup(&long_turn2).tokens_matched
        };

        let lru_hit = run(EvictionPolicy::Lru);
        let flop_hit = run(EvictionPolicy::FlopAware { alpha: 8.0 });
        assert!(
            flop_hit > lru_hit,
            "flop-aware ({flop_hit}) must retain the long prefix; lru got {lru_hit}"
        );
    }

    #[test]
    fn auto_tuner_walks_through_lifecycle() {
        let m = ModelConfig::hybrid_7b();
        let capacity = 2 * (160 * m.kv_bytes_per_token() + 2 * m.ssm_checkpoint_bytes());
        let mut c = HybridPrefixCache::builder(m)
            .capacity_bytes(capacity)
            .policy(EvictionPolicy::AutoTuned(TunerConfig {
                bootstrap_multiplier: 5.0,
                alpha_grid: vec![0.0, 1.0, 4.0],
                parallel: false,
            }))
            .build();
        assert_eq!(c.tuner_state(), Some(TunerState::WaitingForFirstEviction));
        let mut i = 0u32;
        while !matches!(c.tuner_state(), Some(TunerState::Tuned { .. })) {
            let input = seq(i * 10_000..i * 10_000 + 128 + (i % 7) * 64);
            let output = seq(i * 10_000 + 5000..i * 10_000 + 5032);
            c.lookup(&input);
            c.insert_at(&input, &output, f64::from(i));
            i += 1;
            assert!(i < 500, "tuner failed to converge");
        }
        assert!(c.current_alpha() >= 0.0);
        assert!(c.stats().evictions > 0);
    }

    #[test]
    fn tuner_grid_search_is_deterministic_across_parallelism() {
        let m = ModelConfig::hybrid_7b();
        let capacity = 3 * (160 * m.kv_bytes_per_token() + 2 * m.ssm_checkpoint_bytes());
        let run = |parallel: bool| {
            let mut c = HybridPrefixCache::builder(m.clone())
                .capacity_bytes(capacity)
                .policy(EvictionPolicy::AutoTuned(TunerConfig {
                    bootstrap_multiplier: 5.0,
                    alpha_grid: vec![0.0, 0.5, 2.0],
                    parallel,
                }))
                .build();
            for i in 0..200u32 {
                let input = seq(i * 10_000..i * 10_000 + 64 + (i % 5) * 200);
                let output = seq(i * 10_000 + 5000..i * 10_000 + 5016);
                c.lookup_at(&input, f64::from(i));
                c.insert_at(&input, &output, f64::from(i));
            }
            c.current_alpha()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn zero_capacity_cache_stays_empty_but_serves() {
        let mut c = marconi(0);
        c.insert_sequence(&seq(0..64), &seq(100..110));
        assert_eq!(c.usage_bytes(), 0);
        assert!(!c.lookup(&seq(0..64)).is_hit());
    }

    #[test]
    fn empty_input_and_output_are_tolerated() {
        let mut c = marconi(1 << 40);
        let r = c.lookup(&[]);
        assert_eq!(r.tokens_matched, 0);
        let rep = c.insert_sequence(&[], &[]);
        assert_eq!(rep.ssm_states_admitted, 0);
        assert_eq!(c.usage_bytes(), 0);
    }

    #[test]
    fn builder_names_follow_policy() {
        let m = ModelConfig::hybrid_7b();
        assert_eq!(
            HybridPrefixCache::builder(m.clone()).build().name(),
            "marconi"
        );
        assert_eq!(
            HybridPrefixCache::builder(m.clone())
                .policy(EvictionPolicy::Lru)
                .build()
                .name(),
            "sglang+"
        );
        assert_eq!(
            HybridPrefixCache::builder(m).name("custom").build().name(),
            "custom"
        );
    }

    #[test]
    fn chunked_checkpointing_rounds_down_to_boundary() {
        // §4.1: "when prefilling ... if we need to cache the state at
        // token 80, we can checkpoint the state at token 64" (chunk 32).
        assert_eq!(CheckpointMode::Exact.checkpoint_depth(80), 80);
        assert_eq!(
            CheckpointMode::Chunked { chunk_size: 32 }.checkpoint_depth(80),
            64
        );
        assert_eq!(
            CheckpointMode::Chunked { chunk_size: 32 }.checkpoint_depth(20),
            0,
            "no boundary before the branch: skip the checkpoint"
        );

        let mut c = HybridPrefixCache::builder(ModelConfig::hybrid_7b())
            .capacity_bytes(1 << 42)
            .checkpoint_mode(CheckpointMode::Chunked { chunk_size: 32 })
            .build();
        let prompt = seq(0..80);
        let mk = |tag: u32| {
            let mut v = prompt.clone();
            v.extend(seq(tag..tag + 16));
            v
        };
        c.insert_sequence(&mk(1000), &seq(9000..9004));
        let rep = c.insert_sequence(&mk(2000), &seq(9100..9104));
        assert_eq!(
            rep.branch_checkpoint_depth,
            Some(64),
            "branch at 80 checkpoints at the chunk boundary 64"
        );
        // The third occurrence reuses 64 tokens instead of 80.
        assert_eq!(c.lookup(&mk(3000)).tokens_matched, 64);
    }

    #[test]
    fn gdsf_prefers_low_cost_per_byte_victims() {
        // One long (high C/S) and several short fresh sequences; GDSF must
        // keep the long one even when it is older.
        let m = ModelConfig::hybrid_7b();
        let long_input = seq(0..2048);
        let capacity = 2400 * m.kv_bytes_per_token() + 3 * m.ssm_checkpoint_bytes();
        let mut c = HybridPrefixCache::builder(m)
            .capacity_bytes(capacity)
            .policy(EvictionPolicy::Gdsf)
            .build();
        c.insert_sequence(&long_input, &seq(100_000..100_016));
        for i in 0..4u32 {
            c.insert_sequence(
                &seq(200_000 + i * 1000..200_000 + i * 1000 + 64),
                &seq(300_000 + i * 10..300_000 + i * 10 + 8),
            );
        }
        let mut resume = long_input.clone();
        resume.extend(seq(100_000..100_016));
        assert!(
            c.lookup(&resume).tokens_matched > 0,
            "GDSF should retain the high-cost long prefix"
        );
        assert!(c.stats().evictions > 0);
    }

    #[test]
    fn gdsf_respects_capacity_and_terminates() {
        let m = ModelConfig::hybrid_7b();
        let capacity = 300 * m.kv_bytes_per_token() + 2 * m.ssm_checkpoint_bytes();
        let mut c = HybridPrefixCache::builder(m)
            .capacity_bytes(capacity)
            .policy(EvictionPolicy::Gdsf)
            .build();
        for i in 0..12u32 {
            c.insert_sequence(
                &seq(i * 10_000..i * 10_000 + 128),
                &seq(i * 10_000 + 5000..i * 10_000 + 5016),
            );
            assert!(c.usage_bytes() <= capacity);
        }
    }

    #[test]
    fn ancestor_refresh_ablation_changes_lru_order() {
        // With the ablation on, a deep hit refreshes the whole chain, so
        // LRU keeps the ancestors; with Marconi's rule the ancestors stay
        // stale but hits are unaffected (their KVs are absorbed on
        // eviction). Both configurations must still serve the resume.
        let m = ModelConfig::hybrid_7b();
        let capacity = 1200 * m.kv_bytes_per_token() + 6 * m.ssm_checkpoint_bytes();
        for ablate in [false, true] {
            let mut c = HybridPrefixCache::builder(m.clone())
                .capacity_bytes(capacity)
                .policy(EvictionPolicy::Lru)
                .refresh_ancestors(ablate)
                .build();
            // Build a 3-turn conversation (a chain of 3 nodes).
            let mut history = seq(0..256);
            c.insert_sequence(&history, &seq(9000..9032));
            history.extend(seq(9000..9032));
            for t in 1..3u32 {
                let mut input = history.clone();
                input.extend(seq(t * 1000..t * 1000 + 64));
                c.insert_sequence(&input, &seq(9100 * t..9100 * t + 32));
                history = input;
                history.extend(seq(9100 * t..9100 * t + 32));
            }
            let hit = c.lookup(&history);
            assert_eq!(
                hit.tokens_matched,
                history.len() as u64,
                "ablate={ablate}: full-history resume"
            );
        }
    }

    #[test]
    fn leaf_only_eviction_pins_interior_checkpoints() {
        // With the ablation on, stale single-child interior nodes cannot be
        // evicted, so their SSM states keep occupying memory and more
        // leaves must go instead.
        let m = ModelConfig::hybrid_7b();
        let capacity = 800 * m.kv_bytes_per_token() + 6 * m.ssm_checkpoint_bytes();
        let run = |leaf_only: bool| {
            let mut c = HybridPrefixCache::builder(m.clone())
                .capacity_bytes(capacity)
                .policy(EvictionPolicy::Lru)
                .leaf_only_eviction(leaf_only)
                .build();
            // One growing conversation (interior chain) + short floods.
            let mut history = seq(0..256);
            c.insert_sequence(&history, &seq(9000..9032));
            history.extend(seq(9000..9032));
            for t in 1..4u32 {
                let mut input = history.clone();
                input.extend(seq(t * 1000..t * 1000 + 64));
                c.insert_sequence(&input, &seq(9100 * t..9100 * t + 16));
                history = input;
                history.extend(seq(9100 * t..9100 * t + 16));
            }
            for i in 0..6u32 {
                c.insert_sequence(
                    &seq(500_000 + i * 1000..500_000 + i * 1000 + 96),
                    &seq(600_000 + i * 10..600_000 + i * 10 + 8),
                );
            }
            (c.ssm_state_count(), c.usage_bytes())
        };
        let (states_marconi, usage_a) = run(false);
        let (states_ablated, usage_b) = run(true);
        assert!(usage_a <= capacity && usage_b <= capacity);
        assert!(
            states_ablated >= states_marconi,
            "pinned interiors retain at least as many states: {states_ablated} vs {states_marconi}"
        );
    }

    #[test]
    fn replica_mirrors_parent_configuration() {
        // The α grid-search must replay against a cache with the *same*
        // semantics as the live one; a drifted replica tunes α for a system
        // that doesn't exist.
        let parent = HybridPrefixCache::builder(ModelConfig::hybrid_7b())
            .capacity_bytes(1 << 30)
            .checkpoint_mode(CheckpointMode::Chunked { chunk_size: 32 })
            .refresh_ancestors(true)
            .leaf_only_eviction(true)
            .build();
        let snapshot = Snapshot {
            tree: parent.tree.clone(),
            ssm_states: parent.ssm_states,
            host_tokens: parent.host_tokens,
            host_ssm_states: parent.host_ssm_states,
            clock: parent.clock,
        };
        let replica = parent.replica(&snapshot, 1.5);
        assert_eq!(replica.checkpoint_mode, parent.checkpoint_mode);
        assert_eq!(replica.refresh_ancestors, parent.refresh_ancestors);
        assert_eq!(replica.leaf_only_eviction, parent.leaf_only_eviction);
        assert_eq!(replica.session_cursors, parent.session_cursors);
        assert_eq!(replica.effective_alpha, 1.5);
    }

    #[test]
    fn chunked_tuner_replay_reproduces_chunked_checkpoint_depths() {
        // Regression for the replica config drift: a Chunked{32} cache's
        // replay replica must checkpoint a branch at depth 80 at the chunk
        // boundary 64, exactly like the live cache — not at 80 as the old
        // hardcoded Exact replica did.
        let parent = HybridPrefixCache::builder(ModelConfig::hybrid_7b())
            .capacity_bytes(1 << 42)
            .checkpoint_mode(CheckpointMode::Chunked { chunk_size: 32 })
            .build();
        let snapshot = Snapshot {
            tree: parent.tree.clone(),
            ssm_states: parent.ssm_states,
            host_tokens: parent.host_tokens,
            host_ssm_states: parent.host_ssm_states,
            clock: parent.clock,
        };
        let mut replica = parent.replica(&snapshot, 0.5);
        let prompt = seq(0..80);
        let mk = |tag: u32| {
            let mut v = prompt.clone();
            v.extend(seq(tag..tag + 16));
            v
        };
        replica.insert_sequence(&mk(1000), &seq(9000..9004));
        let rep = replica.insert_sequence(&mk(2000), &seq(9100..9104));
        assert_eq!(
            rep.branch_checkpoint_depth,
            Some(64),
            "replica must inherit the parent's chunked checkpointing"
        );
        assert_eq!(replica.lookup(&mk(3000)).tokens_matched, 64);
    }

    #[test]
    fn mid_edge_partial_hits_refresh_recency() {
        // Pure Transformer: a request repeatedly reusing the first half of
        // a cached sequence ends mid-edge. The containing node must get its
        // recency refreshed so LRU pressure evicts genuinely cold entries
        // instead.
        let m = ModelConfig::transformer_7b();
        let capacity = 2 * 160 * m.kv_bytes_per_token() + 1;
        let mut c = HybridPrefixCache::builder(m)
            .capacity_bytes(capacity)
            .policy(EvictionPolicy::Lru)
            .build();
        c.insert_sequence(&seq(0..128), &seq(1000..1032)); // A (older)
        c.insert_sequence(&seq(50_000..50_128), &seq(60_000..60_032)); // B

        // Repeated partial hits on A end mid-edge (depth 64 of 160).
        for _ in 0..3 {
            let r = c.lookup(&seq(0..64));
            assert_eq!(r.tokens_matched, 64);
            assert!(r.node.is_some(), "mid-edge hit must name the hot node");
        }
        // C forces an eviction: B (stale) must go, not the partially-hot A.
        c.insert_sequence(&seq(70_000..70_128), &seq(80_000..80_032));
        assert_eq!(
            c.lookup(&seq(0..64)).tokens_matched,
            64,
            "partially-hit prefix survived LRU pressure"
        );
        assert_eq!(
            c.lookup(&seq(50_000..50_064)).tokens_matched,
            0,
            "the stale full sequence was the victim"
        );
    }

    #[test]
    fn probe_agrees_with_lookup_on_hybrid_and_transformer() {
        for model in [ModelConfig::hybrid_7b(), ModelConfig::transformer_7b()] {
            let mut c = HybridPrefixCache::builder(model)
                .capacity_bytes(1 << 40)
                .build();
            c.insert_sequence(&seq(0..300), &seq(9000..9032));
            c.insert_sequence(&seq(0..200), &seq(8000..8016));
            for query in [
                seq(0..150),         // mid-edge / no checkpoint
                seq(0..200),         // branch point
                seq(0..300),         // deeper prefix
                seq(50_000..50_010), // complete miss
                Vec::new(),          // empty input
                {
                    let mut v = seq(0..300);
                    v.extend(seq(9000..9032));
                    v.extend(seq(7000..7005)); // conversation resume
                    v
                },
            ] {
                let probed = c.longest_cached_prefix_len(&query);
                let looked = c.lookup(&query).tokens_matched;
                assert_eq!(probed, looked, "probe must predict lookup exactly");
            }
        }
    }

    #[test]
    fn probe_is_completely_non_mutating() {
        let mut c = marconi(1 << 40);
        c.insert_sequence(&seq(0..300), &seq(9000..9032));
        let stats_before = *c.stats();
        let nodes_before = c.node_count();
        let states_before = c.ssm_state_count();
        let usage_before = c.usage_bytes();

        // A probe whose insertion *would* split an edge must not fire
        // speculative insertion, and a probe that hits must not bump stats.
        let mut branching = seq(0..200);
        branching.extend(seq(60_000..60_040));
        c.longest_cached_prefix_len(&branching);
        let mut resume = seq(0..300);
        resume.extend(seq(9000..9032));
        c.longest_cached_prefix_len(&resume);

        assert_eq!(*c.stats(), stats_before, "stats must not move");
        assert_eq!(c.node_count(), nodes_before, "no speculative insertion");
        assert_eq!(c.ssm_state_count(), states_before);
        assert_eq!(c.usage_bytes(), usage_before);
    }

    #[test]
    fn probe_does_not_refresh_lru_recency() {
        // Contrast with `hit_refreshes_recency_and_prevents_eviction`:
        // probing A (unlike looking it up) must leave A the LRU victim.
        let m = ModelConfig::hybrid_7b();
        let capacity = 2 * (128 * m.kv_bytes_per_token() + m.ssm_checkpoint_bytes()) + 1;
        let mut c = sglang(capacity);
        c.insert_sequence(&seq(0..96), &seq(500..532)); // A (oldest)
        c.insert_sequence(&seq(10_000..10_096), &seq(10_500..10_532)); // B

        let mut turn_a = seq(0..96);
        turn_a.extend(seq(500..532));
        for _ in 0..5 {
            assert!(c.longest_cached_prefix_len(&turn_a) > 0, "A is cached");
        }
        // C forces an eviction: A must still be the victim despite probes.
        c.insert_sequence(&seq(20_000..20_096), &seq(20_500..20_532));
        assert!(
            !c.lookup(&turn_a).is_hit(),
            "probes must not have refreshed A's recency"
        );
        let mut turn_b = seq(10_000..10_096);
        turn_b.extend(seq(10_500..10_532));
        assert!(c.lookup(&turn_b).is_hit(), "B retained");
    }

    #[test]
    fn gdsf_bookkeeping_is_gated_on_policy() {
        let m = ModelConfig::hybrid_7b();
        for policy in [
            EvictionPolicy::Lru,
            EvictionPolicy::FlopAware { alpha: 2.0 },
        ] {
            let mut c = HybridPrefixCache::builder(m.clone())
                .capacity_bytes(1 << 40)
                .policy(policy)
                .build();
            c.insert_sequence(&seq(0..128), &seq(1000..1032));
            c.lookup(&{
                let mut v = seq(0..128);
                v.extend(seq(1000..1032));
                v
            });
            for id in c.tree.node_ids() {
                let meta = c.tree.data(id);
                assert_eq!(
                    meta.frequency, 0,
                    "{}: GDSF counters must stay idle",
                    c.name
                );
                assert_eq!(meta.gdsf_priority, 0.0);
            }
        }
        // Under GDSF the counters do move.
        let mut c = HybridPrefixCache::builder(m)
            .capacity_bytes(1 << 40)
            .policy(EvictionPolicy::Gdsf)
            .build();
        c.insert_sequence(&seq(0..128), &seq(1000..1032));
        assert!(c.tree.node_ids().any(|id| c.tree.data(id).frequency > 0));
    }

    /// Replays a seeded trace through two identically-configured caches —
    /// one using the pre-refactor full-scan selection, one the incremental
    /// (now tier-aware) pipeline at `host_capacity = 0` — and demands
    /// byte-identical victim sequences and stats. This is the single-tier
    /// parity contract: a zero host budget must reproduce the pre-tiering
    /// cache byte-for-byte.
    fn assert_eviction_parity(policy: EvictionPolicy, capacity: u64, trace_seed: u64) {
        use marconi_workload::{DatasetKind, TraceGenerator};
        let trace = TraceGenerator::new(DatasetKind::Lmsys)
            .sessions(12)
            .seed(trace_seed)
            .generate();
        let build = |scan: bool| {
            let mut c = HybridPrefixCache::builder(ModelConfig::hybrid_7b())
                .capacity_bytes(capacity)
                .host_capacity_bytes(0)
                .policy(policy.clone())
                .build();
            c.use_scan_eviction = scan;
            c
        };
        let mut reference = build(true);
        let mut incremental = build(false);
        for r in &trace.requests {
            reference.lookup_at(&r.input, r.arrival);
            incremental.lookup_at(&r.input, r.arrival);
            reference.insert_at(&r.input, &r.output, r.arrival);
            incremental.insert_at(&r.input, &r.output, r.arrival);
        }
        assert!(
            reference.stats.evictions > 0,
            "parity trace must exercise eviction ({policy})"
        );
        assert_eq!(
            reference.eviction_log, incremental.eviction_log,
            "victim sequence diverged under {policy}"
        );
        assert_eq!(
            reference.stats, incremental.stats,
            "stats diverged under {policy}"
        );
        assert_eq!(reference.usage(), incremental.usage());
        assert_eq!(reference.effective_alpha, incremental.effective_alpha);
        // Single-tier runs must never touch the host tier in any way.
        assert_eq!(incremental.host_usage_bytes(), 0);
        assert_eq!(incremental.stats.demotions, 0);
        assert_eq!(incremental.stats.host_hits, 0);
        assert_eq!(incremental.stats.host_hit_tokens, 0);
        assert_eq!(incremental.stats.host_evictions, 0);
    }

    #[test]
    fn eviction_order_parity_lru() {
        let m = ModelConfig::hybrid_7b();
        let cap = 9000 * m.kv_bytes_per_token();
        assert_eviction_parity(EvictionPolicy::Lru, cap, 7);
    }

    #[test]
    fn eviction_order_parity_flop_aware() {
        let m = ModelConfig::hybrid_7b();
        let cap = 9000 * m.kv_bytes_per_token();
        assert_eviction_parity(EvictionPolicy::FlopAware { alpha: 2.0 }, cap, 11);
    }

    #[test]
    fn eviction_order_parity_gdsf() {
        let m = ModelConfig::hybrid_7b();
        let cap = 9000 * m.kv_bytes_per_token();
        assert_eviction_parity(EvictionPolicy::Gdsf, cap, 13);
    }

    #[test]
    fn eviction_order_parity_auto_tuned() {
        // AutoTuned also exercises replica replay parity: the tuner's grid
        // search must pick the same α either way.
        let m = ModelConfig::hybrid_7b();
        let cap = 9000 * m.kv_bytes_per_token();
        assert_eviction_parity(
            EvictionPolicy::AutoTuned(TunerConfig {
                bootstrap_multiplier: 5.0,
                alpha_grid: vec![0.0, 1.0, 4.0],
                parallel: false,
            }),
            cap,
            17,
        );
    }

    // ------------------------------------------------------------------
    // PR 9: the off-is-free contract. Attaching the NullSink — or even a
    // live RingRecorder — must leave every observable byte of cache state
    // identical to an untraced run: the flight recorder watches decisions,
    // it never participates in them.
    // ------------------------------------------------------------------

    /// Replays a seeded two-tier trace through three identically-configured
    /// caches — untraced, NullSink-attached, RingRecorder-attached — and
    /// demands byte-identical victim logs, stats, occupancy, and tuned α
    /// across all three. The recorder run must additionally have captured a
    /// non-empty event stream, so the parity is not vacuous.
    fn assert_tracing_is_free(policy: EvictionPolicy, trace_seed: u64) {
        use marconi_trace::{NullSink, RingRecorder, Tracer};
        use marconi_workload::{DatasetKind, TraceGenerator};
        let m = ModelConfig::hybrid_7b();
        let capacity = 9000 * m.kv_bytes_per_token();
        let trace = TraceGenerator::new(DatasetKind::Lmsys)
            .sessions(12)
            .seed(trace_seed)
            .generate();
        let run = |tracer: Option<Tracer>| {
            let mut c = HybridPrefixCache::builder(ModelConfig::hybrid_7b())
                .capacity_bytes(capacity)
                .host_capacity_bytes(capacity / 2)
                .policy(policy.clone())
                .build();
            if let Some(t) = tracer {
                c.set_tracer(t);
            }
            for r in &trace.requests {
                c.lookup_at(&r.input, r.arrival);
                c.insert_at(&r.input, &r.output, r.arrival);
            }
            c
        };
        let bare = run(None);
        assert!(
            bare.stats.evictions > 0 && bare.stats.demotions > 0,
            "off-is-free trace must exercise eviction and demotion ({policy})"
        );
        let null = run(Some(Tracer::to_sink(NullSink).0));
        let (traced, recorder) = Tracer::to_sink(RingRecorder::new(1 << 16));
        let ring = run(Some(traced));
        for (label, other) in [("NullSink", &null), ("RingRecorder", &ring)] {
            assert_eq!(
                bare.eviction_log, other.eviction_log,
                "{label} perturbed the victim sequence under {policy}"
            );
            assert_eq!(
                bare.stats, other.stats,
                "{label} perturbed stats under {policy}"
            );
            assert_eq!(bare.usage(), other.usage(), "{label} usage ({policy})");
            assert_eq!(
                bare.host_usage_bytes(),
                other.host_usage_bytes(),
                "{label} host usage ({policy})"
            );
            assert_eq!(
                bare.effective_alpha, other.effective_alpha,
                "{label} perturbed the tuned α under {policy}"
            );
            assert_eq!(
                bare.tree.token_count(),
                other.tree.token_count(),
                "{label} tree contents ({policy})"
            );
        }
        let rec = recorder.lock().expect("lock: test-local recorder");
        assert!(
            rec.recorded() > 0,
            "recorder must capture events for the parity to mean anything"
        );
        assert!(
            rec.events().any(|e| e.event.kind() == "eviction-episode"),
            "an eviction-heavy run must log eviction episodes"
        );
    }

    #[test]
    fn tracing_is_free_lru() {
        assert_tracing_is_free(EvictionPolicy::Lru, 7);
    }

    #[test]
    fn tracing_is_free_flop_aware() {
        assert_tracing_is_free(EvictionPolicy::FlopAware { alpha: 2.0 }, 11);
    }

    #[test]
    fn tracing_is_free_gdsf() {
        assert_tracing_is_free(EvictionPolicy::Gdsf, 13);
    }

    #[test]
    fn tracing_is_free_auto_tuned() {
        assert_tracing_is_free(
            EvictionPolicy::AutoTuned(TunerConfig {
                bootstrap_multiplier: 5.0,
                alpha_grid: vec![0.0, 1.0, 4.0],
                parallel: false,
            }),
            17,
        );
    }

    // ------------------------------------------------------------------
    // PR 8 stress: split/merge-heavy multi-tenant replay parity at scale.
    // The single-tier parity contract above, pushed through traces that
    // churn the arena engine's whole split/merge lifecycle: every request
    // forks an earlier same-tenant sequence at a random depth (usually
    // mid-edge, forcing an edge split on insert), and sustained capacity
    // pressure deletes and merges those nodes back out. Default size keeps
    // the scan reference affordable in debug builds; set
    // MARCONI_STRESS_FULL=1 to replay at 100k+ live nodes.
    // ------------------------------------------------------------------

    /// Tiny deterministic PRNG (splitmix64) for the stress traces.
    struct StressRng(u64);

    impl StressRng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Split/merge-heavy multi-tenant request stream: eight tenants with
    /// distinct system prompts; each request usually forks a recent
    /// same-tenant sequence at a random cut (mid-edge more often than not)
    /// and extends it with globally fresh tokens, so insertions split
    /// edges constantly and never accidentally re-merge.
    fn stress_trace(seed: u64, requests: usize) -> Vec<(Vec<Token>, Vec<Token>)> {
        const TENANTS: usize = 8;
        let mut rng = StressRng(seed);
        let mut fresh: u32 = 10_000_000;
        let mut history: Vec<Vec<Vec<Token>>> = vec![Vec::new(); TENANTS];
        let mut out = Vec::with_capacity(requests);
        for _ in 0..requests {
            let t = rng.below(TENANTS as u64) as usize;
            let base = (t as u32 + 1) * 100_000;
            let mut input: Vec<Token> = if history[t].is_empty() || rng.below(4) == 0 {
                (0..32).map(|i| base + i).collect()
            } else {
                let prev = &history[t][rng.below(history[t].len() as u64) as usize];
                let cut = 32 + rng.below((prev.len() - 32) as u64) as usize;
                prev[..cut].to_vec()
            };
            let extend = 8 + rng.below(56);
            for _ in 0..extend {
                input.push(fresh);
                fresh += 1;
            }
            history[t].push(input.clone());
            if history[t].len() > 24 {
                history[t].remove(0);
            }
            let output: Vec<Token> = (0..8)
                .map(|_| {
                    fresh += 1;
                    fresh
                })
                .collect();
            out.push((input, output));
        }
        out
    }

    /// Replays a stress trace through the scan-reference and incremental
    /// caches in lockstep and asserts the full PR 2/5 parity contract:
    /// byte-identical victim logs, `CacheStats`, usage, and α.
    fn assert_scale_replay_parity(policy: EvictionPolicy, trace_seed: u64) {
        // The binding cost is the *scan reference*: O(live nodes) per
        // victim, so full-scale runs are opt-in. (The 100k–1M-node regime
        // is exercised by the cursor-vs-root-walk scale replay in
        // `crates/radix/tests/differential.rs`, where both sides are
        // O(depth) per op.)
        let requests = if std::env::var("MARCONI_STRESS_FULL").is_ok() {
            20_000
        } else {
            2_000
        };
        let m = ModelConfig::hybrid_7b();
        let cap = requests as u64 * 256 * m.kv_bytes_per_token();
        let trace = stress_trace(trace_seed, requests);
        let build = |scan: bool| {
            let mut c = HybridPrefixCache::builder(ModelConfig::hybrid_7b())
                .capacity_bytes(cap)
                .host_capacity_bytes(0)
                .policy(policy.clone())
                .build();
            c.use_scan_eviction = scan;
            c
        };
        let mut reference = build(true);
        let mut incremental = build(false);
        for (i, (input, output)) in trace.iter().enumerate() {
            let now = i as f64;
            reference.lookup_at(input, now);
            incremental.lookup_at(input, now);
            reference.insert_at(input, output, now);
            incremental.insert_at(input, output, now);
        }
        assert!(
            reference.stats.evictions > 100,
            "stress trace must sustain eviction pressure ({policy}: {} evictions)",
            reference.stats.evictions
        );
        assert!(
            reference.tree.len() > 1_000,
            "stress trace must grow a large tree ({policy}: {} nodes)",
            reference.tree.len()
        );
        assert_eq!(
            reference.eviction_log, incremental.eviction_log,
            "victim sequence diverged under {policy}"
        );
        assert_eq!(
            reference.stats, incremental.stats,
            "stats diverged under {policy}"
        );
        assert_eq!(reference.usage(), incremental.usage());
        assert_eq!(reference.effective_alpha, incremental.effective_alpha);
        assert_eq!(reference.tree.len(), incremental.tree.len());
        incremental.tree.assert_invariants();
    }

    #[test]
    fn scale_replay_parity_lru() {
        assert_scale_replay_parity(EvictionPolicy::Lru, 101);
    }

    #[test]
    fn scale_replay_parity_flop_aware() {
        assert_scale_replay_parity(EvictionPolicy::FlopAware { alpha: 2.0 }, 103);
    }

    #[test]
    fn scale_replay_parity_gdsf() {
        assert_scale_replay_parity(EvictionPolicy::Gdsf, 107);
    }

    #[test]
    fn scale_replay_parity_auto_tuned() {
        assert_scale_replay_parity(
            EvictionPolicy::AutoTuned(TunerConfig {
                bootstrap_multiplier: 2.0,
                alpha_grid: vec![0.0, 1.0, 4.0],
                parallel: false,
            }),
            109,
        );
    }

    #[test]
    fn peak_usage_tracks_high_water_mark() {
        let m = ModelConfig::hybrid_7b();
        let capacity = 200 * m.kv_bytes_per_token() + 2 * m.ssm_checkpoint_bytes();
        let mut c = sglang(capacity);
        c.insert_sequence(&seq(0..128), &seq(1000..1032));
        let peak_after_one = c.stats().peak_usage_bytes;
        c.insert_sequence(&seq(50_000..50_128), &seq(60_000..60_032));
        assert!(c.stats().peak_usage_bytes >= peak_after_one);
    }

    // ------------------------------------------------------------------
    // The tiered device/host hierarchy (this PR's refactor): demotion
    // instead of deletion under device pressure, host hits that require a
    // transfer, promotion on re-insertion, and host-pressure deletion.
    // ------------------------------------------------------------------

    /// Capacity that fits exactly two 128-token single-checkpoint
    /// sequences, like the LRU tests above.
    fn two_seq_capacity(m: &ModelConfig) -> u64 {
        2 * (128 * m.kv_bytes_per_token() + m.ssm_checkpoint_bytes()) + 1
    }

    fn tiered(capacity: u64, host_capacity: u64) -> HybridPrefixCache {
        HybridPrefixCache::builder(ModelConfig::hybrid_7b())
            .capacity_bytes(capacity)
            .host_capacity_bytes(host_capacity)
            .policy(EvictionPolicy::Lru)
            .build()
    }

    #[test]
    fn device_pressure_demotes_instead_of_deleting() {
        let m = ModelConfig::hybrid_7b();
        let mut c = tiered(two_seq_capacity(&m), 1 << 40);
        c.insert_sequence(&seq(0..96), &seq(500..532)); // A (oldest)
        c.insert_sequence(&seq(10_000..10_096), &seq(10_500..10_532)); // B
        assert_eq!(c.host_usage_bytes(), 0);
        // C applies pressure: A demotes to host instead of vanishing.
        c.insert_sequence(&seq(20_000..20_096), &seq(20_500..20_532));
        assert!(c.stats().demotions > 0, "pressure must demote");
        assert_eq!(c.stats().evictions, 0, "nothing may be deleted");
        let expected = 128 * m.kv_bytes_per_token() + m.ssm_checkpoint_bytes();
        assert_eq!(c.host_usage_bytes(), expected, "A's bytes moved to host");
        assert!(c.usage_bytes() <= c.capacity_bytes());
        c.assert_tier_accounting();
    }

    #[test]
    fn host_hits_report_transfer_requirements() {
        let m = ModelConfig::hybrid_7b();
        let mut c = tiered(two_seq_capacity(&m), 1 << 40);
        c.insert_sequence(&seq(0..96), &seq(500..532)); // A
        c.insert_sequence(&seq(10_000..10_096), &seq(10_500..10_532)); // B
        c.insert_sequence(&seq(20_000..20_096), &seq(20_500..20_532)); // C demotes A

        let mut turn_a = seq(0..96);
        turn_a.extend(seq(500..532));
        let r = c.lookup(&turn_a);
        assert_eq!(r.tokens_matched, 128, "the demoted prefix still hits");
        assert_eq!(r.host_tokens, 128, "…but entirely from the host tier");
        assert_eq!(r.device_tokens(), 0);
        assert_eq!(
            r.host_bytes,
            128 * m.kv_bytes_per_token() + m.ssm_checkpoint_bytes(),
            "transfer = edge KVs + the hit node's checkpoint"
        );
        assert_eq!(
            r.host_reload_flops,
            m.prefill_flops(128).total(),
            "recompute arm = the span's prefill FLOPs"
        );
        assert_eq!(c.stats().host_hits, 1);
        assert_eq!(c.stats().host_hit_tokens, 128);
    }

    #[test]
    fn insertion_promotes_the_served_path_back_to_device() {
        let m = ModelConfig::hybrid_7b();
        let mut c = tiered(two_seq_capacity(&m), 1 << 40);
        c.insert_sequence(&seq(0..96), &seq(500..532)); // A
        c.insert_sequence(&seq(10_000..10_096), &seq(10_500..10_532)); // B
        c.insert_sequence(&seq(20_000..20_096), &seq(20_500..20_532)); // C demotes A

        // A's next turn is served (host hit) and re-admitted: its path must
        // be device-resident again, with pressure demoting a *colder*
        // entry instead.
        let mut turn_a = seq(0..96);
        turn_a.extend(seq(500..532));
        let mut next = turn_a.clone();
        next.extend(seq(30_000..30_016));
        c.lookup(&turn_a);
        c.insert_sequence(&next, &seq(40_000..40_008));
        let r = c.lookup(&{
            let mut v = next.clone();
            v.extend(seq(40_000..40_008));
            v
        });
        assert!(r.tokens_matched > 0);
        assert_eq!(r.host_tokens, 0, "the promoted path serves from device");
        assert!(c.usage_bytes() <= c.capacity_bytes());
        c.assert_tier_accounting();
    }

    #[test]
    fn host_pressure_deletes_with_the_same_victim_machinery() {
        let m = ModelConfig::hybrid_7b();
        // Host fits exactly one demoted 128-token sequence.
        let host_cap = 128 * m.kv_bytes_per_token() + m.ssm_checkpoint_bytes();
        let mut c = tiered(two_seq_capacity(&m), host_cap);
        for i in 0..6u32 {
            c.insert_sequence(
                &seq(i * 10_000..i * 10_000 + 96),
                &seq(i * 10_000 + 500..i * 10_000 + 532),
            );
        }
        assert!(c.stats().demotions >= 2, "repeated pressure demotes");
        assert!(
            c.stats().host_evictions > 0,
            "host overflow must delete from the host tier"
        );
        assert_eq!(c.stats().host_evictions, c.stats().evictions);
        assert!(c.host_usage_bytes() <= host_cap);
        assert!(c.usage_bytes() <= c.capacity_bytes());
        c.assert_tier_accounting();
    }

    #[test]
    fn probe_tiers_matches_lookup_and_stays_non_mutating() {
        let m = ModelConfig::hybrid_7b();
        let mut c = tiered(two_seq_capacity(&m), 1 << 40);
        c.insert_sequence(&seq(0..96), &seq(500..532)); // A → demoted below
        c.insert_sequence(&seq(10_000..10_096), &seq(10_500..10_532));
        c.insert_sequence(&seq(20_000..20_096), &seq(20_500..20_532));

        let mut turn_a = seq(0..96);
        turn_a.extend(seq(500..532));
        let stats_before = *c.stats();
        let host_before = c.host_usage_bytes();
        let p = c.probe_tiers(&turn_a);
        assert_eq!(*c.stats(), stats_before, "probe must not move stats");
        assert_eq!(c.host_usage_bytes(), host_before);
        assert_eq!(p.tokens, c.longest_cached_prefix_len(&turn_a));
        let r = c.lookup(&turn_a);
        assert_eq!(p.tokens, r.tokens_matched);
        assert_eq!(p.host_tokens, r.host_tokens);
        assert_eq!(p.device_tokens(), r.device_tokens());
    }

    #[test]
    fn transformer_mid_edge_host_hits_split_by_tier() {
        // Pure Transformer: a partial match ending inside a demoted edge
        // reports exactly the partial tokens as host-resident.
        let m = ModelConfig::transformer_7b();
        let capacity = 2 * 160 * m.kv_bytes_per_token() + 1;
        let mut c = HybridPrefixCache::builder(m.clone())
            .capacity_bytes(capacity)
            .host_capacity_bytes(1 << 40)
            .policy(EvictionPolicy::Lru)
            .build();
        c.insert_sequence(&seq(0..128), &seq(1000..1032)); // A (demoted below)
        c.insert_sequence(&seq(50_000..50_128), &seq(60_000..60_032));
        c.insert_sequence(&seq(70_000..70_128), &seq(80_000..80_032));
        assert!(c.stats().demotions > 0);

        let r = c.lookup(&seq(0..64));
        assert_eq!(r.tokens_matched, 64);
        assert_eq!(r.host_tokens, 64, "mid-edge partial from a host edge");
        assert_eq!(r.host_bytes, 64 * m.kv_bytes_per_token());
        assert_eq!(r.host_reload_flops, m.prefill_flops(64).total());
    }

    #[test]
    fn tiering_strictly_improves_hit_rate_on_contended_traces() {
        // The acceptance assertion: at a fixed (contended) device capacity,
        // adding a host tier strictly increases token hit rate — evicted-
        // would-be entries keep serving from host — for every policy
        // family.
        use marconi_workload::{DatasetKind, TraceGenerator};
        let m = ModelConfig::hybrid_7b();
        let capacity = 9000 * m.kv_bytes_per_token();
        let trace = TraceGenerator::new(DatasetKind::Lmsys)
            .sessions(12)
            .seed(7)
            .generate();
        for policy in [
            EvictionPolicy::Lru,
            EvictionPolicy::FlopAware { alpha: 2.0 },
            EvictionPolicy::AutoTuned(TunerConfig {
                bootstrap_multiplier: 5.0,
                alpha_grid: vec![0.0, 1.0, 4.0],
                parallel: false,
            }),
        ] {
            let run = |host: u64| {
                let mut c = HybridPrefixCache::builder(m.clone())
                    .capacity_bytes(capacity)
                    .host_capacity_bytes(host)
                    .policy(policy.clone())
                    .build();
                for r in &trace.requests {
                    c.lookup_at(&r.input, r.arrival);
                    c.insert_at(&r.input, &r.output, r.arrival);
                }
                c.assert_tier_accounting();
                assert!(c.usage_bytes() <= capacity);
                *c.stats()
            };
            let single = run(0);
            let tiered = run(4 << 30);
            assert!(
                single.evictions > 0,
                "{policy}: the trace must be contended"
            );
            assert!(tiered.demotions > 0, "{policy}: pressure must demote");
            assert!(tiered.host_hit_tokens > 0, "{policy}: host must serve");
            assert!(
                tiered.hit_tokens > single.hit_tokens,
                "{policy}: tiering must strictly improve reuse \
                 ({} vs {} hit tokens)",
                tiered.hit_tokens,
                single.hit_tokens
            );
            assert_eq!(tiered.input_tokens, single.input_tokens);
        }
    }

    #[test]
    fn replica_mirrors_tier_knobs() {
        // PR 2's tuner-fidelity invariant extended to the tier dimension:
        // a tiered cache's replay replicas must be tiered the same way, or
        // the α grid-search tunes against a single-tier system that
        // doesn't exist.
        let parent = HybridPrefixCache::builder(ModelConfig::hybrid_7b())
            .capacity_bytes(1 << 30)
            .host_capacity_bytes(3 << 30)
            .reload_policy(ReloadPolicy::AlwaysReload)
            .build();
        let snapshot = Snapshot {
            tree: parent.tree.clone(),
            ssm_states: parent.ssm_states,
            host_tokens: parent.host_tokens,
            host_ssm_states: parent.host_ssm_states,
            clock: parent.clock,
        };
        let replica = parent.replica(&snapshot, 1.0);
        assert_eq!(replica.host_capacity, parent.host_capacity);
        assert_eq!(replica.reload_policy, parent.reload_policy);
        assert_eq!(replica.reload_policy(), ReloadPolicy::AlwaysReload);
    }

    #[test]
    fn tiered_auto_tuner_replays_against_a_tiered_replica() {
        // End to end: drive a tiered AutoTuned cache through its whole
        // tuner lifecycle under contention; the replay replicas inherit
        // the host tier (the run would diverge or panic on accounting
        // drift otherwise) and the tuned cache stays within both budgets.
        let m = ModelConfig::hybrid_7b();
        let capacity = 2 * (160 * m.kv_bytes_per_token() + 2 * m.ssm_checkpoint_bytes());
        let mut c = HybridPrefixCache::builder(m)
            .capacity_bytes(capacity)
            .host_capacity_bytes(capacity)
            .policy(EvictionPolicy::AutoTuned(TunerConfig {
                bootstrap_multiplier: 5.0,
                alpha_grid: vec![0.0, 1.0, 4.0],
                parallel: false,
            }))
            .build();
        let mut i = 0u32;
        while !matches!(c.tuner_state(), Some(TunerState::Tuned { .. })) {
            let input = seq(i * 10_000..i * 10_000 + 128 + (i % 7) * 64);
            let output = seq(i * 10_000 + 5000..i * 10_000 + 5032);
            c.lookup_at(&input, f64::from(i));
            c.insert_at(&input, &output, f64::from(i));
            i += 1;
            assert!(i < 500, "tuner failed to converge");
        }
        assert!(c.stats().demotions > 0, "the host tier absorbed pressure");
        assert!(c.usage_bytes() <= c.capacity_bytes());
        assert!(c.host_usage_bytes() <= c.host_capacity_bytes());
        c.assert_tier_accounting();
    }

    #[test]
    fn tuner_bootstraps_on_demotion_pressure_without_any_deletion() {
        // Regression: the bootstrap trigger predates tiering and fired on
        // the first *eviction*; with an ample host budget device pressure
        // only ever demotes, and the tuner would wait forever, silently
        // serving the untuned initial α. The first demotion must start the
        // bootstrap window too.
        let m = ModelConfig::hybrid_7b();
        let capacity = 2 * (160 * m.kv_bytes_per_token() + 2 * m.ssm_checkpoint_bytes());
        let mut c = HybridPrefixCache::builder(m)
            .capacity_bytes(capacity)
            .host_capacity_bytes(1 << 42) // never fills: zero deletions
            .policy(EvictionPolicy::AutoTuned(TunerConfig {
                bootstrap_multiplier: 5.0,
                alpha_grid: vec![0.0, 1.0, 4.0],
                parallel: false,
            }))
            .build();
        let mut i = 0u32;
        while !matches!(c.tuner_state(), Some(TunerState::Tuned { .. })) {
            let input = seq(i * 10_000..i * 10_000 + 128 + (i % 7) * 64);
            let output = seq(i * 10_000 + 5000..i * 10_000 + 5032);
            c.lookup_at(&input, f64::from(i));
            c.insert_at(&input, &output, f64::from(i));
            i += 1;
            assert!(
                i < 500,
                "tuner failed to converge under demotion-only pressure"
            );
        }
        assert_eq!(c.stats().evictions, 0, "nothing was ever deleted");
        assert!(c.stats().demotions > 0, "demotions drove the bootstrap");
    }

    #[test]
    fn split_through_a_host_edge_keeps_accounting_exact() {
        // A new sequence diverging inside a demoted edge splits it; the new
        // intermediate node must inherit the host tier (its tokens came off
        // a host edge) and the inserted path promotes, all without counter
        // drift. The debug asserts in every later pressure episode would
        // catch drift; we also check directly.
        let m = ModelConfig::hybrid_7b();
        let mut c = tiered(two_seq_capacity(&m), 1 << 40);
        c.insert_sequence(&seq(0..96), &seq(500..532)); // A
        c.insert_sequence(&seq(10_000..10_096), &seq(10_500..10_532)); // B
        c.insert_sequence(&seq(20_000..20_096), &seq(20_500..20_532)); // A → host
        assert!(c.stats().demotions > 0);
        // Diverge at token 48 inside A's demoted 128-token edge.
        let mut div = seq(0..48);
        div.extend(seq(90_000..90_048));
        c.insert_sequence(&div, &seq(95_000..95_008));
        c.assert_tier_accounting();
        // The shared 48-token head was promoted with the inserted path; the
        // 80-token tail of A's old edge stays wherever it was.
        let r = c.lookup(&{
            let mut v = div.clone();
            v.extend(seq(95_000..95_008));
            v
        });
        assert!(r.tokens_matched > 0);
        assert_eq!(r.host_tokens, 0, "freshly inserted path is on device");
    }

    #[test]
    fn branch_heavy_demotion_cannot_strand_device_bytes() {
        // Regression: demotion (unlike deletion) never mutates the tree,
        // so a branch node whose children were all demoted keeps 2+
        // children forever and never enters the candidate pool — its edge
        // KVs would pin the device tier over its hard capacity. The
        // fallback demotion pass must keep device usage within budget
        // anyway. Shape: many tenant prompts, each with two divergent
        // continuations (every prompt becomes a non-candidate branch
        // node).
        let m = ModelConfig::hybrid_7b();
        let capacity = 3 * (128 * m.kv_bytes_per_token() + m.ssm_checkpoint_bytes());
        let mut c = HybridPrefixCache::builder(m)
            .capacity_bytes(capacity)
            .host_capacity_bytes(1 << 42)
            .policy(EvictionPolicy::Lru)
            .build();
        for t in 0..40u32 {
            let prompt = seq(t * 100_000..t * 100_000 + 96);
            for branch in 0..2u32 {
                let mut input = prompt.clone();
                input
                    .extend(seq(t * 100_000 + 50_000 + branch * 1000
                        ..t * 100_000 + 50_000 + branch * 1000 + 32));
                c.insert_sequence(
                    &input,
                    &seq(t * 100_000 + 90_000 + branch * 100
                        ..t * 100_000 + 90_000 + branch * 100 + 8),
                );
                assert!(
                    c.usage_bytes() <= c.capacity_bytes(),
                    "tenant {t}/{branch}: device tier must never exceed its hard capacity \
                     ({} > {})",
                    c.usage_bytes(),
                    c.capacity_bytes()
                );
            }
        }
        c.assert_tier_accounting();
        assert!(c.stats().demotions > 0);
        // The stranded prefixes still serve — from host.
        let mut resume = seq(0..96);
        resume.extend(seq(50_000..50_032));
        resume.extend(seq(90_000..90_008));
        let r = c.lookup(&resume);
        assert!(r.is_hit(), "demoted branch-heavy content keeps hitting");
        assert!(r.host_tokens > 0);
    }

    #[test]
    fn zero_host_capacity_never_reports_tier_activity() {
        // Belt and braces for the parity contract: a contended single-tier
        // run must keep every tier-related counter and lookup field at
        // exactly zero.
        use marconi_workload::{DatasetKind, TraceGenerator};
        let m = ModelConfig::hybrid_7b();
        let trace = TraceGenerator::new(DatasetKind::Lmsys)
            .sessions(8)
            .seed(3)
            .generate();
        let mut c = HybridPrefixCache::builder(m.clone())
            .capacity_bytes(6000 * m.kv_bytes_per_token())
            .policy(EvictionPolicy::Lru)
            .build();
        for r in &trace.requests {
            let hit = c.lookup_at(&r.input, r.arrival);
            assert_eq!(hit.host_tokens, 0);
            assert_eq!(hit.host_bytes, 0);
            assert_eq!(hit.host_reload_flops, 0);
            let rep = c.insert_at(&r.input, &r.output, r.arrival);
            assert_eq!(rep.entries_demoted, 0);
            assert_eq!(rep.bytes_demoted, 0);
        }
        assert!(c.stats().evictions > 0, "the trace must be contended");
        assert_eq!(c.stats().demotions, 0);
        assert_eq!(c.stats().host_hits, 0);
        assert_eq!(c.stats().host_hit_tokens, 0);
        assert_eq!(c.stats().host_evictions, 0);
        assert_eq!(c.host_usage_bytes(), 0);
    }

    // ------------------------------------------------------------------
    // In-flight pinning (this PR's bugfix): a request's admission-time hit
    // path must survive eviction pressure until the request completes.
    // ------------------------------------------------------------------

    /// Pinning parity: with the knob on but zero *overlapping* lifetimes
    /// (each request pins at lookup and unpins before its own insertion,
    /// like a serial executor), the victim sequence and stats must be
    /// byte-identical to a knob-off run — pins that never coincide with
    /// pressure must be invisible.
    #[test]
    fn non_overlapping_pins_preserve_byte_parity() {
        use marconi_workload::{DatasetKind, TraceGenerator};
        let m = ModelConfig::hybrid_7b();
        let capacity = 9000 * m.kv_bytes_per_token();
        let policies: Vec<(EvictionPolicy, u64)> = vec![
            (EvictionPolicy::Lru, 7),
            (EvictionPolicy::FlopAware { alpha: 2.0 }, 11),
            (EvictionPolicy::Gdsf, 13),
            (
                EvictionPolicy::AutoTuned(TunerConfig {
                    bootstrap_multiplier: 5.0,
                    alpha_grid: vec![0.0, 1.0, 4.0],
                    parallel: false,
                }),
                17,
            ),
        ];
        for (policy, seed) in policies {
            let trace = TraceGenerator::new(DatasetKind::Lmsys)
                .sessions(12)
                .seed(seed)
                .generate();
            let build = |pin: bool| {
                HybridPrefixCache::builder(ModelConfig::hybrid_7b())
                    .capacity_bytes(capacity)
                    .policy(policy.clone())
                    .in_flight_pinning(pin)
                    .build()
            };
            let mut reference = build(false);
            let mut pinned = build(true);
            for r in &trace.requests {
                reference.lookup_at(&r.input, r.arrival);
                reference.insert_at(&r.input, &r.output, r.arrival);

                pinned.lookup_at(&r.input, r.arrival);
                let ticket = pinned.pin_prefix(&r.input);
                // The request completes before the next one arrives:
                // release the pin, then admit — zero overlap.
                pinned.unpin(ticket);
                pinned.insert_at(&r.input, &r.output, r.arrival);
            }
            assert!(
                reference.stats.evictions > 0,
                "parity trace must exercise eviction ({policy})"
            );
            assert_eq!(
                reference.eviction_log, pinned.eviction_log,
                "victim sequence diverged under {policy}"
            );
            assert_eq!(
                reference.stats, pinned.stats,
                "stats diverged under {policy}"
            );
            assert_eq!(reference.usage(), pinned.usage());
            assert_eq!(reference.effective_alpha, pinned.effective_alpha);
            assert_eq!(pinned.pinned_node_count(), 0, "all tickets were redeemed");
        }
    }

    /// The headline bug, at the cache level: without pinning, LRU pressure
    /// reclaims the path an in-flight request's admission lookup hit; with
    /// pinning the victim choice diverges *only* there — pressure takes
    /// the next-best victim and the in-flight path survives.
    #[test]
    fn mid_flight_pin_protects_the_in_flight_hit_path() {
        let m = ModelConfig::hybrid_7b();
        let capacity = 3 * (128 * m.kv_bytes_per_token() + m.ssm_checkpoint_bytes()) + 1;
        let a_in = seq(0..96);
        let a_out = seq(500..532);
        let b_in = seq(10_000..10_096);
        let b_out = seq(10_500..10_532);
        let mut resume_a: Vec<Token> = a_in.clone();
        resume_a.extend_from_slice(&a_out);
        resume_a.extend(seq(2000..2020));
        let mut resume_b: Vec<Token> = b_in.clone();
        resume_b.extend_from_slice(&b_out);

        let run = |pin: bool| {
            let mut c = HybridPrefixCache::builder(ModelConfig::hybrid_7b())
                .capacity_bytes(capacity)
                .policy(EvictionPolicy::Lru)
                .in_flight_pinning(pin)
                .build();
            c.insert_at(&a_in, &a_out, 0.0);
            c.insert_at(&b_in, &b_out, 1.0);
            // Request R resumes session A and starts decoding: lookup hits
            // 128 tokens, the pin marks them in use.
            let hit = c.lookup_at(&resume_a, 2.0);
            assert_eq!(hit.tokens_matched, 128);
            let ticket = c.pin_prefix(&resume_a);
            // Session B is touched afterwards, so A's path is now the LRU
            // victim — exactly the shape where unpinned eviction corrupts R.
            c.lookup_at(&resume_b, 3.0);
            // Two unrelated completions apply pressure while R decodes.
            c.insert_at(&seq(20_000..20_096), &seq(20_500..20_532), 4.0);
            c.insert_at(&seq(30_000..30_096), &seq(30_500..30_532), 5.0);
            let still_cached = c.longest_cached_prefix_len(&resume_a);
            // R completes: release the pin, then admit its sequence.
            c.unpin(ticket);
            c.insert_at(&resume_a, &seq(600..616), 6.0);
            assert_eq!(c.pinned_node_count(), 0);
            c.assert_tier_accounting();
            still_cached
        };

        assert_eq!(
            run(false),
            0,
            "unpinned: pressure reclaims the in-flight hit path mid-decode"
        );
        assert_eq!(run(true), 128, "pinned: the in-flight path survives");
    }

    /// Satellite: all-pinned pressure must degrade gracefully. When every
    /// reclaimable byte is pinned and admission pushes 10× over budget,
    /// insertion spills (admits over capacity after dropping what it can)
    /// instead of livelocking; unpinning makes the bytes reclaimable again.
    #[test]
    fn all_pinned_pressure_spills_gracefully_instead_of_looping() {
        let m = ModelConfig::hybrid_7b();
        let capacity = two_seq_capacity(&m);
        let mut c = HybridPrefixCache::builder(m.clone())
            .capacity_bytes(capacity)
            .policy(EvictionPolicy::Lru)
            .build();
        let a_in = seq(0..96);
        let a_out = seq(500..532);
        let b_in = seq(10_000..10_096);
        let b_out = seq(10_500..10_532);
        c.insert_at(&a_in, &a_out, 0.0);
        c.insert_at(&b_in, &b_out, 1.0);
        let mut resume_a: Vec<Token> = a_in.clone();
        resume_a.extend_from_slice(&a_out);
        let mut resume_b: Vec<Token> = b_in.clone();
        resume_b.extend_from_slice(&b_out);
        let ta = c.pin_prefix(&resume_a);
        let tb = c.pin_prefix(&resume_b);
        assert!(
            c.tree.eviction_candidates().all(|id| c.tree.is_pinned(id)),
            "the shape under test: every eviction candidate is pinned"
        );

        // 10× the byte budget, branching off A's pinned edge so admission
        // also checkpoints a branch SSM state *inside* the pinned chain.
        // Three times over: each must terminate, not loop.
        for round in 0..3u32 {
            let mut giant: Vec<Token> = a_in[..64].to_vec();
            giant.extend(seq(40_000 + round * 10_000..40_000 + round * 10_000 + 2600));
            c.insert_at(
                &giant,
                &seq(700 + round..702 + round),
                2.0 + f64::from(round),
            );
            c.assert_tier_accounting();
        }
        assert!(
            c.usage_bytes() > c.capacity_bytes(),
            "pinned bytes spill over budget rather than being reclaimed"
        );
        assert!(c.pinned_bytes() > 0);
        // The pinned paths are untouched through all of it.
        assert_eq!(c.longest_cached_prefix_len(&resume_a), 128);
        assert_eq!(c.longest_cached_prefix_len(&resume_b), 128);

        // Completion unpins; the next pressure episode reclaims normally.
        c.unpin(ta);
        c.unpin(tb);
        assert_eq!(c.pinned_bytes(), 0);
        c.insert_at(&seq(90_000..90_096), &seq(90_500..90_532), 10.0);
        assert!(
            c.usage_bytes() <= c.capacity_bytes(),
            "with pins released, pressure fits the budget again"
        );
    }

    #[test]
    fn pinned_bytes_are_refcounted_per_path() {
        let m = ModelConfig::hybrid_7b();
        let mut c = marconi(1 << 40);
        let input = seq(0..96);
        let output = seq(500..532);
        c.insert_sequence(&input, &output);
        let mut resume: Vec<Token> = input.clone();
        resume.extend_from_slice(&output);

        assert_eq!(c.pinned_bytes(), 0);
        let t1 = c.pin_prefix(&resume);
        let expected = 128 * m.kv_bytes_per_token() + m.ssm_checkpoint_bytes();
        assert_eq!(c.pinned_bytes(), expected);
        // A second request over the same prefix shares the pin; bytes are
        // counted once.
        let t2 = c.pin_prefix(&resume);
        assert_eq!(c.pinned_bytes(), expected);
        c.unpin(t1);
        assert_eq!(c.pinned_bytes(), expected, "still held by the second pin");
        c.unpin(t2);
        assert_eq!(c.pinned_bytes(), 0);
        // A miss yields an empty ticket; redeeming it is a no-op.
        let empty = c.pin_prefix(&seq(70_000..70_010));
        assert!(empty.is_empty());
        c.unpin(empty);
        assert_eq!(c.pinned_bytes(), 0);
    }

    #[test]
    fn replica_mirrors_the_pinning_knob_and_clears_live_pins() {
        // Replay replicas model completed-request traces — no request is
        // in flight during a grid-search replay, so a replica must mirror
        // the knob but drop the parent's live pins.
        let mut parent = HybridPrefixCache::builder(ModelConfig::hybrid_7b())
            .capacity_bytes(1 << 30)
            .build();
        let input = seq(0..96);
        let output = seq(500..532);
        parent.insert_sequence(&input, &output);
        let mut resume: Vec<Token> = input.clone();
        resume.extend_from_slice(&output);
        let ticket = parent.pin_prefix(&resume);
        assert!(parent.pinned_node_count() > 0);

        let snapshot = Snapshot {
            tree: parent.tree.clone(),
            ssm_states: parent.ssm_states,
            host_tokens: parent.host_tokens,
            host_ssm_states: parent.host_ssm_states,
            clock: parent.clock,
        };
        let replica = parent.replica(&snapshot, 1.0);
        assert!(replica.pin_in_flight, "knob mirrored");
        assert_eq!(replica.pinned_node_count(), 0, "live pins not inherited");
        assert_eq!(replica.pinned_bytes(), 0);
        parent.unpin(ticket);

        let unpinning = HybridPrefixCache::builder(ModelConfig::hybrid_7b())
            .capacity_bytes(1 << 30)
            .in_flight_pinning(false)
            .build();
        let snapshot = Snapshot {
            tree: unpinning.tree.clone(),
            ssm_states: unpinning.ssm_states,
            host_tokens: unpinning.host_tokens,
            host_ssm_states: unpinning.host_ssm_states,
            clock: unpinning.clock,
        };
        let replica = unpinning.replica(&snapshot, 1.0);
        assert!(!replica.pin_in_flight, "knob-off mirrored too");
        // And a knob-off cache never pins in the first place.
        let mut off = HybridPrefixCache::builder(ModelConfig::hybrid_7b())
            .capacity_bytes(1 << 30)
            .in_flight_pinning(false)
            .build();
        off.insert_sequence(&input, &output);
        let t = off.pin_prefix(&resume);
        assert!(t.is_empty());
        assert_eq!(off.pinned_node_count(), 0);
    }

    /// Pins protect against *demotion* too: a tiered cache under device
    /// pressure demotes unpinned victims and leaves the pinned path on
    /// device (a demoted in-flight path would stall decode on a reload).
    #[test]
    fn pins_block_demotion_in_the_tiered_cache() {
        let m = ModelConfig::hybrid_7b();
        let capacity = two_seq_capacity(&m);
        let run = |pin: bool| {
            let mut c = HybridPrefixCache::builder(m.clone())
                .capacity_bytes(capacity)
                .host_capacity_bytes(1 << 40)
                .policy(EvictionPolicy::Lru)
                .in_flight_pinning(pin)
                .build();
            c.insert_at(&seq(0..96), &seq(500..532), 0.0); // A
            c.insert_at(&seq(10_000..10_096), &seq(10_500..10_532), 1.0); // B
            let mut resume_a: Vec<Token> = seq(0..96);
            resume_a.extend_from_slice(&seq(500..532));
            c.lookup_at(&resume_a, 2.0);
            let ticket = c.pin_prefix(&resume_a);
            let mut resume_b: Vec<Token> = seq(10_000..10_096);
            resume_b.extend_from_slice(&seq(10_500..10_532));
            c.lookup_at(&resume_b, 3.0); // B younger than A's pin
            c.insert_at(&seq(20_000..20_096), &seq(20_500..20_532), 4.0);
            let on_device = c.probe_tiers(&resume_a).device_tokens();
            c.unpin(ticket);
            c.assert_tier_accounting();
            on_device
        };
        assert_eq!(run(false), 0, "unpinned: device pressure demotes A to host");
        assert_eq!(run(true), 128, "pinned: A's path stays device-resident");
    }

    // ------------------------------------------------------------------
    // PR 10: session-cursor byte parity. Replaying a multi-turn trace with
    // session hints must leave every observable byte — victim logs, stats,
    // occupancy, tuned α, tree contents — identical to the unhinted replay
    // (and to a hinted replay with the knob off): a cursor is a walk
    // shortcut, never a semantic input.
    // ------------------------------------------------------------------

    /// Drives a seeded two-tier trace the way the engine does (lookup, pin,
    /// unpin, insert per request; a per-session cursor table when hinted)
    /// through three identically-configured caches: unhinted, hinted, and
    /// hinted-with-cursors-disabled. Demands byte-identical end state across
    /// all three, and that the hinted run actually resumed (so the parity
    /// is not vacuous).
    fn assert_session_cursor_parity(policy: EvictionPolicy, trace_seed: u64) {
        use crate::CursorTable;
        use marconi_trace::{RingRecorder, Tracer};
        use marconi_workload::{DatasetKind, TraceGenerator};
        let m = ModelConfig::hybrid_7b();
        let capacity = 9000 * m.kv_bytes_per_token();
        let trace = TraceGenerator::new(DatasetKind::Lmsys)
            .sessions(12)
            .seed(trace_seed)
            .generate();
        let run = |hinted: bool, knob: bool, tracer: Option<Tracer>| {
            let mut c = HybridPrefixCache::builder(ModelConfig::hybrid_7b())
                .capacity_bytes(capacity)
                .host_capacity_bytes(capacity / 2)
                .policy(policy.clone())
                .session_cursors(knob)
                .build();
            if let Some(t) = tracer {
                c.set_tracer(t);
            }
            let mut table = CursorTable::new(64);
            for r in &trace.requests {
                let hint = if hinted {
                    table.take(r.session_id)
                } else {
                    None
                };
                c.lookup_at_with(&r.input, r.arrival, hint);
                let ticket = c.pin_prefix_with(&r.input, hint);
                let (_, next) = c.insert_at_with(&r.input, &r.output, r.arrival, hint);
                c.unpin(ticket);
                if let Some(cursor) = next {
                    table.put(r.session_id, cursor);
                }
            }
            c
        };
        let cold = run(false, true, None);
        assert!(
            cold.stats.evictions > 0 && cold.stats.demotions > 0,
            "parity trace must exercise eviction and demotion ({policy})"
        );
        let (traced, recorder) = Tracer::to_sink(RingRecorder::new(1 << 16));
        let hinted = run(true, true, Some(traced));
        let knob_off = run(true, false, None);
        for (label, other) in [("hinted", &hinted), ("knob-off", &knob_off)] {
            assert_eq!(
                cold.eviction_log, other.eviction_log,
                "{label} run perturbed the victim sequence under {policy}"
            );
            assert_eq!(
                cold.stats, other.stats,
                "{label} run perturbed stats under {policy}"
            );
            assert_eq!(cold.usage(), other.usage(), "{label} usage ({policy})");
            assert_eq!(
                cold.host_usage_bytes(),
                other.host_usage_bytes(),
                "{label} host usage ({policy})"
            );
            assert_eq!(
                cold.effective_alpha, other.effective_alpha,
                "{label} run perturbed the tuned α under {policy}"
            );
            assert_eq!(
                cold.tree.token_count(),
                other.tree.token_count(),
                "{label} tree contents ({policy})"
            );
        }
        let rec = recorder.lock().expect("lock: test-local recorder");
        let resumed = rec
            .events()
            .filter(|e| e.event.kind() == "cursor-resumed")
            .count();
        assert!(
            resumed > 0,
            "a multi-turn trace must resume at least once for the parity to bite ({policy})"
        );
    }

    #[test]
    fn session_cursor_parity_lru() {
        assert_session_cursor_parity(EvictionPolicy::Lru, 7);
    }

    #[test]
    fn session_cursor_parity_flop_aware() {
        assert_session_cursor_parity(EvictionPolicy::FlopAware { alpha: 2.0 }, 11);
    }

    #[test]
    fn session_cursor_parity_gdsf() {
        assert_session_cursor_parity(EvictionPolicy::Gdsf, 13);
    }

    #[test]
    fn session_cursor_parity_auto_tuned() {
        assert_session_cursor_parity(
            EvictionPolicy::AutoTuned(TunerConfig {
                bootstrap_multiplier: 5.0,
                alpha_grid: vec![0.0, 1.0, 4.0],
                parallel: false,
            }),
            17,
        );
    }

    /// With the knob off the cache neither mints cursors nor honors hints.
    #[test]
    fn disabled_session_cursors_mint_nothing() {
        let mut c = HybridPrefixCache::builder(ModelConfig::hybrid_7b())
            .capacity_bytes(1 << 40)
            .session_cursors(false)
            .build();
        let (_, next) = c.insert_at_with(&seq(0..64), &seq(500..532), 0.0, None);
        assert!(next.is_none(), "knob off: no cursor minted");
    }
}
