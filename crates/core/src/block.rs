//! The vLLM+ baseline: fine-grained token-block checkpointing.
//!
//! vLLM partitions cached state into fixed-size token blocks. Extended to
//! hybrid models ("vLLM+", paper §5.1), every block stores the KVs of its
//! tokens *and* one full-model SSM checkpoint representing all tokens up to
//! the block boundary — the fine-grained checkpointing whose memory blow-up
//! and sparsely-hit entries motivate Marconi (§3, Fig. 3).

use crate::result::{AdmissionReport, LookupResult};
use crate::stats::CacheStats;
use crate::PrefixCache;
use marconi_model::ModelConfig;
use marconi_radix::Token;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index key: parent block (`0` = sequence start, else id + 1) plus the
/// block's tokens. Mirrors vLLM's prefix-hashing block table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BlockKey {
    parent: u32,
    tokens: Box<[Token]>,
}

#[derive(Debug, Clone)]
struct Block {
    parent: Option<u32>,
    tokens: Box<[Token]>,
    depth: u64,
    last_access: f64,
    children: u32,
    kv_reused: bool,
    ssm_reused: bool,
}

/// Cumulative block-reuse accounting for regenerating Fig. 3a.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockReuseReport {
    /// Token blocks ever admitted.
    pub blocks_created: u64,
    /// Blocks whose KVs were reused by at least one later request.
    pub kv_reused: u64,
    /// Blocks whose SSM checkpoint was reused by at least one later
    /// request (only the *last* block of a matched prefix reuses its SSM
    /// state — the source of sparsely-hit entries).
    pub ssm_reused: u64,
}

impl BlockReuseReport {
    /// Fraction of blocks whose KVs were ever reused.
    #[must_use]
    pub fn kv_reuse_fraction(&self) -> f64 {
        if self.blocks_created == 0 {
            return 0.0;
        }
        self.kv_reused as f64 / self.blocks_created as f64
    }

    /// Fraction of blocks whose SSM state was ever reused.
    #[must_use]
    pub fn ssm_reuse_fraction(&self) -> f64 {
        if self.blocks_created == 0 {
            return 0.0;
        }
        self.ssm_reused as f64 / self.blocks_created as f64
    }
}

/// Fine-grained block-checkpointing prefix cache (the paper's vLLM+).
///
/// Lookups and admissions operate at token-block granularity; eviction is
/// LRU over leaf blocks (blocks no other cached block extends).
///
/// # Examples
///
/// ```
/// use marconi_core::{BlockCache, PrefixCache};
/// use marconi_model::ModelConfig;
///
/// let mut cache = BlockCache::builder(ModelConfig::hybrid_7b())
///     .capacity_bytes(4 << 30)
///     .block_size(32)
///     .build();
/// let input: Vec<u32> = (0..100).collect();
/// cache.insert_sequence(&input, &[]);
/// // 100 tokens = 3 full blocks of 32; hits are block-quantized.
/// assert_eq!(cache.lookup(&input).tokens_matched, 96);
/// ```
#[derive(Debug, Clone)]
pub struct BlockCache {
    name: String,
    model: ModelConfig,
    capacity: u64,
    block_size: u64,
    arena: Vec<Option<Block>>,
    free: Vec<u32>,
    index: HashMap<BlockKey, u32>,
    live_blocks: u64,
    stats: CacheStats,
    reuse: BlockReuseReport,
    clock: f64,
}

impl BlockCache {
    /// Starts building a vLLM+ cache for `model`.
    ///
    /// Defaults: 16 GiB capacity, block size 32 (the largest size vLLM
    /// natively supports, which favors this baseline — §5.1).
    #[must_use]
    pub fn builder(model: ModelConfig) -> BlockCacheBuilder {
        BlockCacheBuilder {
            model,
            capacity: 16 << 30,
            block_size: 32,
            name: None,
        }
    }

    /// Token-block size.
    #[must_use]
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Live cached blocks.
    #[must_use]
    pub fn block_count(&self) -> u64 {
        self.live_blocks
    }

    /// Cumulative reuse accounting (Fig. 3a).
    #[must_use]
    pub fn reuse_report(&self) -> BlockReuseReport {
        self.reuse
    }

    /// Convenience [`PrefixCache::lookup_at`] with an internal clock.
    pub fn lookup(&mut self, input: &[Token]) -> LookupResult {
        self.clock += 1.0;
        let now = self.clock;
        self.lookup_at(input, now)
    }

    /// Convenience [`PrefixCache::insert_at`] with an internal clock.
    pub fn insert_sequence(&mut self, input: &[Token], output: &[Token]) -> AdmissionReport {
        self.clock += 1.0;
        let now = self.clock;
        self.insert_at(input, output, now)
    }

    // ------------------------------------------------------------------

    /// Bytes per cached block: KVs for `block_size` tokens plus one
    /// full-model SSM checkpoint.
    fn block_bytes(&self) -> u64 {
        self.block_size * self.model.kv_bytes_per_token() + self.model.ssm_checkpoint_bytes()
    }

    fn usage(&self) -> u64 {
        self.live_blocks * self.block_bytes()
    }

    fn parent_key(parent: Option<u32>) -> u32 {
        parent.map_or(0, |p| p + 1)
    }

    fn block(&self, id: u32) -> &Block {
        self.arena[id as usize]
            .as_ref()
            .expect("invariant: block ids in the index refer to live arena slots")
    }

    fn block_mut(&mut self, id: u32) -> &mut Block {
        self.arena[id as usize]
            .as_mut()
            .expect("invariant: block ids in the index refer to live arena slots")
    }

    /// Walks the block chain matching `input`, returning matched block ids.
    fn match_blocks(&self, input: &[Token]) -> Vec<u32> {
        let b = self.block_size as usize;
        let mut matched = Vec::new();
        let mut parent: Option<u32> = None;
        let mut pos = 0usize;
        while pos + b <= input.len() {
            let key = BlockKey {
                parent: Self::parent_key(parent),
                tokens: input[pos..pos + b].into(),
            };
            match self.index.get(&key) {
                Some(&id) => {
                    matched.push(id);
                    parent = Some(id);
                    pos += b;
                }
                None => break,
            }
        }
        matched
    }

    fn evict_until_fits(&mut self, report: &mut AdmissionReport) {
        while self.usage() > self.capacity && self.live_blocks > 0 {
            // LRU over leaf blocks: a block no other block extends.
            let victim = self
                .arena
                .iter()
                .enumerate()
                .filter_map(|(i, slot)| slot.as_ref().map(|blk| (i as u32, blk)))
                .filter(|(_, blk)| blk.children == 0)
                .min_by(|a, b| {
                    a.1.last_access
                        .total_cmp(&b.1.last_access)
                        .then(a.0.cmp(&b.0))
                })
                .map(|(id, _)| id)
                .expect("invariant: a non-empty block set has a leaf");
            self.remove_block(victim);
            let freed = self.block_bytes();
            self.stats.evictions += 1;
            self.stats.bytes_evicted += freed;
            report.entries_evicted += 1;
            report.bytes_evicted += freed;
        }
    }

    fn remove_block(&mut self, id: u32) {
        let block = self.arena[id as usize]
            .take()
            .expect("invariant: block ids in the index refer to live arena slots");
        debug_assert_eq!(block.children, 0, "only leaf blocks are evicted");
        let key = BlockKey {
            parent: Self::parent_key(block.parent),
            tokens: block.tokens.clone(),
        };
        self.index.remove(&key);
        if let Some(p) = block.parent {
            self.block_mut(p).children -= 1;
        }
        self.free.push(id);
        self.live_blocks -= 1;
    }
}

impl PrefixCache for BlockCache {
    fn name(&self) -> &str {
        &self.name
    }

    fn model(&self) -> &ModelConfig {
        &self.model
    }

    fn longest_cached_prefix_len(&self, input: &[Token]) -> u64 {
        // `match_blocks` only walks the index; no recency or reuse flags
        // are touched.
        self.match_blocks(input).len() as u64 * self.block_size
    }

    fn lookup_at(&mut self, input: &[Token], now: f64) -> LookupResult {
        self.clock = self.clock.max(now);
        let matched = self.match_blocks(input);
        let tokens = matched.len() as u64 * self.block_size;
        for (i, &id) in matched.iter().enumerate() {
            let last = i + 1 == matched.len();
            let block = self.block_mut(id);
            block.last_access = now;
            let fresh_kv = !block.kv_reused;
            block.kv_reused = true;
            // Only the final block's SSM state is consumed; earlier blocks
            // contribute KVs alone (paper §3: sparsely-hit SSM entries).
            let fresh_ssm = last && !block.ssm_reused;
            if last {
                block.ssm_reused = true;
            }
            if fresh_kv {
                self.reuse.kv_reused += 1;
            }
            if fresh_ssm {
                self.reuse.ssm_reused += 1;
            }
        }
        let result = LookupResult {
            tokens_matched: tokens,
            raw_matched: tokens,
            flops_saved: self.model.flops_saved(tokens),
            ..LookupResult::MISS
        };
        self.stats.lookups += 1;
        self.stats.input_tokens += input.len() as u64;
        self.stats.hit_tokens += tokens;
        self.stats.flops_saved += result.flops_saved;
        if result.is_hit() {
            self.stats.hits += 1;
        }
        result
    }

    fn insert_at(&mut self, input: &[Token], output: &[Token], now: f64) -> AdmissionReport {
        self.clock = self.clock.max(now);
        let mut full: Vec<Token> = Vec::with_capacity(input.len() + output.len());
        full.extend_from_slice(input);
        full.extend_from_slice(output);
        let b = self.block_size as usize;
        let mut report = AdmissionReport::default();
        let mut parent: Option<u32> = None;
        let mut pos = 0usize;
        while pos + b <= full.len() {
            let tokens: Box<[Token]> = full[pos..pos + b].into();
            let key = BlockKey {
                parent: Self::parent_key(parent),
                tokens: tokens.clone(),
            };
            let id = match self.index.get(&key) {
                Some(&id) => {
                    self.block_mut(id).last_access = now;
                    id
                }
                None => {
                    let block = Block {
                        parent,
                        tokens,
                        depth: (pos + b) as u64,
                        last_access: now,
                        children: 0,
                        kv_reused: false,
                        ssm_reused: false,
                    };
                    let id = match self.free.pop() {
                        Some(slot) => {
                            self.arena[slot as usize] = Some(block);
                            slot
                        }
                        None => {
                            self.arena.push(Some(block));
                            (self.arena.len() - 1) as u32
                        }
                    };
                    self.index.insert(key, id);
                    if let Some(p) = parent {
                        self.block_mut(p).children += 1;
                    }
                    self.live_blocks += 1;
                    self.reuse.blocks_created += 1;
                    report.ssm_states_admitted += 1;
                    report.bytes_added += self.block_bytes();
                    id
                }
            };
            debug_assert_eq!(self.block(id).depth, (pos + b) as u64);
            parent = Some(id);
            pos += b;
        }
        self.stats.insertions += 1;
        self.stats.ssm_states_admitted += report.ssm_states_admitted;
        self.stats.peak_usage_bytes = self.stats.peak_usage_bytes.max(self.usage());
        self.evict_until_fits(&mut report);
        report
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn usage_bytes(&self) -> u64 {
        self.usage()
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }
}

/// Builder for [`BlockCache`]; see [`BlockCache::builder`].
#[derive(Debug, Clone)]
pub struct BlockCacheBuilder {
    model: ModelConfig,
    capacity: u64,
    block_size: u64,
    name: Option<String>,
}

impl BlockCacheBuilder {
    /// Sets the cache capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(mut self, bytes: u64) -> Self {
        self.capacity = bytes;
        self
    }

    /// Sets the token-block size (default 32).
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    #[must_use]
    pub fn block_size(mut self, block_size: u64) -> Self {
        assert!(block_size > 0, "block size must be positive");
        self.block_size = block_size;
        self
    }

    /// Overrides the system name used in reports.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Builds the cache.
    pub fn build(self) -> BlockCache {
        BlockCache {
            name: self.name.unwrap_or_else(|| "vllm+".to_owned()),
            model: self.model,
            capacity: self.capacity,
            block_size: self.block_size,
            arena: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            live_blocks: 0,
            stats: CacheStats::default(),
            reuse: BlockReuseReport::default(),
            clock: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: u64) -> BlockCache {
        BlockCache::builder(ModelConfig::hybrid_7b())
            .capacity_bytes(capacity)
            .build()
    }

    fn seq(range: std::ops::Range<u32>) -> Vec<Token> {
        range.collect()
    }

    #[test]
    fn hits_are_block_quantized() {
        let mut c = cache(1 << 42);
        c.insert_sequence(&seq(0..100), &[]);
        assert_eq!(c.lookup(&seq(0..100)).tokens_matched, 96);
        assert_eq!(c.lookup(&seq(0..64)).tokens_matched, 64);
        assert_eq!(c.lookup(&seq(0..31)).tokens_matched, 0, "sub-block miss");
        assert_eq!(c.block_count(), 3, "partial tail block not cached");
    }

    #[test]
    fn divergent_suffix_stops_the_match() {
        let mut c = cache(1 << 42);
        c.insert_sequence(&seq(0..128), &[]);
        let mut q = seq(0..64);
        q.extend(seq(900..964));
        assert_eq!(c.lookup(&q).tokens_matched, 64);
    }

    #[test]
    fn usage_counts_kv_and_ssm_per_block() {
        let m = ModelConfig::hybrid_7b();
        let mut c = cache(1 << 42);
        c.insert_sequence(&seq(0..64), &[]);
        let per_block = 32 * m.kv_bytes_per_token() + m.ssm_checkpoint_bytes();
        assert_eq!(c.usage_bytes(), 2 * per_block);
    }

    #[test]
    fn shared_prefix_blocks_are_deduplicated() {
        let mut c = cache(1 << 42);
        c.insert_sequence(&seq(0..64), &[]);
        let mut other = seq(0..64);
        other.extend(seq(700..764));
        c.insert_sequence(&other, &[]);
        // 2 shared + 2 unshared blocks.
        assert_eq!(c.block_count(), 4);
    }

    #[test]
    fn lru_eviction_prefers_leaf_blocks() {
        let m = ModelConfig::hybrid_7b();
        let per_block = 32 * m.kv_bytes_per_token() + m.ssm_checkpoint_bytes();
        let mut c = BlockCache::builder(m).capacity_bytes(3 * per_block).build();
        c.insert_sequence(&seq(0..96), &[]); // 3 blocks, chain
        c.insert_sequence(&seq(1000..1032), &[]); // forces one eviction
        assert_eq!(c.block_count(), 3);
        // The tail block of the old chain was evicted, not its root: the
        // first 64 tokens still hit.
        assert_eq!(c.lookup(&seq(0..96)).tokens_matched, 64);
        assert!(c.stats().evictions >= 1);
    }

    #[test]
    fn fig3a_ssm_reuse_much_rarer_than_kv_reuse() {
        // Many conversation resumes: all prefix blocks' KVs get reused but
        // only the final block's SSM state each time.
        let mut c = cache(1 << 42);
        let mut history = seq(0..320);
        c.insert_sequence(&history, &[]);
        for turn in 0..5u32 {
            let r = c.lookup(&history);
            assert!(r.is_hit());
            let extension = seq(10_000 * (turn + 1)..10_000 * (turn + 1) + 320);
            history.extend(extension);
            c.insert_sequence(&history, &[]);
        }
        let rep = c.reuse_report();
        assert!(rep.kv_reuse_fraction() > 3.0 * rep.ssm_reuse_fraction());
        assert!(rep.blocks_created > 0);
    }

    #[test]
    fn reuse_flags_latch_once() {
        let mut c = cache(1 << 42);
        c.insert_sequence(&seq(0..32), &[]);
        c.lookup(&seq(0..32));
        c.lookup(&seq(0..32));
        let rep = c.reuse_report();
        assert_eq!(rep.kv_reused, 1);
        assert_eq!(rep.ssm_reused, 1);
    }

    #[test]
    fn insert_extends_existing_chain() {
        let mut c = cache(1 << 42);
        c.insert_sequence(&seq(0..64), &[]);
        c.insert_sequence(&seq(0..64), &seq(64..128));
        assert_eq!(c.block_count(), 4);
        let mut q = seq(0..64);
        q.extend(seq(64..128));
        assert_eq!(c.lookup(&q).tokens_matched, 128);
    }

    #[test]
    fn probe_is_block_quantized_and_non_mutating() {
        let mut c = cache(1 << 42);
        c.insert_sequence(&seq(0..100), &[]);
        let stats_before = *c.stats();
        assert_eq!(c.longest_cached_prefix_len(&seq(0..100)), 96);
        assert_eq!(c.longest_cached_prefix_len(&seq(0..31)), 0);
        assert_eq!(*c.stats(), stats_before, "probes must not move stats");
        let rep = c.reuse_report();
        assert_eq!(rep.kv_reused, 0, "probes must not latch reuse flags");
        assert_eq!(rep.ssm_reused, 0);
    }

    #[test]
    fn zero_capacity_evicts_everything() {
        let mut c = cache(0);
        c.insert_sequence(&seq(0..128), &[]);
        assert_eq!(c.block_count(), 0);
        assert_eq!(c.usage_bytes(), 0);
    }
}
