//! Cumulative cache statistics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Cumulative counters reported by every [`PrefixCache`](crate::PrefixCache).
///
/// The headline metric is [`token_hit_rate`](CacheStats::token_hit_rate) —
/// the paper's primary figure of merit, "the ratio of the number of tokens
/// that skipped prefill over the total number of input tokens".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served.
    pub lookups: u64,
    /// Lookups that reused a non-empty prefix.
    pub hits: u64,
    /// Total input tokens across all lookups.
    pub input_tokens: u64,
    /// Total tokens served from cache (prefill skipped).
    pub hit_tokens: u64,
    /// Total prefill FLOPs saved by hits.
    pub flops_saved: u128,
    /// Sequences admitted.
    pub insertions: u64,
    /// SSM checkpoints admitted in total.
    pub ssm_states_admitted: u64,
    /// Entries (nodes/blocks) evicted.
    pub evictions: u64,
    /// Bytes released by evictions.
    pub bytes_evicted: u64,
    /// High-water mark of cache usage.
    pub peak_usage_bytes: u64,
}

impl CacheStats {
    /// Token hit rate in `[0, 1]`: hit tokens over input tokens.
    #[must_use]
    pub fn token_hit_rate(&self) -> f64 {
        if self.input_tokens == 0 {
            return 0.0;
        }
        self.hit_tokens as f64 / self.input_tokens as f64
    }

    /// Request hit rate in `[0, 1]`: fraction of lookups with any reuse.
    #[must_use]
    pub fn request_hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / self.lookups as f64
    }

    /// Adds another replica's counters into this one — the cluster-level
    /// aggregation. `peak_usage_bytes` is summed: replicas peak at
    /// different times, so the sum *bounds* (rather than equals) the true
    /// simultaneous peak.
    pub fn accumulate(&mut self, other: &CacheStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.input_tokens += other.input_tokens;
        self.hit_tokens += other.hit_tokens;
        self.flops_saved += other.flops_saved;
        self.insertions += other.insertions;
        self.ssm_states_admitted += other.ssm_states_admitted;
        self.evictions += other.evictions;
        self.bytes_evicted += other.bytes_evicted;
        self.peak_usage_bytes += other.peak_usage_bytes;
    }

    /// Difference of this snapshot against an earlier one; used by the α
    /// tuner to score a replay window.
    #[must_use]
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            lookups: self.lookups - earlier.lookups,
            hits: self.hits - earlier.hits,
            input_tokens: self.input_tokens - earlier.input_tokens,
            hit_tokens: self.hit_tokens - earlier.hit_tokens,
            flops_saved: self.flops_saved - earlier.flops_saved,
            insertions: self.insertions - earlier.insertions,
            ssm_states_admitted: self.ssm_states_admitted - earlier.ssm_states_admitted,
            evictions: self.evictions - earlier.evictions,
            bytes_evicted: self.bytes_evicted - earlier.bytes_evicted,
            peak_usage_bytes: self.peak_usage_bytes,
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "token hit rate {:.1}% ({} / {} tokens, {} lookups, {} evictions)",
            self.token_hit_rate() * 100.0,
            self.hit_tokens,
            self.input_tokens,
            self.lookups,
            self.evictions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_empty() {
        let s = CacheStats::default();
        assert_eq!(s.token_hit_rate(), 0.0);
        assert_eq!(s.request_hit_rate(), 0.0);
    }

    #[test]
    fn token_hit_rate_ratio() {
        let s = CacheStats {
            input_tokens: 200,
            hit_tokens: 50,
            ..CacheStats::default()
        };
        assert!((s.token_hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn delta_subtracts_counters() {
        let early = CacheStats {
            lookups: 10,
            input_tokens: 100,
            hit_tokens: 10,
            ..CacheStats::default()
        };
        let late = CacheStats {
            lookups: 25,
            input_tokens: 300,
            hit_tokens: 110,
            ..CacheStats::default()
        };
        let d = late.delta_since(&early);
        assert_eq!(d.lookups, 15);
        assert_eq!(d.input_tokens, 200);
        assert!((d.token_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accumulate_sums_counters() {
        let mut total = CacheStats::default();
        let a = CacheStats {
            lookups: 3,
            input_tokens: 100,
            hit_tokens: 40,
            peak_usage_bytes: 7,
            ..CacheStats::default()
        };
        let b = CacheStats {
            lookups: 2,
            input_tokens: 50,
            hit_tokens: 10,
            peak_usage_bytes: 5,
            ..CacheStats::default()
        };
        total.accumulate(&a);
        total.accumulate(&b);
        assert_eq!(total.lookups, 5);
        assert_eq!(total.input_tokens, 150);
        assert_eq!(total.hit_tokens, 50);
        assert_eq!(total.peak_usage_bytes, 12);
    }

    #[test]
    fn display_shows_percentage() {
        let s = CacheStats {
            input_tokens: 100,
            hit_tokens: 42,
            ..CacheStats::default()
        };
        assert!(s.to_string().contains("42.0%"));
    }
}
