//! Cumulative cache statistics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Cumulative counters reported by every [`PrefixCache`](crate::PrefixCache).
///
/// The headline metric is [`token_hit_rate`](CacheStats::token_hit_rate) —
/// the paper's primary figure of merit, "the ratio of the number of tokens
/// that skipped prefill over the total number of input tokens".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served.
    pub lookups: u64,
    /// Lookups that reused a non-empty prefix.
    pub hits: u64,
    /// Hits whose reused prefix touched host-resident (demoted) state and
    /// therefore required a transfer or recompute. Always 0 for a
    /// single-tier (`host_capacity = 0`) cache.
    pub host_hits: u64,
    /// Total input tokens across all lookups.
    pub input_tokens: u64,
    /// Total tokens served from cache (prefill skipped). Includes
    /// [`host_hit_tokens`](CacheStats::host_hit_tokens); the device-tier
    /// share is the difference.
    pub hit_tokens: u64,
    /// Tokens of hits whose state was host-resident at lookup time.
    pub host_hit_tokens: u64,
    /// Total prefill FLOPs saved by hits.
    pub flops_saved: u128,
    /// Sequences admitted.
    pub insertions: u64,
    /// SSM checkpoints admitted in total.
    pub ssm_states_admitted: u64,
    /// Entries (nodes/blocks) deleted outright — from the device tier when
    /// no host tier exists, or from the host tier under host pressure.
    pub evictions: u64,
    /// Bytes released by deletions.
    pub bytes_evicted: u64,
    /// Entries demoted from device HBM to host DRAM instead of deleted
    /// (device-pressure episodes of a tiered cache).
    pub demotions: u64,
    /// Bytes moved device → host by demotions.
    pub bytes_demoted: u64,
    /// The subset of [`evictions`](CacheStats::evictions) deleted from the
    /// host tier (host-pressure episodes).
    pub host_evictions: u64,
    /// Bytes deleted from the host tier.
    pub bytes_host_evicted: u64,
    /// High-water mark of device-tier cache usage.
    pub peak_usage_bytes: u64,
}

impl CacheStats {
    /// Token hit rate in `[0, 1]`: hit tokens over input tokens.
    #[must_use]
    pub fn token_hit_rate(&self) -> f64 {
        if self.input_tokens == 0 {
            return 0.0;
        }
        self.hit_tokens as f64 / self.input_tokens as f64
    }

    /// Request hit rate in `[0, 1]`: fraction of lookups with any reuse.
    #[must_use]
    pub fn request_hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / self.lookups as f64
    }

    /// Adds another replica's counters into this one — the cluster-level
    /// aggregation. `peak_usage_bytes` is summed: replicas peak at
    /// different times, so the sum *bounds* (rather than equals) the true
    /// simultaneous peak.
    pub fn accumulate(&mut self, other: &CacheStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.host_hits += other.host_hits;
        self.input_tokens += other.input_tokens;
        self.hit_tokens += other.hit_tokens;
        self.host_hit_tokens += other.host_hit_tokens;
        self.flops_saved += other.flops_saved;
        self.insertions += other.insertions;
        self.ssm_states_admitted += other.ssm_states_admitted;
        self.evictions += other.evictions;
        self.bytes_evicted += other.bytes_evicted;
        self.demotions += other.demotions;
        self.bytes_demoted += other.bytes_demoted;
        self.host_evictions += other.host_evictions;
        self.bytes_host_evicted += other.bytes_host_evicted;
        self.peak_usage_bytes += other.peak_usage_bytes;
    }

    /// Difference of this snapshot against an earlier one; used by the α
    /// tuner to score a replay window.
    #[must_use]
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            lookups: self.lookups - earlier.lookups,
            hits: self.hits - earlier.hits,
            host_hits: self.host_hits - earlier.host_hits,
            input_tokens: self.input_tokens - earlier.input_tokens,
            hit_tokens: self.hit_tokens - earlier.hit_tokens,
            host_hit_tokens: self.host_hit_tokens - earlier.host_hit_tokens,
            flops_saved: self.flops_saved - earlier.flops_saved,
            insertions: self.insertions - earlier.insertions,
            ssm_states_admitted: self.ssm_states_admitted - earlier.ssm_states_admitted,
            evictions: self.evictions - earlier.evictions,
            bytes_evicted: self.bytes_evicted - earlier.bytes_evicted,
            demotions: self.demotions - earlier.demotions,
            bytes_demoted: self.bytes_demoted - earlier.bytes_demoted,
            host_evictions: self.host_evictions - earlier.host_evictions,
            bytes_host_evicted: self.bytes_host_evicted - earlier.bytes_host_evicted,
            peak_usage_bytes: self.peak_usage_bytes,
        }
    }

    /// Tokens of hits served straight from device HBM (no transfer).
    #[must_use]
    pub fn device_hit_tokens(&self) -> u64 {
        self.hit_tokens - self.host_hit_tokens
    }

    /// Fraction of hit tokens that were host-resident, in `[0, 1]`
    /// (0.0 when there were no hit tokens).
    #[must_use]
    pub fn host_hit_fraction(&self) -> f64 {
        if self.hit_tokens == 0 {
            return 0.0;
        }
        self.host_hit_tokens as f64 / self.hit_tokens as f64
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "token hit rate {:.1}% ({} / {} tokens, {} lookups, {} evictions)",
            self.token_hit_rate() * 100.0,
            self.hit_tokens,
            self.input_tokens,
            self.lookups,
            self.evictions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_empty() {
        let s = CacheStats::default();
        assert_eq!(s.token_hit_rate(), 0.0);
        assert_eq!(s.request_hit_rate(), 0.0);
    }

    #[test]
    fn token_hit_rate_ratio() {
        let s = CacheStats {
            input_tokens: 200,
            hit_tokens: 50,
            ..CacheStats::default()
        };
        assert!((s.token_hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn delta_subtracts_counters() {
        let early = CacheStats {
            lookups: 10,
            input_tokens: 100,
            hit_tokens: 10,
            ..CacheStats::default()
        };
        let late = CacheStats {
            lookups: 25,
            input_tokens: 300,
            hit_tokens: 110,
            ..CacheStats::default()
        };
        let d = late.delta_since(&early);
        assert_eq!(d.lookups, 15);
        assert_eq!(d.input_tokens, 200);
        assert!((d.token_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accumulate_sums_counters() {
        let mut total = CacheStats::default();
        let a = CacheStats {
            lookups: 3,
            input_tokens: 100,
            hit_tokens: 40,
            peak_usage_bytes: 7,
            ..CacheStats::default()
        };
        let b = CacheStats {
            lookups: 2,
            input_tokens: 50,
            hit_tokens: 10,
            peak_usage_bytes: 5,
            ..CacheStats::default()
        };
        total.accumulate(&a);
        total.accumulate(&b);
        assert_eq!(total.lookups, 5);
        assert_eq!(total.input_tokens, 150);
        assert_eq!(total.hit_tokens, 50);
        assert_eq!(total.peak_usage_bytes, 12);
    }

    #[test]
    fn tier_split_helpers() {
        let s = CacheStats {
            hit_tokens: 100,
            host_hit_tokens: 25,
            ..CacheStats::default()
        };
        assert_eq!(s.device_hit_tokens(), 75);
        assert!((s.host_hit_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().host_hit_fraction(), 0.0);
    }

    #[test]
    fn accumulate_and_delta_cover_tier_counters() {
        let a = CacheStats {
            host_hits: 2,
            host_hit_tokens: 40,
            demotions: 3,
            bytes_demoted: 300,
            host_evictions: 1,
            bytes_host_evicted: 90,
            ..CacheStats::default()
        };
        let mut total = CacheStats::default();
        total.accumulate(&a);
        total.accumulate(&a);
        assert_eq!(total.demotions, 6);
        assert_eq!(total.bytes_host_evicted, 180);
        let d = total.delta_since(&a);
        assert_eq!(d.host_hits, 2);
        assert_eq!(d.host_hit_tokens, 40);
        assert_eq!(d.bytes_demoted, 300);
        assert_eq!(d.host_evictions, 1);
    }

    #[test]
    fn display_shows_percentage() {
        let s = CacheStats {
            input_tokens: 100,
            hit_tokens: 42,
            ..CacheStats::default()
        };
        assert!(s.to_string().contains("42.0%"));
    }
}
