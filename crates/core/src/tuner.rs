//! Online α tuning: bootstrap snapshot + parallel grid-search replay
//! (paper §4.2, "Managing the balance").

use serde::{Deserialize, Serialize};

/// Configuration of Marconi's online α tuner.
///
/// The paper's procedure: run with `α = 0` (LRU) until the first eviction;
/// snapshot the radix tree; keep serving with LRU while recording
/// token-level request information for a bootstrap window of 5–15× the
/// requests seen before the first eviction; then grid-search α by replaying
/// the window against the snapshot (parallelized across cores) and adopt
/// the hit-rate-maximizing value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunerConfig {
    /// Bootstrap window length as a multiple of the requests seen before
    /// the first eviction. The paper uses 5–15; default 10.
    pub bootstrap_multiplier: f64,
    /// α values to grid-search. Must be non-empty; 0 (pure LRU) is worth
    /// including so tuning can conclude recency alone is best.
    pub alpha_grid: Vec<f64>,
    /// Run the grid search on one thread per α (the paper parallelizes
    /// across CPU cores). Disable for single-threaded determinism checks.
    pub parallel: bool,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            bootstrap_multiplier: 10.0,
            alpha_grid: vec![0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0],
            parallel: true,
        }
    }
}

impl TunerConfig {
    /// Bootstrap window length for a given pre-eviction request count.
    #[must_use]
    pub(crate) fn window_len(&self, requests_before_first_eviction: u64) -> u64 {
        let w = (requests_before_first_eviction as f64 * self.bootstrap_multiplier).ceil() as u64;
        w.max(1)
    }
}

/// Read-only view of the tuner's lifecycle, exposed for diagnostics and
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TunerState {
    /// Serving with LRU; no eviction has happened yet.
    WaitingForFirstEviction,
    /// Snapshot taken; recording the bootstrap window (still serving LRU).
    Bootstrapping {
        /// Requests recorded so far.
        recorded: u64,
        /// Window length that triggers the grid search.
        target: u64,
    },
    /// Grid search finished; serving with the chosen α.
    Tuned {
        /// The adopted balance parameter.
        alpha: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_contains_lru() {
        let c = TunerConfig::default();
        assert!(c.alpha_grid.contains(&0.0));
        assert!(c.bootstrap_multiplier >= 5.0 && c.bootstrap_multiplier <= 15.0);
    }

    #[test]
    fn window_len_scales_and_floors() {
        let c = TunerConfig::default();
        assert_eq!(c.window_len(0), 1);
        assert_eq!(c.window_len(7), 70);
    }
}
