//! The no-caching baseline ("vanilla inference").

use crate::result::{AdmissionReport, LookupResult};
use crate::stats::CacheStats;
use crate::PrefixCache;
use marconi_model::ModelConfig;
use marconi_radix::Token;

/// A cache that never caches: every lookup misses, every admission is a
/// no-op. The paper's "vanilla inference" baseline and the denominator for
/// all relative-TTFT plots (Fig. 9).
///
/// # Examples
///
/// ```
/// use marconi_core::{PrefixCache, VanillaCache};
/// use marconi_model::ModelConfig;
///
/// let mut vanilla = VanillaCache::new(ModelConfig::hybrid_7b());
/// vanilla.insert_at(&[1, 2, 3], &[4], 0.0);
/// assert_eq!(vanilla.lookup_at(&[1, 2, 3], 1.0).tokens_matched, 0);
/// assert_eq!(vanilla.usage_bytes(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct VanillaCache {
    model: ModelConfig,
    stats: CacheStats,
}

impl VanillaCache {
    /// Creates the baseline for `model`.
    #[must_use]
    pub fn new(model: ModelConfig) -> Self {
        VanillaCache {
            model,
            stats: CacheStats::default(),
        }
    }
}

impl PrefixCache for VanillaCache {
    fn name(&self) -> &str {
        "vanilla"
    }

    fn model(&self) -> &ModelConfig {
        &self.model
    }

    fn lookup_at(&mut self, input: &[Token], _now: f64) -> LookupResult {
        self.stats.lookups += 1;
        self.stats.input_tokens += input.len() as u64;
        LookupResult::MISS
    }

    fn longest_cached_prefix_len(&self, _input: &[Token]) -> u64 {
        0
    }

    fn insert_at(&mut self, _input: &[Token], _output: &[Token], _now: f64) -> AdmissionReport {
        self.stats.insertions += 1;
        AdmissionReport::default()
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn usage_bytes(&self) -> u64 {
        0
    }

    fn capacity_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_hits() {
        let mut v = VanillaCache::new(ModelConfig::hybrid_7b());
        for i in 0..10u32 {
            v.insert_at(&[i, i + 1, i + 2], &[i + 3], f64::from(i));
            let r = v.lookup_at(&[i, i + 1, i + 2], f64::from(i));
            assert!(!r.is_hit());
        }
        assert_eq!(v.stats().token_hit_rate(), 0.0);
        assert_eq!(v.stats().lookups, 10);
    }

    #[test]
    fn probe_always_reports_nothing_cached() {
        let mut v = VanillaCache::new(ModelConfig::hybrid_7b());
        v.insert_at(&[1, 2, 3], &[4], 0.0);
        assert_eq!(v.longest_cached_prefix_len(&[1, 2, 3]), 0);
    }
}
