//! Sharded concurrent front-end over [`HybridPrefixCache`].
//!
//! The single-threaded cache is deliberately `&mut`-everywhere; a serving
//! stack, however, probes from router threads while executor threads admit
//! and complete requests. This module wraps N independent cache shards
//! behind [`RwLock`]s:
//!
//! * the **non-mutating probes** routers already rely on
//!   ([`longest_cached_prefix_len`](ShardedCache::longest_cached_prefix_len),
//!   [`probe_tiers`](ShardedCache::probe_tiers)) take shard *read* locks,
//!   so any number of router threads probe concurrently;
//! * the **mutating path** (lookup, insertion, pin/unpin) takes the owning
//!   shard's *write* lock — writes to different shards proceed in
//!   parallel, writes to the same shard serialize.
//!
//! Sharding is by the input's first token (a request's system prompt /
//! session root), so every prefix of a sequence routes to the same shard
//! and prefix reuse is never split across trees. With one shard the
//! front-end is a plain mutex around the single-threaded cache and
//! reproduces it byte-for-byte (pinned by tests); with more shards each
//! shard is its own independent cache — same trade as the cluster layer's
//! replicas, but sharing one process.
//!
//! [`ShardedCacheHandle`] adapts a shared [`ShardedCache`] back to the
//! [`PrefixCache`] trait (which wants `&mut self` and `&CacheStats`
//! borrows), so the existing sim layers can drive the concurrent front-end
//! unchanged.

use crate::cursor::SessionCursor;
use crate::hybrid::{HybridPrefixCache, HybridPrefixCacheBuilder};
use crate::result::{AdmissionReport, LookupResult};
use crate::stats::CacheStats;
use crate::tier::{ReloadPolicy, TieredPrefix};
use crate::{PinTicket, PrefixCache};
use marconi_model::ModelConfig;
use marconi_radix::Token;
use std::sync::{Arc, RwLock};

/// SplitMix64 finalizer — the same stateless mix the cluster layer's
/// session-affinity router uses, so shard placement is deterministic and
/// well spread for consecutive token ids.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A `Send + Sync` prefix cache: N [`HybridPrefixCache`] shards behind
/// per-shard [`RwLock`]s. See `docs/concurrency.md` for the locking
/// discipline.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<RwLock<HybridPrefixCache>>,
    name: String,
    model: ModelConfig,
    reload_policy: ReloadPolicy,
}

impl ShardedCache {
    /// Builds `shards` identical caches from the builder (each shard gets
    /// the builder's full configuration — callers wanting a fixed total
    /// byte budget should divide `capacity_bytes` by `shards` first, as
    /// the cluster layer does for replicas).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn new(builder: HybridPrefixCacheBuilder, shards: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        let first = builder.clone().build();
        let name = first.name().to_owned();
        let model = first.model().clone();
        let reload_policy = first.reload_policy();
        let mut pool = Vec::with_capacity(shards);
        pool.push(RwLock::new(first));
        for _ in 1..shards {
            pool.push(RwLock::new(builder.clone().build()));
        }
        ShardedCache {
            shards: pool,
            name,
            model,
            reload_policy,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard an input routes to: a SplitMix64 hash of the first token,
    /// so a sequence and all of its prefixes land on the same shard and a
    /// stored prefix is always found by the requests that can reuse it.
    /// Deterministic — replays shard identically.
    #[must_use]
    pub fn shard_of(&self, input: &[Token]) -> usize {
        let (Some(&first), 2..) = (input.first(), self.shards.len()) else {
            return 0;
        };
        (splitmix64(u64::from(first)) % self.shards.len() as u64) as usize
    }

    fn shard(&self, idx: usize) -> &RwLock<HybridPrefixCache> {
        &self.shards[idx]
    }

    /// Translates a caller's session hint into the owning shard's frame.
    ///
    /// Session cursors are shard-local by construction: the inner
    /// (unsharded) caches mint and honor shard-0 handles only, and this
    /// front-end re-stamps outbound cursors with the minting shard's
    /// index. A hint whose stamp does not match the shard the input routes
    /// to is re-stamped with a nonzero sentinel, which the inner cache
    /// classifies as a cross-shard rejection — root walk plus a
    /// `CursorFallback` event — rather than ever resuming in a foreign
    /// tree.
    fn local_hint(idx: usize, hint: Option<SessionCursor>) -> Option<SessionCursor> {
        hint.map(|h| SessionCursor {
            cursor: h.cursor,
            shard: if h.shard == idx { 0 } else { usize::MAX },
        })
    }

    /// [`PrefixCache::lookup_at`] on the owning shard (write lock: hits
    /// refresh recency and stats).
    pub fn lookup_at(&self, input: &[Token], now: f64) -> LookupResult {
        self.lookup_at_with(input, now, None)
    }

    /// [`PrefixCache::lookup_at_with`] on the owning shard (write lock).
    pub fn lookup_at_with(
        &self,
        input: &[Token],
        now: f64,
        hint: Option<SessionCursor>,
    ) -> LookupResult {
        let idx = self.shard_of(input);
        self.shard(idx)
            .write()
            .expect("lock: shard RwLock poisoned by a panicking holder")
            .lookup_at_with(input, now, Self::local_hint(idx, hint))
    }

    /// [`PrefixCache::insert_at`] on the owning shard (write lock).
    pub fn insert_at(&self, input: &[Token], output: &[Token], now: f64) -> AdmissionReport {
        self.insert_at_with(input, output, now, None).0
    }

    /// [`PrefixCache::insert_at_with`] on the owning shard (write lock);
    /// the returned resume cursor is stamped with the owning shard so a
    /// later turn routed elsewhere is rejected instead of mis-resumed.
    pub fn insert_at_with(
        &self,
        input: &[Token],
        output: &[Token],
        now: f64,
        hint: Option<SessionCursor>,
    ) -> (AdmissionReport, Option<SessionCursor>) {
        let idx = self.shard_of(input);
        let (report, next) = self
            .shard(idx)
            .write()
            .expect("lock: shard RwLock poisoned by a panicking holder")
            .insert_at_with(input, output, now, Self::local_hint(idx, hint));
        (
            report,
            next.map(|mut c| {
                c.shard = idx;
                c
            }),
        )
    }

    /// [`PrefixCache::longest_cached_prefix_len`] on the owning shard.
    /// Read lock: the probe is non-mutating, so router threads run it
    /// concurrently with each other.
    #[must_use]
    pub fn longest_cached_prefix_len(&self, input: &[Token]) -> u64 {
        self.shard(self.shard_of(input))
            .read()
            .expect("lock: shard RwLock poisoned by a panicking holder")
            .longest_cached_prefix_len(input)
    }

    /// [`HybridPrefixCache::probe_tiers`] on the owning shard (read lock;
    /// non-mutating like the length probe).
    #[must_use]
    pub fn probe_tiers(&self, input: &[Token]) -> TieredPrefix {
        self.shard(self.shard_of(input))
            .read()
            .expect("lock: shard RwLock poisoned by a panicking holder")
            .probe_tiers(input)
    }

    /// [`PrefixCache::pin_prefix`] on the owning shard; the ticket
    /// remembers the shard so [`unpin`](ShardedCache::unpin) releases on
    /// the same tree.
    pub fn pin_prefix(&self, input: &[Token]) -> PinTicket {
        self.pin_prefix_with(input, None)
    }

    /// [`PrefixCache::pin_prefix_with`] on the owning shard (write lock).
    pub fn pin_prefix_with(&self, input: &[Token], hint: Option<SessionCursor>) -> PinTicket {
        let idx = self.shard_of(input);
        let mut ticket = self
            .shard(idx)
            .write()
            .expect("lock: shard RwLock poisoned by a panicking holder")
            .pin_prefix_with(input, Self::local_hint(idx, hint));
        ticket.shard = idx;
        ticket
    }

    /// Releases a pin issued by [`pin_prefix`](ShardedCache::pin_prefix).
    pub fn unpin(&self, ticket: PinTicket) {
        let idx = ticket.shard;
        self.shard(idx)
            .write()
            .expect("lock: shard RwLock poisoned by a panicking holder")
            .unpin(ticket);
    }

    /// Bytes protected by in-flight pins, summed over shards.
    #[must_use]
    pub fn pinned_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("lock: shard RwLock poisoned by a panicking holder")
                    .pinned_bytes()
            })
            .sum()
    }

    /// Aggregate statistics over all shards
    /// ([`CacheStats::accumulate`] semantics, like cluster aggregation).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            total.accumulate(
                s.read()
                    .expect("lock: shard RwLock poisoned by a panicking holder")
                    .stats(),
            );
        }
        total
    }

    /// Device-resident bytes, summed over shards.
    #[must_use]
    pub fn usage_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("lock: shard RwLock poisoned by a panicking holder")
                    .usage_bytes()
            })
            .sum()
    }

    /// Configured device capacity, summed over shards.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("lock: shard RwLock poisoned by a panicking holder")
                    .capacity_bytes()
            })
            .sum()
    }

    /// Attaches `tracer` to every shard (each shard emits with its own
    /// decisions; clones share the one sink, so cross-shard events
    /// interleave in sink-arrival order).
    ///
    /// Multi-thread caveat: with more than one shard driven from multiple
    /// threads, the *relative* order of events from different shards is
    /// scheduling-dependent — only per-shard order (and everything with a
    /// single driving thread, which is what the sims do) replays
    /// byte-identically.
    pub fn set_tracer(&self, tracer: marconi_trace::Tracer) {
        for s in &self.shards {
            s.write()
                .expect("lock: shard RwLock poisoned by a panicking holder")
                .set_tracer(tracer.clone());
        }
    }

    /// Runs `f` against one shard's cache under its read lock (diagnostic
    /// and test access to per-shard state).
    pub fn with_shard<R>(&self, idx: usize, f: impl FnOnce(&HybridPrefixCache) -> R) -> R {
        f(&self
            .shard(idx)
            .read()
            .expect("lock: shard RwLock poisoned by a panicking holder"))
    }

    /// Wraps the cache in a cloneable, [`PrefixCache`]-implementing handle.
    pub fn into_handle(self) -> ShardedCacheHandle {
        ShardedCacheHandle {
            inner: Arc::new(self),
            stats: CacheStats::default(),
        }
    }
}

/// Cloneable handle adapting a shared [`ShardedCache`] to the
/// [`PrefixCache`] trait, so the sim layers (whose generic bounds want
/// `&mut self` methods and a `&CacheStats` borrow) can drive the
/// concurrent front-end unchanged. Each clone talks to the same shards;
/// `stats()` serves a per-handle aggregate snapshot refreshed by the
/// handle's own mutating calls.
#[derive(Debug, Clone)]
#[must_use = "a handle does nothing unless driven through PrefixCache"]
pub struct ShardedCacheHandle {
    inner: Arc<ShardedCache>,
    /// Cached aggregate, because the trait returns `&CacheStats`.
    stats: CacheStats,
}

impl ShardedCacheHandle {
    /// The shared cache behind this handle (clone the `Arc` to hand other
    /// threads their own view, or probe without going through the trait).
    #[must_use]
    pub fn shared(&self) -> &Arc<ShardedCache> {
        &self.inner
    }

    fn refresh_stats(&mut self) {
        self.stats = self.inner.stats();
    }
}

impl PrefixCache for ShardedCacheHandle {
    fn name(&self) -> &str {
        &self.inner.name
    }

    fn model(&self) -> &ModelConfig {
        &self.inner.model
    }

    fn lookup_at(&mut self, input: &[Token], now: f64) -> LookupResult {
        self.lookup_at_with(input, now, None)
    }

    fn lookup_at_with(
        &mut self,
        input: &[Token],
        now: f64,
        hint: Option<SessionCursor>,
    ) -> LookupResult {
        let r = self.inner.lookup_at_with(input, now, hint);
        self.refresh_stats();
        r
    }

    fn longest_cached_prefix_len(&self, input: &[Token]) -> u64 {
        self.inner.longest_cached_prefix_len(input)
    }

    fn insert_at(&mut self, input: &[Token], output: &[Token], now: f64) -> AdmissionReport {
        self.insert_at_with(input, output, now, None).0
    }

    fn insert_at_with(
        &mut self,
        input: &[Token],
        output: &[Token],
        now: f64,
        hint: Option<SessionCursor>,
    ) -> (AdmissionReport, Option<SessionCursor>) {
        let r = self.inner.insert_at_with(input, output, now, hint);
        self.refresh_stats();
        r
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn usage_bytes(&self) -> u64 {
        self.inner.usage_bytes()
    }

    fn capacity_bytes(&self) -> u64 {
        self.inner.capacity_bytes()
    }

    fn reload_policy(&self) -> ReloadPolicy {
        self.inner.reload_policy
    }

    fn pin_prefix(&mut self, input: &[Token]) -> PinTicket {
        self.inner.pin_prefix(input)
    }

    fn pin_prefix_with(&mut self, input: &[Token], hint: Option<SessionCursor>) -> PinTicket {
        self.inner.pin_prefix_with(input, hint)
    }

    fn unpin(&mut self, ticket: PinTicket) {
        self.inner.unpin(ticket)
    }

    fn pinned_bytes(&self) -> u64 {
        self.inner.pinned_bytes()
    }
}

/// The whole point of the front-end: it crosses threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedCache>();
    assert_send_sync::<ShardedCacheHandle>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EvictionPolicy;
    use marconi_workload::{DatasetKind, TraceGenerator};

    fn seeded_trace(seed: u64) -> marconi_workload::Trace {
        TraceGenerator::new(DatasetKind::Lmsys)
            .sessions(12)
            .seed(seed)
            .generate()
    }

    fn builder(capacity: u64) -> HybridPrefixCacheBuilder {
        HybridPrefixCache::builder(marconi_model::ModelConfig::hybrid_7b())
            .capacity_bytes(capacity)
            .policy(EvictionPolicy::FlopAware { alpha: 2.0 })
    }

    fn contended_capacity() -> u64 {
        9000 * marconi_model::ModelConfig::hybrid_7b().kv_bytes_per_token()
    }

    #[test]
    fn one_shard_reproduces_the_single_threaded_cache_byte_for_byte() {
        let capacity = contended_capacity();
        for seed in [7u64, 11, 13] {
            let trace = seeded_trace(seed);
            let mut plain = builder(capacity).build();
            let sharded = ShardedCache::new(builder(capacity), 1);
            for req in &trace.requests {
                let a = plain.lookup_at(&req.input, req.arrival);
                let b = sharded.lookup_at(&req.input, req.arrival);
                assert_eq!(a, b, "lookup diverged (seed {seed})");
                let a = plain.insert_at(&req.input, &req.output, req.arrival);
                let b = sharded.insert_at(&req.input, &req.output, req.arrival);
                assert_eq!(a, b, "admission diverged (seed {seed})");
            }
            assert_eq!(*plain.stats(), sharded.stats(), "stats diverged");
            assert_eq!(plain.usage_bytes(), sharded.usage_bytes());
        }
    }

    #[test]
    fn handle_drives_the_same_state_through_the_trait() {
        let capacity = contended_capacity();
        let trace = seeded_trace(17);
        let mut plain = builder(capacity).build();
        let mut handle = ShardedCache::new(builder(capacity), 1).into_handle();
        for req in &trace.requests {
            plain.lookup_at(&req.input, req.arrival);
            handle.lookup_at(&req.input, req.arrival);
            plain.insert_at(&req.input, &req.output, req.arrival);
            handle.insert_at(&req.input, &req.output, req.arrival);
        }
        assert_eq!(plain.stats(), handle.stats());
        assert_eq!(
            plain.longest_cached_prefix_len(&trace.requests[0].input),
            handle.longest_cached_prefix_len(&trace.requests[0].input)
        );
    }

    #[test]
    fn sharding_is_deterministic_and_prefix_stable() {
        let c = ShardedCache::new(builder(1 << 30), 4);
        let seq: Vec<Token> = (100..200).collect();
        let shard = c.shard_of(&seq);
        for cut in 1..seq.len() {
            assert_eq!(
                c.shard_of(&seq[..cut]),
                shard,
                "a prefix must land on the sequence's shard"
            );
        }
        assert_eq!(c.shard_of(&[]), 0, "empty input routes to shard 0");
    }

    #[test]
    fn shards_spread_distinct_roots() {
        let c = ShardedCache::new(builder(1 << 30), 8);
        let mut seen = std::collections::BTreeSet::new();
        for root in 0..64u32 {
            seen.insert(c.shard_of(&[root * 1000]));
        }
        assert!(seen.len() > 4, "64 roots should touch most of 8 shards");
    }

    #[test]
    fn pins_route_back_to_the_issuing_shard() {
        let c = ShardedCache::new(builder(1 << 30), 4);
        let a: Vec<Token> = (0..64).collect();
        let b: Vec<Token> = (5000..5064).collect();
        c.insert_at(&a, &[9000], 0.0);
        c.insert_at(&b, &[9001], 0.0);
        // Follow-up turns resume from each session's last-decoded-token SSM
        // checkpoint — the hit node an admission-time pin protects.
        let mut a2 = a.clone();
        a2.extend([9000, 42]);
        let mut b2 = b.clone();
        b2.extend([9001, 43]);
        let ta = c.pin_prefix(&a2);
        let tb = c.pin_prefix(&b2);
        assert!(!ta.is_empty());
        assert!(!tb.is_empty());
        assert!(c.pinned_bytes() > 0);
        c.unpin(ta);
        c.unpin(tb);
        assert_eq!(c.pinned_bytes(), 0);
    }

    /// Satellite: concurrent probe safety. Reader threads hammer the two
    /// non-mutating probes while a writer thread inserts a seeded trace;
    /// afterwards the cache must be byte-identical (stats, usage, probe
    /// answers) to a probe-free single-threaded run of the same trace.
    #[test]
    fn probe_hammer_leaves_the_cache_byte_identical_to_a_probe_free_run() {
        let capacity = contended_capacity();
        let trace = seeded_trace(23);

        // Reference: single-threaded, no probes at all.
        let mut reference = builder(capacity).build();
        for req in &trace.requests {
            reference.lookup_at(&req.input, req.arrival);
            reference.insert_at(&req.input, &req.output, req.arrival);
        }

        let hammered = ShardedCache::new(builder(capacity), 1);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for t in 0..4 {
                let hammered = &hammered;
                let stop = &stop;
                let trace = &trace;
                s.spawn(move || {
                    let mut i = t;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let req = &trace.requests[i % trace.requests.len()];
                        let len = hammered.longest_cached_prefix_len(&req.input);
                        let tiers = hammered.probe_tiers(&req.input);
                        assert_eq!(tiers.tokens, len, "probe contract broken under threads");
                        i += 1;
                    }
                });
            }
            for req in &trace.requests {
                hammered.lookup_at(&req.input, req.arrival);
                hammered.insert_at(&req.input, &req.output, req.arrival);
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });

        assert_eq!(
            *reference.stats(),
            hammered.stats(),
            "reader probes must not perturb stats"
        );
        assert_eq!(reference.usage_bytes(), hammered.usage_bytes());
        for req in &trace.requests {
            assert_eq!(
                reference.longest_cached_prefix_len(&req.input),
                hammered.longest_cached_prefix_len(&req.input),
                "final tree state diverged"
            );
        }
    }
}
