//! Memory tiers and reload policy for the device/host cache hierarchy.
//!
//! Marconi's original design treats eviction as deletion. Real deployments
//! instead *demote* cold KV/SSM state from device HBM to host DRAM and
//! reload it over PCIe when that is cheaper than recomputing it — the
//! "compute or load?" question. These types name the two tiers and the
//! reload decision rule; the tiered storage itself lives in
//! [`HybridPrefixCache`](crate::HybridPrefixCache).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Where a cache entry's bytes physically live.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Device HBM: hits are free of transfer cost.
    #[default]
    Device,
    /// Host DRAM: hits require a PCIe transfer (or a recompute) before the
    /// state is usable on the device.
    Host,
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tier::Device => "device",
            Tier::Host => "host",
        })
    }
}

/// How a host-tier hit is brought back onto the device.
///
/// The serving layer charges latency for the host-resident share of a hit;
/// this knob picks between loading the bytes over PCIe and re-running the
/// prefill FLOPs that produced them. It is a behavioral knob of the cache
/// (mirrored by the tuner's replay replicas, like `checkpoint_mode`), even
/// though the *timing* is applied by the simulator's `GpuModel`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReloadPolicy {
    /// Per request, take whichever of the PCIe transfer and the recompute
    /// is faster (the "compute or load? why not both" rule). Default.
    #[default]
    ComputeOrLoad,
    /// Always transfer host-resident bytes over PCIe.
    AlwaysReload,
    /// Always recompute the host-resident spans on the device; the host
    /// tier then only serves to preserve *hit accounting* (the bandwidth-
    /// free baseline the compute-or-load rule is measured against).
    AlwaysRecompute,
}

impl fmt::Display for ReloadPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReloadPolicy::ComputeOrLoad => "compute-or-load",
            ReloadPolicy::AlwaysReload => "always-reload",
            ReloadPolicy::AlwaysRecompute => "always-recompute",
        })
    }
}

/// Tier-split result of a non-mutating prefix probe: how much of the
/// longest reusable cached prefix is resident on each tier.
///
/// Returned by `HybridPrefixCache::probe_tiers`; cluster routers use it to
/// weigh a host-resident hit below an equally deep device-resident one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TieredPrefix {
    /// Total reusable prefix length in tokens (equals
    /// [`longest_cached_prefix_len`](crate::PrefixCache::longest_cached_prefix_len)).
    pub tokens: u64,
    /// Tokens of that prefix whose state is host-resident (requires a
    /// transfer or recompute before serving).
    pub host_tokens: u64,
}

impl TieredPrefix {
    /// Tokens servable straight from device HBM.
    #[must_use]
    pub fn device_tokens(&self) -> u64 {
        self.tokens - self.host_tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_single_tier_compatible() {
        assert_eq!(Tier::default(), Tier::Device);
        assert_eq!(ReloadPolicy::default(), ReloadPolicy::ComputeOrLoad);
        let p = TieredPrefix::default();
        assert_eq!(p.device_tokens(), 0);
    }

    #[test]
    fn device_tokens_subtracts_host_share() {
        let p = TieredPrefix {
            tokens: 100,
            host_tokens: 30,
        };
        assert_eq!(p.device_tokens(), 70);
    }

    #[test]
    fn display_names() {
        assert_eq!(Tier::Device.to_string(), "device");
        assert_eq!(Tier::Host.to_string(), "host");
        assert_eq!(ReloadPolicy::ComputeOrLoad.to_string(), "compute-or-load");
        assert_eq!(ReloadPolicy::AlwaysReload.to_string(), "always-reload");
        assert_eq!(
            ReloadPolicy::AlwaysRecompute.to_string(),
            "always-recompute"
        );
    }
}
