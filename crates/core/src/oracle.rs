//! Offline-optimal static-α oracle (the artifact's eviction policy "V3").
//!
//! Sweeps α over a grid by replaying an *entire* recorded trace per value
//! and reports the hit-rate-maximizing choice — an upper bound for any
//! static-α configuration that Marconi's online tuner tries to approach
//! with only a bootstrap window of information.

use crate::policy::EvictionPolicy;
use crate::{CacheStats, HybridPrefixCache, PrefixCache};
use marconi_model::ModelConfig;
use marconi_radix::Token;
use serde::{Deserialize, Serialize};

/// One request of a recorded trace: what was prefilled, what was decoded,
/// and when.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequenceEvent {
    /// Prefill tokens.
    pub input: Vec<Token>,
    /// Decoded tokens.
    pub output: Vec<Token>,
    /// Arrival time in seconds.
    pub at: f64,
}

/// Result of an offline α sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleOutcome {
    /// The hit-rate-maximizing α.
    pub best_alpha: f64,
    /// Token hit rate achieved by `best_alpha`.
    pub best_hit_rate: f64,
    /// `(α, token hit rate)` for every grid point, in grid order.
    pub sweep: Vec<(f64, f64)>,
}

/// Replays `events` through a fresh fixed-α cache and returns its stats.
#[must_use]
pub fn replay_with_alpha(
    model: &ModelConfig,
    capacity_bytes: u64,
    events: &[SequenceEvent],
    alpha: f64,
) -> CacheStats {
    let mut cache = HybridPrefixCache::builder(model.clone())
        .capacity_bytes(capacity_bytes)
        .policy(EvictionPolicy::FlopAware { alpha })
        .build();
    for e in events {
        cache.lookup_at(&e.input, e.at);
        cache.insert_at(&e.input, &e.output, e.at);
    }
    *cache.stats()
}

/// Sweeps the α grid over the full trace (optionally one thread per α) and
/// returns the best static configuration.
///
/// Ties break toward the smaller α, like the online tuner.
///
/// # Panics
///
/// Panics if `grid` is empty.
#[must_use]
pub fn best_static_alpha(
    model: &ModelConfig,
    capacity_bytes: u64,
    events: &[SequenceEvent],
    grid: &[f64],
    parallel: bool,
) -> OracleOutcome {
    assert!(!grid.is_empty(), "alpha grid must be non-empty");
    let eval = |alpha: f64| {
        (
            alpha,
            replay_with_alpha(model, capacity_bytes, events, alpha).token_hit_rate(),
        )
    };
    let sweep: Vec<(f64, f64)> = if parallel {
        std::thread::scope(|s| {
            let handles: Vec<_> = grid.iter().map(|&a| s.spawn(move || eval(a))).collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .expect("invariant: oracle replay threads do not panic")
                })
                .collect()
        })
    } else {
        grid.iter().map(|&a| eval(a)).collect()
    };
    let &(best_alpha, best_hit_rate) = sweep
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.total_cmp(&a.0)))
        .expect("invariant: the α grid is non-empty");
    OracleOutcome {
        best_alpha,
        best_hit_rate,
        sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(range: std::ops::Range<u32>) -> Vec<Token> {
        range.collect()
    }

    fn toy_trace() -> Vec<SequenceEvent> {
        // A long recurring conversation interleaved with one-shot short
        // requests: FLOP-aware eviction should protect the long prefix.
        let mut events = Vec::new();
        let mut history = seq(0..2048);
        for i in 0..30u32 {
            events.push(SequenceEvent {
                input: history.clone(),
                output: seq(500_000 + i * 100..500_000 + i * 100 + 32),
                at: f64::from(i) * 2.0,
            });
            history.extend(seq(500_000 + i * 100..500_000 + i * 100 + 32));
            events.push(SequenceEvent {
                input: seq(100_000 * (i + 1)..100_000 * (i + 1) + 128),
                output: seq(900_000 + i * 10..900_000 + i * 10 + 8),
                at: f64::from(i) * 2.0 + 1.0,
            });
        }
        events
    }

    fn small_capacity() -> u64 {
        let m = ModelConfig::hybrid_7b();
        3000 * m.kv_bytes_per_token() + 6 * m.ssm_checkpoint_bytes()
    }

    #[test]
    fn oracle_never_underperforms_lru_on_the_grid() {
        let m = ModelConfig::hybrid_7b();
        let outcome =
            best_static_alpha(&m, small_capacity(), &toy_trace(), &[0.0, 1.0, 4.0], false);
        let lru = outcome.sweep[0].1;
        assert_eq!(outcome.sweep[0].0, 0.0);
        assert!(outcome.best_hit_rate >= lru);
        assert_eq!(outcome.sweep.len(), 3);
    }

    #[test]
    fn parallel_and_serial_sweeps_agree() {
        let m = ModelConfig::hybrid_7b();
        let grid = [0.0, 2.0];
        let a = best_static_alpha(&m, small_capacity(), &toy_trace(), &grid, false);
        let b = best_static_alpha(&m, small_capacity(), &toy_trace(), &grid, true);
        assert_eq!(a, b);
    }

    #[test]
    fn replay_is_deterministic() {
        let m = ModelConfig::hybrid_7b();
        let s1 = replay_with_alpha(&m, small_capacity(), &toy_trace(), 1.0);
        let s2 = replay_with_alpha(&m, small_capacity(), &toy_trace(), 1.0);
        assert_eq!(s1, s2);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grid_panics() {
        let m = ModelConfig::hybrid_7b();
        let _ = best_static_alpha(&m, 1 << 30, &[], &[], false);
    }
}
