//! Marconi's prefix cache for hybrid LLMs.
//!
//! This crate implements the paper's primary contribution — a prefix cache
//! that manages Attention KVs and SSM recurrent states *holistically* in one
//! radix tree — together with every baseline its evaluation compares
//! against:
//!
//! | system | type | admission | eviction |
//! |---|---|---|---|
//! | Marconi | [`HybridPrefixCache`] | judicious (≤ 2 SSM states/sequence) | FLOP-aware, auto-tuned α |
//! | SGLang+ | [`HybridPrefixCache`] with [`EvictionPolicy::Lru`] | judicious | LRU |
//! | vLLM+ | [`BlockCache`] | every token block | LRU over leaf blocks |
//! | vanilla | [`VanillaCache`] | none | — |
//! | oracle (artifact V3) | [`oracle::best_static_alpha`] | judicious | FLOP-aware, offline-optimal static α |
//!
//! ## The two policies (paper §4)
//!
//! **Judicious admission.** SSM states are "all or nothing": a state can
//! only be reused by a request whose prefix *exactly* matches every token
//! the state has consumed. Marconi therefore checkpoints at most two SSM
//! states per sequence — at a branch point discovered by *speculative
//! insertion* of the request's input (purely-input reuse: system prompts,
//! few-shot examples), and at the last decoded token (input-and-output
//! reuse: conversation history).
//!
//! **FLOP-aware eviction.** Every eviction candidate `n` (a radix-tree node
//! with ≤ 1 child) is scored `S(n) = recency(n) + α · flop_efficiency(n)`,
//! where `flop_efficiency` is the compute a hit on `n` saves per byte the
//! node holds, computed relative to its parent. `α = 0` degenerates to LRU;
//! Marconi tunes α online by replaying a bootstrap window against a
//! snapshot across a grid of α values in parallel.
//!
//! # Examples
//!
//! ```
//! use marconi_core::{HybridPrefixCache, PrefixCache};
//! use marconi_model::ModelConfig;
//!
//! let mut cache = HybridPrefixCache::builder(ModelConfig::hybrid_7b())
//!     .capacity_bytes(8 << 30)
//!     .build();
//!
//! let system_prompt: Vec<u32> = (0..256).collect();
//! let mut turn = system_prompt.clone();
//! turn.extend(5000..5040); // user input
//! assert_eq!(cache.lookup(&turn).tokens_matched, 0);
//! cache.insert_sequence(&turn, &[9000, 9001, 9002]);
//!
//! // The next conversation turn resumes from the last decoded token.
//! let mut next = turn.clone();
//! next.extend([9000, 9001, 9002]);
//! next.extend(6000..6010);
//! let hit = cache.lookup(&next);
//! assert_eq!(hit.tokens_matched as usize, turn.len() + 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod concurrent;
mod cursor;
mod hybrid;
pub mod oracle;
mod policy;
mod result;
mod stats;
mod tier;
mod tuner;
mod vanilla;

pub use block::{BlockCache, BlockReuseReport};
pub use concurrent::{ShardedCache, ShardedCacheHandle};
pub use cursor::{CursorTable, SessionCursor};
pub use hybrid::{CheckpointMode, HybridPrefixCache, HybridPrefixCacheBuilder};
pub use policy::EvictionPolicy;
pub use result::{AdmissionReport, LookupResult};
pub use stats::CacheStats;
pub use tier::{ReloadPolicy, Tier, TieredPrefix};
pub use tuner::{TunerConfig, TunerState};
pub use vanilla::VanillaCache;

/// The flight-recorder crate, re-exported so callers holding only a
/// `marconi-core` dependency can build sinks and attach tracers.
pub use marconi_trace as trace;

use marconi_model::ModelConfig;
use marconi_radix::{NodeId, Token};

/// Opaque receipt for an in-flight prefix pin, issued by
/// [`PrefixCache::pin_prefix`] and redeemed by [`PrefixCache::unpin`].
///
/// While the ticket is outstanding, the cached path the request's
/// admission-time lookup hit is *protected*: the cache will neither evict
/// nor demote any node on it, because the request is still reading those
/// KVs while it decodes. Dropping a ticket without redeeming it leaks the
/// pin (the path stays protected forever), so serving layers must pair
/// every `pin_prefix` with exactly one `unpin` at request completion.
///
/// Tickets are deliberately neither `Clone` nor `Copy` — one pin, one
/// release. In debug builds, dropping a non-empty ticket without redeeming
/// it panics (see the `Drop` impl): a dropped ticket is a leaked pin.
#[derive(Debug, Default)]
#[must_use = "dropping a PinTicket leaks the pin; redeem it with `unpin`"]
pub struct PinTicket {
    /// The pinned hit node, if the lookup hit and pinning is enabled.
    /// Pinned nodes are never removed and keep their id across edge
    /// splits, so the id stays valid for the lifetime of the ticket.
    pub(crate) node: Option<NodeId>,
    /// Which shard of a [`ShardedCache`] issued the ticket (0 for plain
    /// caches), so `unpin` routes the release back to the right tree.
    pub(crate) shard: usize,
}

impl PinTicket {
    /// `true` if the ticket protects nothing (lookup missed, or the cache
    /// does not pin). Redeeming an empty ticket is a no-op.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.node.is_none()
    }

    /// Takes the pinned node out of the ticket, marking it redeemed: the
    /// debug-build leak detector in `Drop` only fires on tickets whose
    /// node was never taken.
    pub(crate) fn redeem(&mut self) -> Option<NodeId> {
        self.node.take()
    }
}

/// Debug-build pin-leak detector: a ticket dropped while still holding its
/// node was never passed back through `unpin`, so the pinned path would
/// stay protected (unevictable) forever. Release builds skip the check —
/// a leak is a bug, not a memory-safety issue.
#[cfg(debug_assertions)]
impl Drop for PinTicket {
    fn drop(&mut self) {
        if self.node.is_some() && !std::thread::panicking() {
            panic!(
                "PinTicket leaked: dropped while still pinning node {:?} \
                 (shard {}) — every pin_prefix must be paired with unpin",
                self.node, self.shard
            );
        }
    }
}

/// Common interface over all prefix-cache implementations, so the simulator
/// and benches can drive Marconi and every baseline uniformly.
///
/// Timestamps (`now`) are caller-supplied so replay is deterministic and so
/// recency can reflect *workload* time (request arrivals) rather than
/// processing order. The inherent `lookup`/`insert_sequence` conveniences on
/// each implementation advance an internal logical clock instead.
pub trait PrefixCache {
    /// Human-readable system name (e.g. `"marconi"`, `"vllm+"`).
    fn name(&self) -> &str;

    /// The model whose states this cache manages.
    fn model(&self) -> &ModelConfig;

    /// Finds the longest *reusable* cached prefix of `input` at time `now`.
    ///
    /// For models with SSM layers, reuse is constrained to checkpoint
    /// boundaries (the "all or nothing" property); for pure Transformers
    /// any matched length is reusable.
    fn lookup_at(&mut self, input: &[Token], now: f64) -> LookupResult;

    /// Length of the longest *reusable* cached prefix of `input`, **without
    /// mutating any cache state**.
    ///
    /// This is the placement probe used by cluster routers (`marconi-sim`'s
    /// prefix-aware routing): a router may probe every replica before
    /// picking one, so — unlike [`lookup_at`](PrefixCache::lookup_at) — a
    /// probe must not refresh recency, bump hit/lookup counters, or trigger
    /// speculative insertion. A replica that is probed but does not win the
    /// request must remain byte-identical.
    ///
    /// The returned length always equals the `tokens_matched` that an
    /// immediately following `lookup_at` on the same state would report.
    fn longest_cached_prefix_len(&self, input: &[Token]) -> u64;

    /// Admits the states of a completed request (`input` prefilled, then
    /// `output` decoded) at time `now`, evicting entries if needed.
    fn insert_at(&mut self, input: &[Token], output: &[Token], now: f64) -> AdmissionReport;

    /// Cumulative statistics since construction.
    fn stats(&self) -> &CacheStats;

    /// Bytes of model states currently resident on the device tier.
    fn usage_bytes(&self) -> u64;

    /// Configured device-tier capacity in bytes.
    fn capacity_bytes(&self) -> u64;

    /// How this cache wants host-resident hits brought back to the device;
    /// the serving layer's `GpuModel` applies it to a hit's
    /// [`host_bytes`](LookupResult::host_bytes) /
    /// [`host_reload_flops`](LookupResult::host_reload_flops). Irrelevant
    /// (and defaulted) for single-tier caches, which never report host
    /// bytes.
    fn reload_policy(&self) -> ReloadPolicy {
        ReloadPolicy::default()
    }

    /// Pins the cached path a request's admission-time lookup hit, so the
    /// eviction/demotion machinery cannot reclaim it while the request is
    /// in flight (insertion happens at *completion*, so without the pin
    /// nothing stops pressure from reclaiming KVs the request is still
    /// reading — a use-after-free in a real engine).
    ///
    /// Call immediately after [`lookup_at`](PrefixCache::lookup_at) with
    /// the same `input`; redeem the ticket with
    /// [`unpin`](PrefixCache::unpin) at completion, *before* the
    /// completing sequence is inserted. The default implementation pins
    /// nothing — baselines without an eviction path have nothing to
    /// protect.
    fn pin_prefix(&mut self, _input: &[Token]) -> PinTicket {
        PinTicket::default()
    }

    /// Releases an in-flight pin issued by
    /// [`pin_prefix`](PrefixCache::pin_prefix). Redeeming an empty ticket
    /// is a no-op.
    fn unpin(&mut self, _ticket: PinTicket) {}

    /// Bytes currently protected by in-flight pins — unreclaimable by
    /// pressure until the owning requests complete. 0 for caches that do
    /// not pin.
    fn pinned_bytes(&self) -> u64 {
        0
    }

    /// [`lookup_at`](PrefixCache::lookup_at) with an optional session
    /// hint: a cache that supports session cursors resumes the match walk
    /// from the hinted node in O(new tokens), falling back to the
    /// byte-identical root walk when the hint fails validation. The
    /// default implementation ignores the hint — results are identical
    /// either way; hints are purely a shortcut.
    fn lookup_at_with(
        &mut self,
        input: &[Token],
        now: f64,
        _hint: Option<SessionCursor>,
    ) -> LookupResult {
        self.lookup_at(input, now)
    }

    /// [`insert_at`](PrefixCache::insert_at) with an optional session
    /// hint, returning the session's next cursor — a resume handle at the
    /// admitted sequence's end node — when the cache supports cursors and
    /// the node survived the admission's own eviction pressure on the
    /// device tier. The default ignores the hint and mints nothing.
    fn insert_at_with(
        &mut self,
        input: &[Token],
        output: &[Token],
        now: f64,
        _hint: Option<SessionCursor>,
    ) -> (AdmissionReport, Option<SessionCursor>) {
        (self.insert_at(input, output, now), None)
    }

    /// [`pin_prefix`](PrefixCache::pin_prefix) with an optional session
    /// hint (same fallback contract as
    /// [`lookup_at_with`](PrefixCache::lookup_at_with)). The default
    /// ignores the hint.
    fn pin_prefix_with(&mut self, input: &[Token], _hint: Option<SessionCursor>) -> PinTicket {
        self.pin_prefix(input)
    }
}

impl PrefixCache for Box<dyn PrefixCache> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn model(&self) -> &ModelConfig {
        self.as_ref().model()
    }

    fn lookup_at(&mut self, input: &[Token], now: f64) -> LookupResult {
        self.as_mut().lookup_at(input, now)
    }

    fn longest_cached_prefix_len(&self, input: &[Token]) -> u64 {
        self.as_ref().longest_cached_prefix_len(input)
    }

    fn insert_at(&mut self, input: &[Token], output: &[Token], now: f64) -> AdmissionReport {
        self.as_mut().insert_at(input, output, now)
    }

    fn stats(&self) -> &CacheStats {
        self.as_ref().stats()
    }

    fn usage_bytes(&self) -> u64 {
        self.as_ref().usage_bytes()
    }

    fn capacity_bytes(&self) -> u64 {
        self.as_ref().capacity_bytes()
    }

    fn reload_policy(&self) -> ReloadPolicy {
        self.as_ref().reload_policy()
    }

    fn pin_prefix(&mut self, input: &[Token]) -> PinTicket {
        self.as_mut().pin_prefix(input)
    }

    fn unpin(&mut self, ticket: PinTicket) {
        self.as_mut().unpin(ticket)
    }

    fn pinned_bytes(&self) -> u64 {
        self.as_ref().pinned_bytes()
    }

    fn lookup_at_with(
        &mut self,
        input: &[Token],
        now: f64,
        hint: Option<SessionCursor>,
    ) -> LookupResult {
        self.as_mut().lookup_at_with(input, now, hint)
    }

    fn insert_at_with(
        &mut self,
        input: &[Token],
        output: &[Token],
        now: f64,
        hint: Option<SessionCursor>,
    ) -> (AdmissionReport, Option<SessionCursor>) {
        self.as_mut().insert_at_with(input, output, now, hint)
    }

    fn pin_prefix_with(&mut self, input: &[Token], hint: Option<SessionCursor>) -> PinTicket {
        self.as_mut().pin_prefix_with(input, hint)
    }
}
