//! Lookup and admission result types.

use marconi_radix::NodeId;
use serde::{Deserialize, Serialize};

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct LookupResult {
    /// Tokens of prefill skipped: the length of the longest *reusable*
    /// cached prefix. For hybrid models this is the depth of the deepest
    /// matched node holding an SSM checkpoint; for pure Transformers it is
    /// the raw matched length.
    pub tokens_matched: u64,
    /// Longest raw prefix of the query present in the cache's data
    /// structure, ignoring the SSM checkpoint constraint. The gap
    /// `raw_matched - tokens_matched` measures reuse lost to the
    /// all-or-nothing property.
    pub raw_matched: u64,
    /// The node whose state is reused, when the cache is tree-based.
    pub node: Option<NodeId>,
    /// FLOPs of prefill compute this hit saves (paper's accounting: the
    /// full prefill cost of the matched prefix).
    pub flops_saved: u128,
    /// Tokens of the matched prefix whose state is host-resident (demoted
    /// to host DRAM). Zero for a single-tier cache; the device-tier share
    /// is `tokens_matched - host_tokens`.
    pub host_tokens: u64,
    /// Bytes that must cross PCIe to serve the host-resident share of the
    /// hit: the host-tier edge KVs on the matched path plus the hit node's
    /// SSM checkpoint when that checkpoint is host-resident.
    pub host_bytes: u64,
    /// Prefill FLOPs it would cost to *recompute* the host-resident token
    /// spans instead of transferring them — the other arm of the
    /// compute-or-load decision. (Idealized roll-forward accounting: each
    /// span is charged its incremental prefill FLOPs at its position.)
    pub host_reload_flops: u128,
}

impl LookupResult {
    /// A complete miss.
    pub const MISS: LookupResult = LookupResult {
        tokens_matched: 0,
        raw_matched: 0,
        node: None,
        flops_saved: 0,
        host_tokens: 0,
        host_bytes: 0,
        host_reload_flops: 0,
    };

    /// `true` if any prefix was reused.
    #[must_use]
    pub fn is_hit(&self) -> bool {
        self.tokens_matched > 0
    }

    /// Token hit rate for a single request: matched over total input.
    ///
    /// Returns 0.0 for an empty input.
    #[must_use]
    pub fn hit_rate(&self, input_len: usize) -> f64 {
        if input_len == 0 {
            return 0.0;
        }
        self.tokens_matched as f64 / input_len as f64
    }

    /// `true` if serving this hit touches host-resident state (a transfer
    /// or recompute is needed before the prefix is usable on the device).
    #[must_use]
    pub fn needs_reload(&self) -> bool {
        self.host_tokens > 0
    }

    /// Tokens of the matched prefix resident on the device tier.
    #[must_use]
    pub fn device_tokens(&self) -> u64 {
        self.tokens_matched - self.host_tokens
    }
}

/// Outcome of admitting a finished request into the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct AdmissionReport {
    /// SSM checkpoints newly admitted for this sequence (≤ 2 under
    /// Marconi's judicious admission; one per token block under vLLM+).
    pub ssm_states_admitted: u64,
    /// Token depth of the branch-point checkpoint taken during prefill, if
    /// speculative insertion predicted a new intermediate node.
    pub branch_checkpoint_depth: Option<u64>,
    /// Bytes the admitted states added to the cache (before eviction).
    pub bytes_added: u64,
    /// Bytes released by evictions triggered by this admission.
    pub bytes_evicted: u64,
    /// Entries (nodes or blocks) evicted by this admission.
    pub entries_evicted: u64,
    /// Entries demoted device → host by this admission's pressure episode
    /// (tiered caches only).
    pub entries_demoted: u64,
    /// Bytes moved device → host by those demotions.
    pub bytes_demoted: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_is_not_a_hit() {
        assert!(!LookupResult::MISS.is_hit());
        assert_eq!(LookupResult::MISS.hit_rate(100), 0.0);
    }

    #[test]
    fn hit_rate_handles_empty_input() {
        let r = LookupResult {
            tokens_matched: 5,
            raw_matched: 5,
            flops_saved: 1,
            ..LookupResult::MISS
        };
        assert_eq!(r.hit_rate(0), 0.0);
        assert_eq!(r.hit_rate(10), 0.5);
        assert!(r.is_hit());
    }

    #[test]
    fn tier_split_of_a_hit() {
        let r = LookupResult {
            tokens_matched: 100,
            raw_matched: 100,
            host_tokens: 40,
            host_bytes: 1024,
            host_reload_flops: 1 << 30,
            ..LookupResult::MISS
        };
        assert!(r.needs_reload());
        assert_eq!(r.device_tokens(), 60);
        assert!(!LookupResult::MISS.needs_reload());
    }
}
