//! Eviction policies and utility scoring (paper §4.2).

use crate::tuner::TunerConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Eviction policy of a [`HybridPrefixCache`](crate::HybridPrefixCache).
///
/// All policies share the same candidate set (nodes with ≤ 1 child) and
/// differ only in the utility score `S(n) = recency(n) + α ·
/// flop_efficiency(n)`:
///
/// * [`Lru`](EvictionPolicy::Lru) — `α = 0`; recency only. This is the
///   paper's SGLang+ baseline.
/// * [`FlopAware`](EvictionPolicy::FlopAware) — fixed `α`; used by the
///   offline-optimal oracle (artifact policy V3) and for ablations.
/// * [`AutoTuned`](EvictionPolicy::AutoTuned) — Marconi: start at `α = 0`,
///   snapshot at the first eviction, record a bootstrap window, then pick
///   the hit-rate-maximizing `α` by parallel grid-search replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Recency-only eviction (`α = 0`).
    Lru,
    /// FLOP-aware eviction with a fixed balance parameter.
    FlopAware {
        /// Weight of normalized FLOP efficiency relative to recency.
        alpha: f64,
    },
    /// FLOP-aware eviction with online α tuning (the full Marconi policy).
    AutoTuned(TunerConfig),
    /// GreedyDual-Size-Frequency (Cherkasova 1998), the classic cost-aware
    /// eviction the paper compares against in §4.2: priority
    /// `H = L + frequency · cost / size` with an inflation clock `L`.
    /// Included as an ablation baseline — size fails as a cost proxy for
    /// hybrid models because SSM states are length-independent.
    Gdsf,
}

impl Default for EvictionPolicy {
    /// The full Marconi policy with default tuner settings.
    fn default() -> Self {
        EvictionPolicy::AutoTuned(TunerConfig::default())
    }
}

impl fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvictionPolicy::Lru => write!(f, "lru"),
            EvictionPolicy::FlopAware { alpha } => write!(f, "flop-aware(α={alpha})"),
            EvictionPolicy::AutoTuned(_) => write!(f, "flop-aware(auto-α)"),
            EvictionPolicy::Gdsf => write!(f, "gdsf"),
        }
    }
}

/// Per-candidate scoring inputs gathered by the cache before normalization.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidate<Id> {
    pub id: Id,
    pub last_access: f64,
    /// FLOPs a hit at this node saves relative to its parent, per byte the
    /// node's eviction would free. `f64::INFINITY` when eviction frees
    /// nothing (structural nodes whose KVs are absorbed by the child).
    pub flop_efficiency: f64,
}

/// Picks the eviction victim: lowest `recency + α·efficiency` after min-max
/// normalizing both terms across the candidates (the paper normalizes "by
/// comparing all nodes' last-accessed timestamps and FLOP saved/byte in the
/// radix tree"). Returns the victim's *position* in `candidates` so callers
/// keeping a live pool can `swap_remove` it in O(1).
///
/// Infinite-efficiency candidates (zero bytes freed) are kept unless
/// nothing else can be evicted when `α > 0`; at `α = 0` recency alone
/// decides for every candidate. Ties break toward older, then lower id, so
/// the chosen victim is the unique minimum of a strict total order — the
/// result is independent of candidate ordering.
///
/// The efficiency term is skipped outright at `α = 0` rather than
/// multiplied in: `0 · norm(∞)` is NaN, and the *sign* of a NaN produced
/// from non-NaN operands is unspecified by IEEE 754 — x86 returns the
/// negative default QNaN at runtime while compile-time constant folding
/// yields a positive one — so under `total_cmp` the same α = 0 pick could
/// differ between debug and release builds. Guarding the product keeps
/// every score finite and the order well-defined everywhere.
pub(crate) fn pick_victim_index<Id: Copy + Ord>(
    candidates: &[Candidate<Id>],
    alpha: f64,
) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    let (mut ts_min, mut ts_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut eff_min, mut eff_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for c in candidates {
        ts_min = ts_min.min(c.last_access);
        ts_max = ts_max.max(c.last_access);
        if c.flop_efficiency.is_finite() {
            eff_min = eff_min.min(c.flop_efficiency);
            eff_max = eff_max.max(c.flop_efficiency);
        }
    }
    let norm = |v: f64, lo: f64, hi: f64| {
        if !v.is_finite() {
            return f64::INFINITY;
        }
        if hi > lo {
            (v - lo) / (hi - lo)
        } else {
            0.0
        }
    };
    candidates
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            let score = |c: &Candidate<Id>| {
                let weighted = if alpha == 0.0 {
                    0.0
                } else {
                    alpha * norm(c.flop_efficiency, eff_min, eff_max)
                };
                norm(c.last_access, ts_min, ts_max) + weighted
            };
            score(a)
                .total_cmp(&score(b))
                .then(a.last_access.total_cmp(&b.last_access))
                .then(a.id.cmp(&b.id))
        })
        .map(|(i, _)| i)
}

/// Id-returning convenience over [`pick_victim_index`]; the pre-refactor
/// entry point, kept for the scan-based reference eviction the parity tests
/// replay against.
#[cfg(test)]
pub(crate) fn pick_victim<Id: Copy + Ord>(candidates: &[Candidate<Id>], alpha: f64) -> Option<Id> {
    pick_victim_index(candidates, alpha).map(|i| candidates[i].id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: u32, ts: f64, eff: f64) -> Candidate<u32> {
        Candidate {
            id,
            last_access: ts,
            flop_efficiency: eff,
        }
    }

    #[test]
    fn empty_candidates_yield_none() {
        assert_eq!(pick_victim::<u32>(&[], 1.0), None);
    }

    #[test]
    fn alpha_zero_is_pure_lru() {
        let cands = [cand(1, 5.0, 100.0), cand(2, 1.0, 1e9), cand(3, 3.0, 0.0)];
        assert_eq!(pick_victim(&cands, 0.0), Some(2), "oldest wins under LRU");
    }

    #[test]
    fn high_alpha_prefers_low_efficiency() {
        // Node 1 is oldest but extremely FLOP-efficient; node 2 is fresh but
        // inefficient. With a large α the inefficient node goes first.
        let cands = [cand(1, 0.0, 1e6), cand(2, 10.0, 1.0)];
        assert_eq!(pick_victim(&cands, 0.0), Some(1));
        assert_eq!(pick_victim(&cands, 100.0), Some(2));
    }

    #[test]
    fn alpha_zero_ranks_infinite_efficiency_by_recency_alone() {
        // At α = 0 the efficiency term must contribute exactly zero — not
        // 0·∞ = NaN, whose total_cmp rank depends on the NaN sign the
        // platform happens to produce. The zero-byte node here is strictly
        // older, so pure recency must evict it first, deterministically.
        let cands = [cand(1, 2.0, f64::INFINITY), cand(2, 5.0, 100.0)];
        assert_eq!(pick_victim(&cands, 0.0), Some(1));
        // ...and when it is younger, the finite node goes first.
        let cands = [cand(1, 9.0, f64::INFINITY), cand(2, 5.0, 100.0)];
        assert_eq!(pick_victim(&cands, 0.0), Some(2));
    }

    #[test]
    fn infinite_efficiency_evicted_last() {
        let cands = [cand(1, 0.0, f64::INFINITY), cand(2, 9.0, 5.0)];
        // Despite being older, the zero-byte node is never preferred when a
        // finite candidate exists and α > 0.
        assert_eq!(pick_victim(&cands, 1.0), Some(2));
        // ...but when everything is infinite, recency decides.
        let all_inf = [cand(1, 4.0, f64::INFINITY), cand(2, 2.0, f64::INFINITY)];
        assert_eq!(pick_victim(&all_inf, 1.0), Some(2));
    }

    #[test]
    fn degenerate_ranges_fall_back_to_id_order() {
        let cands = [cand(7, 1.0, 3.0), cand(3, 1.0, 3.0)];
        assert_eq!(pick_victim(&cands, 1.0), Some(3));
    }

    // ------------------------------------------------------------------
    // The scoring formula itself: S(n) = recency(n) + α·flop_efficiency(n)
    // over min-max-normalized terms, lowest score evicted (paper §4.2).
    // ------------------------------------------------------------------

    #[test]
    fn score_matches_normalized_formula_exactly() {
        // Hand-computed: timestamps {0, 5, 10} normalize to {0, 0.5, 1};
        // efficiencies {100, 300, 200} normalize to {0, 1, 0.5}.
        // With α = 1: S = {0+0, 0.5+1, 1+0.5} = {0, 1.5, 1.5} → evict 1.
        let cands = [
            cand(1, 0.0, 100.0),
            cand(2, 5.0, 300.0),
            cand(3, 10.0, 200.0),
        ];
        assert_eq!(pick_victim(&cands, 1.0), Some(1));
        // With α = 4: S = {0, 4.5, 3} → still evict 1 (old AND inefficient
        // dominates at any α ≥ 0).
        assert_eq!(pick_victim(&cands, 4.0), Some(1));
    }

    #[test]
    fn moderate_alpha_overrides_recency_for_efficiency() {
        // Node 1 is the LRU victim but highly FLOP-efficient (a long shared
        // prefix); node 2 is fresher but inefficient (a short sequence whose
        // SSM state dominates its footprint). Normalized: node 1 scores
        // 0 + α·1, node 2 scores 1 + α·0 — the crossover is exactly α = 1.
        let cands = [cand(1, 0.0, 1000.0), cand(2, 10.0, 10.0)];
        assert_eq!(pick_victim(&cands, 0.0), Some(1), "LRU picks oldest");
        assert_eq!(pick_victim(&cands, 0.5), Some(1), "below crossover");
        assert_eq!(pick_victim(&cands, 2.0), Some(2), "above crossover");
    }

    #[test]
    fn ordering_is_invariant_under_affine_rescaling() {
        // Min-max normalization makes the victim depend only on *relative*
        // position, so shifting/scaling all timestamps (seconds vs request
        // ids) or all efficiencies (FLOPs vs TFLOPs per byte) must not
        // change the decision.
        let base = [cand(1, 1.0, 7.0), cand(2, 3.0, 2.0), cand(3, 9.0, 5.0)];
        for alpha in [0.0, 0.5, 1.0, 2.0, 8.0] {
            let want = pick_victim(&base, alpha);
            let shifted: Vec<_> = base
                .iter()
                .map(|c| {
                    cand(
                        c.id,
                        1000.0 + 60.0 * c.last_access,
                        1e12 * c.flop_efficiency,
                    )
                })
                .collect();
            assert_eq!(pick_victim(&shifted, alpha), want, "α = {alpha}");
        }
    }

    #[test]
    fn victim_shifts_from_oldest_to_least_efficient_as_alpha_grows() {
        // Three-way tradeoff: 1 is oldest/most efficient, 3 is freshest/
        // least efficient, 2 sits between. Sweeping α must move the victim
        // monotonically from the LRU choice (1) to the efficiency choice (3)
        // without ever bouncing back.
        let cands = [
            cand(1, 0.0, 900.0),
            cand(2, 5.0, 500.0),
            cand(3, 10.0, 100.0),
        ];
        let sweep: Vec<u32> = [0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 16.0]
            .iter()
            .map(|&a| pick_victim(&cands, a).unwrap())
            .collect();
        assert_eq!(*sweep.first().unwrap(), 1, "α=0 is LRU");
        assert_eq!(*sweep.last().unwrap(), 3, "large α is pure efficiency");
        assert!(
            sweep.windows(2).all(|w| w[0] <= w[1]),
            "monotone: {sweep:?}"
        );
    }

    #[test]
    fn default_policy_is_auto_tuned() {
        assert!(matches!(
            EvictionPolicy::default(),
            EvictionPolicy::AutoTuned(_)
        ));
    }

    #[test]
    fn display_names() {
        assert_eq!(EvictionPolicy::Lru.to_string(), "lru");
        assert!(EvictionPolicy::FlopAware { alpha: 2.0 }
            .to_string()
            .contains("α=2"));
        assert!(EvictionPolicy::default().to_string().contains("auto"));
    }
}
