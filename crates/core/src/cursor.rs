//! Session cursors: resume handles for the PR 10 session fast path.
//!
//! Multi-turn sessions extend the previous prompt, yet every lookup,
//! insertion, and pin re-walks the radix tree from the root — O(prompt)
//! per request, quadratic over a session. A [`SessionCursor`] is the
//! cache-level resume handle: minted by
//! [`insert_at_with`](crate::PrefixCache::insert_at_with) at the end node
//! of the admitted sequence, handed back by the serving layer on the
//! session's next turn, and validated in O(1) + O(resume edge) before the
//! walk resumes from the deep node. Any validation failure — stale
//! generation, structure drift, token divergence, a demoted resume path,
//! or a cross-shard hint — falls back to the byte-identical root walk, so
//! hints are *only* a shortcut, never a semantic input (the parity
//! contract in `docs/session-fastpath.md`).
//!
//! [`CursorTable`] is the bounded per-session store the sim layers use:
//! a deterministic LRU (BTree-backed, no hash iteration) so replays are
//! byte-identical and the table cannot grow with session count.

use marconi_radix::MatchCursor;
use std::collections::{BTreeMap, BTreeSet};

/// A generation-tagged resume handle for one session's cached prefix.
///
/// Wraps the radix layer's [`MatchCursor`] together with the shard that
/// minted it (0 for unsharded caches), so a sharded front-end can reject
/// cross-shard hints by construction. The handle is `Copy` and carries no
/// lifetime: it never dangles, because every use revalidates the node's
/// generation and structure version before trusting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a session cursor only helps if passed back on the next turn"]
pub struct SessionCursor {
    /// The radix-level resume handle.
    pub(crate) cursor: MatchCursor,
    /// The shard that minted the handle (0 for plain caches). Cursors are
    /// shard-local: a sharded cache rejects hints minted elsewhere.
    pub(crate) shard: usize,
}

impl SessionCursor {
    /// Tokens the cursor memoizes (the matched-prefix length a valid
    /// resume skips).
    #[must_use]
    pub fn matched_len(&self) -> u64 {
        self.cursor.matched_len()
    }

    /// The shard that minted this handle (0 for unsharded caches).
    #[must_use]
    pub fn shard(&self) -> usize {
        self.shard
    }
}

/// How a hinted cache operation received (or lost) its session hint —
/// the internal currency between the sharded front-end and the hinted
/// method bodies, so a hint rejected *before* reaching the tree (e.g.
/// cross-shard) still surfaces as a `CursorFallback` trace event from the
/// cache that ran the root walk.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CursorHint {
    /// No hint offered: plain root walk, no cursor telemetry.
    Cold,
    /// A shard-validated hint to try against the tree.
    Hint(MatchCursor),
    /// A hint rejected upstream; root walk plus a fallback event.
    Rejected(marconi_trace::CursorFallbackCause),
}

/// A bounded, deterministic per-session cursor store (LRU eviction).
///
/// Keyed by the workload's `session_id`. Backed by `BTreeMap`/`BTreeSet`
/// rather than hashing so iteration (and therefore eviction order) is
/// deterministic across runs and platforms — the same discipline the rest
/// of the workspace follows for replay determinism. A capacity of 0
/// disables the table entirely (every `take` misses, every `put` drops),
/// which is how the benches express the root-walk baseline.
#[derive(Debug, Clone, Default)]
pub struct CursorTable {
    cap: usize,
    tick: u64,
    /// session → (recency tick, cursor).
    entries: BTreeMap<u64, (u64, SessionCursor)>,
    /// (recency tick, session), oldest first — the eviction order.
    lru: BTreeSet<(u64, u64)>,
}

impl CursorTable {
    /// A table retaining cursors for at most `cap` sessions.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        CursorTable {
            cap,
            tick: 0,
            entries: BTreeMap::new(),
            lru: BTreeSet::new(),
        }
    }

    /// Removes and returns the session's cursor, if present.
    ///
    /// Take-semantics (rather than peek) keep the table honest under
    /// concurrent turns of one session: the first turn consumes the hint,
    /// later in-flight turns of the same session root-walk instead of
    /// racing on one handle.
    pub fn take(&mut self, session: u64) -> Option<SessionCursor> {
        let (tick, cursor) = self.entries.remove(&session)?;
        self.lru.remove(&(tick, session));
        Some(cursor)
    }

    /// Stores the session's cursor, refreshing its recency; evicts the
    /// least-recently-stored session when over capacity.
    pub fn put(&mut self, session: u64, cursor: SessionCursor) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        if let Some((old_tick, _)) = self.entries.insert(session, (self.tick, cursor)) {
            self.lru.remove(&(old_tick, session));
        }
        self.lru.insert((self.tick, session));
        while self.entries.len() > self.cap {
            let &(tick, victim) = self
                .lru
                .iter()
                .next()
                .expect("invariant: lru and entries stay in lockstep");
            self.lru.remove(&(tick, victim));
            self.entries.remove(&victim);
        }
    }

    /// Sessions currently holding a cursor.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no session holds a cursor.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured session capacity (0 = disabled).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marconi_radix::RadixTree;

    fn cursor_for(tokens: &[u32]) -> SessionCursor {
        let mut t: RadixTree<()> = RadixTree::new();
        let end = t.insert(tokens).end_node;
        SessionCursor {
            cursor: t.cursor_at(end).expect("live node"),
            shard: 0,
        }
    }

    #[test]
    fn take_consumes_the_entry() {
        let mut tbl = CursorTable::new(4);
        tbl.put(7, cursor_for(&[1, 2, 3]));
        assert_eq!(tbl.len(), 1);
        assert!(tbl.take(7).is_some());
        assert!(tbl.take(7).is_none(), "take has consume semantics");
        assert!(tbl.is_empty());
    }

    #[test]
    fn lru_evicts_the_stalest_session() {
        let mut tbl = CursorTable::new(2);
        let c = cursor_for(&[1, 2, 3]);
        tbl.put(1, c);
        tbl.put(2, c);
        tbl.put(1, c); // refresh 1 → 2 is now stalest
        tbl.put(3, c); // evicts 2
        assert!(tbl.take(2).is_none(), "stalest session evicted");
        assert!(tbl.take(1).is_some());
        assert!(tbl.take(3).is_some());
    }

    #[test]
    fn zero_capacity_disables_the_table() {
        let mut tbl = CursorTable::new(0);
        tbl.put(1, cursor_for(&[1]));
        assert!(tbl.is_empty());
        assert!(tbl.take(1).is_none());
    }

    #[test]
    fn reput_does_not_leak_lru_entries() {
        let mut tbl = CursorTable::new(8);
        let c = cursor_for(&[1, 2]);
        for _ in 0..100 {
            tbl.put(5, c);
        }
        assert_eq!(tbl.len(), 1);
        assert_eq!(tbl.lru.len(), 1, "stale lru keys must be removed");
    }
}
