//! Streaming summary statistics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Running count/mean/variance/min/max using Welford's online algorithm —
/// suitable for million-request traces without storing samples.
///
/// # Examples
///
/// ```
/// use marconi_metrics::Summary;
///
/// let mut s = Summary::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(v);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0.0 for fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+∞` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`−∞` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another summary into this one (parallel aggregation).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} std={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn mean_and_extremes() {
        let mut s = Summary::new();
        for v in [1.0, 2.0, 3.0] {
            s.record(v);
        }
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn variance_matches_two_pass() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut s = Summary::new();
        for &v in &values {
            s.record(v);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        assert!((s.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let a_vals: Vec<f64> = (0..50).map(f64::from).collect();
        let b_vals: Vec<f64> = (50..100).map(f64::from).collect();
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut whole = Summary::new();
        for &v in &a_vals {
            a.record(v);
            whole.record(v);
        }
        for &v in &b_vals {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-6);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::new();
        s.record(5.0);
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn display_format() {
        let mut s = Summary::new();
        s.record(1.0);
        assert!(s.to_string().starts_with("n=1"));
    }
}
