//! Five-number box statistics with P5/P95 whiskers (paper Fig. 7 style).

use crate::Percentiles;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Box-plot statistics as the paper draws them: quartile box with whiskers
/// at the 5th and 95th percentile ("allowing us to disregard extreme data").
///
/// # Examples
///
/// ```
/// use marconi_metrics::BoxStats;
///
/// let values: Vec<f64> = (0..=100).map(f64::from).collect();
/// let b = BoxStats::new(&values).unwrap();
/// assert_eq!(b.median, 50.0);
/// assert_eq!(b.whisker_lo, 5.0);
/// assert_eq!(b.whisker_hi, 95.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Lower whisker (P5).
    pub whisker_lo: f64,
    /// First quartile (P25).
    pub q1: f64,
    /// Median (P50).
    pub median: f64,
    /// Third quartile (P75).
    pub q3: f64,
    /// Upper whisker (P95).
    pub whisker_hi: f64,
    /// Arithmetic mean (reported alongside boxes in the paper's text).
    pub mean: f64,
}

impl BoxStats {
    /// Computes box statistics; `None` for empty or NaN-containing input.
    #[must_use]
    pub fn new(values: &[f64]) -> Option<Self> {
        let p = Percentiles::new(values)?;
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        Some(BoxStats {
            whisker_lo: p.p5(),
            q1: p.p25(),
            median: p.median(),
            q3: p.p75(),
            whisker_hi: p.p95(),
            mean,
        })
    }

    /// Interquartile range.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl fmt::Display for BoxStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P5 {:.2} | Q1 {:.2} | med {:.2} | Q3 {:.2} | P95 {:.2} (mean {:.2})",
            self.whisker_lo, self.q1, self.median, self.q3, self.whisker_hi, self.mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_numbers_ordered() {
        let values: Vec<f64> = (0..1000).map(|i| f64::from(i % 97)).collect();
        let b = BoxStats::new(&values).unwrap();
        assert!(b.whisker_lo <= b.q1);
        assert!(b.q1 <= b.median);
        assert!(b.median <= b.q3);
        assert!(b.q3 <= b.whisker_hi);
        assert!(b.iqr() >= 0.0);
    }

    #[test]
    fn mean_of_uniform() {
        let values: Vec<f64> = (0..=10).map(f64::from).collect();
        let b = BoxStats::new(&values).unwrap();
        assert!((b.mean - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_rejected() {
        assert!(BoxStats::new(&[]).is_none());
    }

    #[test]
    fn display_contains_all_fields() {
        let b = BoxStats::new(&[1.0, 2.0, 3.0]).unwrap();
        let s = b.to_string();
        assert!(s.contains("P5") && s.contains("P95") && s.contains("med"));
    }
}
