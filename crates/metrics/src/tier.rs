//! Two-way tier breakdown of a counter (device vs host).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A counter split across the device and host memory tiers — e.g. hit
/// tokens served from HBM vs hit tokens that had to cross PCIe. Reports
/// use it to show how much of the cache's value survives demotion.
///
/// # Examples
///
/// ```
/// use marconi_metrics::TierSplit;
///
/// let hits = TierSplit { device: 750, host: 250 };
/// assert_eq!(hits.total(), 1000);
/// assert!((hits.host_fraction() - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierSplit {
    /// Device-tier (HBM-resident) share.
    pub device: u64,
    /// Host-tier (DRAM-resident) share.
    pub host: u64,
}

impl TierSplit {
    /// Sum of both tiers.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.device + self.host
    }

    /// Host share as a fraction of the total, in `[0, 1]` (0.0 for an
    /// empty split).
    #[must_use]
    pub fn host_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.host as f64 / total as f64
    }

    /// Adds another split into this one (cluster aggregation).
    pub fn accumulate(&mut self, other: &TierSplit) {
        self.device += other.device;
        self.host += other.host;
    }
}

impl fmt::Display for TierSplit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} device / {} host ({:.1}% host)",
            self.device,
            self.host,
            self.host_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_split_is_safe() {
        let s = TierSplit::default();
        assert_eq!(s.total(), 0);
        assert_eq!(s.host_fraction(), 0.0);
    }

    #[test]
    fn accumulate_sums_tiers() {
        let mut s = TierSplit {
            device: 10,
            host: 5,
        };
        s.accumulate(&TierSplit {
            device: 30,
            host: 15,
        });
        assert_eq!(s.device, 40);
        assert_eq!(s.host, 20);
        assert!((s.host_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_shows_percentage() {
        let s = TierSplit { device: 3, host: 1 };
        assert!(s.to_string().contains("25.0% host"));
    }
}
