//! Order-statistic percentiles with linear interpolation.

use serde::{Deserialize, Serialize};

/// Exact percentiles over a finite sample.
///
/// Values are sorted once at construction; quantiles use the standard
/// linear-interpolation estimator (NumPy's default): for quantile `q` over
/// `n` values, the rank is `q·(n−1)` and fractional ranks interpolate
/// between neighbours.
///
/// # Examples
///
/// ```
/// use marconi_metrics::Percentiles;
///
/// let p = Percentiles::new(&[10.0, 0.0]).unwrap();
/// assert_eq!(p.quantile(0.5), 5.0);
/// assert_eq!(p.p95(), 9.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    sorted: Vec<f64>,
}

impl Percentiles {
    /// Builds from a sample; returns `None` for an empty sample or one
    /// containing NaN.
    #[must_use]
    pub fn new(values: &[f64]) -> Option<Self> {
        if values.is_empty() || values.iter().any(|v| v.is_nan()) {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| {
            a.partial_cmp(b)
                .expect("invariant: samples are finite, never NaN")
        });
        Some(Percentiles { sorted })
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if the sample is empty (cannot happen for a constructed
    /// value; provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-quantile for `q ∈ [0, 1]`, linearly interpolated.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let rank = q * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// 5th percentile (the paper's lower whisker).
    #[must_use]
    pub fn p5(&self) -> f64 {
        self.quantile(0.05)
    }

    /// 25th percentile.
    #[must_use]
    pub fn p25(&self) -> f64 {
        self.quantile(0.25)
    }

    /// Median.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 75th percentile.
    #[must_use]
    pub fn p75(&self) -> f64 {
        self.quantile(0.75)
    }

    /// 95th percentile (the paper's headline tail statistic).
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Minimum sample value.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample value.
    #[must_use]
    pub fn max(&self) -> f64 {
        *self
            .sorted
            .last()
            .expect("invariant: sorted samples are non-empty")
    }

    /// The sorted sample.
    #[must_use]
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// Fraction of samples `≤ threshold` — SLO attainment when the sample
    /// is a latency distribution and `threshold` the SLO.
    ///
    /// # Examples
    ///
    /// ```
    /// use marconi_metrics::Percentiles;
    ///
    /// let p = Percentiles::new(&[10.0, 20.0, 30.0, 40.0]).unwrap();
    /// assert_eq!(p.fraction_le(25.0), 0.5);
    /// assert_eq!(p.fraction_le(5.0), 0.0);
    /// assert_eq!(p.fraction_le(40.0), 1.0);
    /// ```
    #[must_use]
    pub fn fraction_le(&self, threshold: f64) -> f64 {
        let met = self.sorted.partition_point(|&v| v <= threshold);
        met as f64 / self.sorted.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_nan_rejected() {
        assert!(Percentiles::new(&[]).is_none());
        assert!(Percentiles::new(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn single_value() {
        let p = Percentiles::new(&[7.0]).unwrap();
        assert_eq!(p.min(), 7.0);
        assert_eq!(p.max(), 7.0);
        assert_eq!(p.median(), 7.0);
        assert_eq!(p.p95(), 7.0);
    }

    #[test]
    fn interpolation_matches_numpy_convention() {
        let p = Percentiles::new(&[0.0, 10.0]).unwrap();
        assert_eq!(p.quantile(0.0), 0.0);
        assert_eq!(p.quantile(0.25), 2.5);
        assert_eq!(p.quantile(0.5), 5.0);
        assert_eq!(p.quantile(1.0), 10.0);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let p = Percentiles::new(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(p.sorted_values(), &[1.0, 2.0, 3.0]);
        assert_eq!(p.median(), 2.0);
    }

    #[test]
    fn named_percentiles_are_monotone() {
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let p = Percentiles::new(&values).unwrap();
        assert!(p.p5() < p.p25());
        assert!(p.p25() < p.median());
        assert!(p.median() < p.p75());
        assert!(p.p75() < p.p95());
        assert!(p.p95() < p.p99());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_quantile_panics() {
        let p = Percentiles::new(&[1.0]).unwrap();
        let _ = p.quantile(1.5);
    }
}
