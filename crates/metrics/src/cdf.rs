//! Empirical cumulative distribution functions (Fig. 9, Fig. 10b).

use serde::{Deserialize, Serialize};

/// Empirical CDF over a finite sample.
///
/// # Examples
///
/// ```
/// use marconi_metrics::Cdf;
///
/// let cdf = Cdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
/// assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
/// assert_eq!(cdf.fraction_at_or_below(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds from a sample; `None` for empty or NaN-containing input.
    #[must_use]
    pub fn new(values: &[f64]) -> Option<Self> {
        if values.is_empty() || values.iter().any(|v| v.is_nan()) {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| {
            a.partial_cmp(b)
                .expect("invariant: samples are finite, never NaN")
        });
        Some(Cdf { sorted })
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if there are no samples (impossible post-construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ x)`: fraction of samples at or below `x`.
    #[must_use]
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF at `q ∈ (0, 1]`: the smallest sample `x` with
    /// `P(X ≤ x) ≥ q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    #[must_use]
    pub fn inverse(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "q {q} outside (0, 1]");
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// `(x, P(X ≤ x))` plotting points: one per sample, deduplicated on x.
    #[must_use]
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut pts: Vec<(f64, f64)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let y = (i + 1) as f64 / n;
            match pts.last_mut() {
                Some(last) if last.0 == x => last.1 = y,
                _ => pts.push((x, y)),
            }
        }
        pts
    }

    /// `count` evenly spaced `(x, P(X ≤ x))` samples spanning the data
    /// range, for compact plotting.
    ///
    /// # Panics
    ///
    /// Panics if `count < 2`.
    #[must_use]
    pub fn sampled_points(&self, count: usize) -> Vec<(f64, f64)> {
        assert!(count >= 2, "need at least 2 sample points");
        let lo = self.sorted[0];
        let hi = *self
            .sorted
            .last()
            .expect("invariant: sorted samples are non-empty");
        (0..count)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (count - 1) as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_nan_rejected() {
        assert!(Cdf::new(&[]).is_none());
        assert!(Cdf::new(&[f64::NAN]).is_none());
    }

    #[test]
    fn step_behaviour_with_duplicates() {
        let cdf = Cdf::new(&[1.0, 1.0, 2.0]).unwrap();
        assert!((cdf.fraction_at_or_below(1.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cdf.fraction_at_or_below(2.0), 1.0);
        let pts = cdf.points();
        assert_eq!(pts.len(), 2, "duplicates collapse");
        assert_eq!(pts[0], (1.0, 2.0 / 3.0));
    }

    #[test]
    fn inverse_round_trips() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let cdf = Cdf::new(&values).unwrap();
        assert_eq!(cdf.inverse(0.5), 50.0);
        assert_eq!(cdf.inverse(1.0), 100.0);
        assert_eq!(cdf.inverse(0.01), 1.0);
    }

    #[test]
    fn sampled_points_span_range_monotonically() {
        let values: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let cdf = Cdf::new(&values).unwrap();
        let pts = cdf.sampled_points(50);
        assert_eq!(pts.len(), 50);
        assert_eq!(pts[0].0, 0.0);
        assert!((pts[49].1 - 1.0).abs() < 1e-12);
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be nondecreasing");
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn inverse_zero_panics() {
        let cdf = Cdf::new(&[1.0]).unwrap();
        let _ = cdf.inverse(0.0);
    }
}
