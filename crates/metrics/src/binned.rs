//! Binned means: average of `y` grouped by fixed-width bins of `x`
//! (paper Fig. 10a: average hit rate binned by input sequence length).

use serde::{Deserialize, Serialize};

/// Accumulates `(x, y)` observations into fixed-width `x` bins and reports
/// per-bin mean `y`.
///
/// # Examples
///
/// ```
/// use marconi_metrics::BinnedMean;
///
/// let mut bins = BinnedMean::new(100.0);
/// bins.add(50.0, 1.0);
/// bins.add(60.0, 3.0);
/// bins.add(250.0, 10.0);
/// let means = bins.means();
/// assert_eq!(means[0], (0.0, Some(2.0)));   // bin [0, 100)
/// assert_eq!(means[1], (100.0, None));      // empty bin
/// assert_eq!(means[2], (200.0, Some(10.0)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedMean {
    bin_width: f64,
    bins: Vec<(f64, u64)>, // (sum_y, count)
}

impl BinnedMean {
    /// Creates an accumulator with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not strictly positive and finite.
    #[must_use]
    pub fn new(bin_width: f64) -> Self {
        assert!(
            bin_width > 0.0 && bin_width.is_finite(),
            "bin width must be positive and finite"
        );
        BinnedMean {
            bin_width,
            bins: Vec::new(),
        }
    }

    /// Bin width.
    #[must_use]
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Records an observation. Negative `x` clamps into the first bin.
    pub fn add(&mut self, x: f64, y: f64) {
        let idx = (x.max(0.0) / self.bin_width).floor() as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, (0.0, 0));
        }
        let (sum, count) = &mut self.bins[idx];
        *sum += y;
        *count += 1;
    }

    /// Per-bin `(bin_start_x, mean_y)`; `None` mean for empty bins.
    #[must_use]
    pub fn means(&self) -> Vec<(f64, Option<f64>)> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &(sum, count))| {
                let x = i as f64 * self.bin_width;
                let mean = (count > 0).then(|| sum / count as f64);
                (x, mean)
            })
            .collect()
    }

    /// Number of observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.bins.iter().map(|&(_, c)| c).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_accumulate_independently() {
        let mut b = BinnedMean::new(10.0);
        b.add(0.0, 2.0);
        b.add(9.99, 4.0);
        b.add(10.0, 100.0);
        let means = b.means();
        assert_eq!(means[0].1, Some(3.0));
        assert_eq!(means[1].1, Some(100.0));
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn negative_x_clamps_to_first_bin() {
        let mut b = BinnedMean::new(1.0);
        b.add(-5.0, 7.0);
        assert_eq!(b.means()[0].1, Some(7.0));
    }

    #[test]
    fn empty_accumulator() {
        let b = BinnedMean::new(1.0);
        assert!(b.means().is_empty());
        assert_eq!(b.count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        let _ = BinnedMean::new(0.0);
    }
}
