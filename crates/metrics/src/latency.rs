//! Fixed-point latency distribution summaries.

use crate::percentile::Percentiles;
use serde::{Deserialize, Serialize};

/// The latency distribution view every serving report exposes: count, mean,
/// and the paper's named order statistics (P50/P95/P99) plus the extremes.
///
/// Built once from a sample via [`Percentiles`]; units follow the sample
/// (this repo always summarizes milliseconds).
///
/// # Examples
///
/// ```
/// use marconi_metrics::LatencySummary;
///
/// let s = LatencySummary::new(&[10.0, 20.0, 30.0, 40.0]).unwrap();
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 25.0);
/// assert_eq!(s.p50(), 25.0);
/// assert_eq!(s.max(), 40.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    count: usize,
    mean: f64,
    p50: f64,
    p95: f64,
    p99: f64,
    min: f64,
    max: f64,
}

impl LatencySummary {
    /// Summarizes a sample; returns `None` for an empty sample or one
    /// containing NaN (same domain as [`Percentiles::new`]).
    #[must_use]
    pub fn new(values: &[f64]) -> Option<Self> {
        let p = Percentiles::new(values)?;
        Some(LatencySummary {
            count: p.len(),
            mean: values.iter().sum::<f64>() / values.len() as f64,
            p50: p.median(),
            p95: p.p95(),
            p99: p.p99(),
            min: p.min(),
            max: p.max(),
        })
    }

    /// Number of samples summarized.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Median (50th percentile).
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.p50
    }

    /// 95th percentile — the paper's headline tail statistic.
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.p95
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.p99
    }

    /// Minimum sample value.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum sample value.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={:.1} p95={:.1} p99={:.1} max={:.1}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_nan_rejected() {
        assert!(LatencySummary::new(&[]).is_none());
        assert!(LatencySummary::new(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn summary_matches_percentiles() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = LatencySummary::new(&values).unwrap();
        let p = Percentiles::new(&values).unwrap();
        assert_eq!(s.count(), 100);
        assert_eq!(s.mean(), 50.5);
        assert_eq!(s.p50(), p.median());
        assert_eq!(s.p95(), p.p95());
        assert_eq!(s.p99(), p.p99());
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
    }

    #[test]
    fn single_sample_is_degenerate() {
        let s = LatencySummary::new(&[42.0]).unwrap();
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.p50(), 42.0);
        assert_eq!(s.p99(), 42.0);
    }

    #[test]
    fn display_names_the_tail() {
        let s = LatencySummary::new(&[1.0, 2.0]).unwrap().to_string();
        assert!(s.contains("p95"), "got {s}");
    }
}
