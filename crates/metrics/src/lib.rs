//! Statistics utilities for serving experiments.
//!
//! Small, dependency-free implementations of exactly the aggregations the
//! Marconi evaluation reports: order-statistic percentiles (P5/P50/P95
//! TTFT), empirical CDFs (Fig. 9, Fig. 10b), five-number box statistics
//! with P5/P95 whiskers (Fig. 7), binned means (Fig. 10a), running
//! summaries, load-imbalance statistics for the sharded-cluster
//! experiments ([`LoadImbalance`]), the latency distribution view
//! every serving report shares ([`LatencySummary`], with SLO attainment
//! via [`Percentiles::fraction_le`]), and the device/host tier breakdown
//! of the tiered cache's hits ([`TierSplit`]).
//!
//! # Examples
//!
//! ```
//! use marconi_metrics::Percentiles;
//!
//! let p = Percentiles::new(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
//! assert_eq!(p.median(), 3.0);
//! assert_eq!(p.quantile(1.0), 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binned;
mod boxstats;
mod cdf;
mod imbalance;
mod latency;
mod percentile;
mod summary;
mod tier;

pub use binned::BinnedMean;
pub use boxstats::BoxStats;
pub use cdf::Cdf;
pub use imbalance::LoadImbalance;
pub use latency::LatencySummary;
pub use percentile::Percentiles;
pub use summary::Summary;
pub use tier::TierSplit;
