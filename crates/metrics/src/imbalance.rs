//! Load-imbalance statistics for sharded-cluster experiments.

use serde::{Deserialize, Serialize};

/// How unevenly a quantity (routed tokens, requests, bytes) is spread
/// across the replicas of a cluster.
///
/// The headline number is [`factor`](LoadImbalance::factor) — the classic
/// *imbalance factor* `max / mean`, 1.0 for a perfectly balanced cluster
/// and up to `n` when one of `n` replicas carries everything. The
/// coefficient of variation ([`cv`](LoadImbalance::cv)) complements it with
/// a spread measure that is not dominated by a single outlier.
///
/// # Examples
///
/// ```
/// use marconi_metrics::LoadImbalance;
///
/// let balanced = LoadImbalance::new(&[10.0, 10.0, 10.0]).unwrap();
/// assert_eq!(balanced.factor(), 1.0);
/// assert_eq!(balanced.cv(), 0.0);
///
/// let skewed = LoadImbalance::new(&[30.0, 0.0, 0.0]).unwrap();
/// assert_eq!(skewed.factor(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadImbalance {
    min: f64,
    max: f64,
    mean: f64,
    cv: f64,
}

impl LoadImbalance {
    /// Computes imbalance statistics over per-replica loads.
    ///
    /// Returns `None` for an empty slice. An all-zero cluster (no load
    /// anywhere) is defined as perfectly balanced: `factor() == 1.0`,
    /// `cv() == 0.0`.
    #[must_use]
    pub fn new(loads: &[f64]) -> Option<LoadImbalance> {
        if loads.is_empty() {
            return None;
        }
        let n = loads.len() as f64;
        let mean = loads.iter().sum::<f64>() / n;
        let min = loads.iter().copied().fold(f64::INFINITY, f64::min);
        let max = loads.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let var = loads.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        Some(LoadImbalance { min, max, mean, cv })
    }

    /// The lightest replica's load.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// The heaviest replica's load.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Mean load per replica.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Imbalance factor `max / mean` (≥ 1.0; 1.0 = perfectly balanced).
    #[must_use]
    pub fn factor(&self) -> f64 {
        if self.mean > 0.0 {
            self.max / self.mean
        } else {
            1.0
        }
    }

    /// Coefficient of variation: population standard deviation over mean
    /// (0.0 = perfectly balanced).
    #[must_use]
    pub fn cv(&self) -> f64 {
        self.cv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_yields_none() {
        assert!(LoadImbalance::new(&[]).is_none());
    }

    #[test]
    fn balanced_cluster_scores_one() {
        let b = LoadImbalance::new(&[5.0, 5.0, 5.0, 5.0]).unwrap();
        assert_eq!(b.factor(), 1.0);
        assert_eq!(b.cv(), 0.0);
        assert_eq!(b.min(), 5.0);
        assert_eq!(b.max(), 5.0);
        assert_eq!(b.mean(), 5.0);
    }

    #[test]
    fn fully_skewed_cluster_scores_n() {
        let s = LoadImbalance::new(&[0.0, 0.0, 0.0, 40.0]).unwrap();
        assert_eq!(s.factor(), 4.0);
        assert!(s.cv() > 1.0);
    }

    #[test]
    fn idle_cluster_counts_as_balanced() {
        let z = LoadImbalance::new(&[0.0, 0.0]).unwrap();
        assert_eq!(z.factor(), 1.0);
        assert_eq!(z.cv(), 0.0);
    }

    #[test]
    fn moderate_skew_sits_between() {
        let m = LoadImbalance::new(&[10.0, 20.0, 30.0]).unwrap();
        assert!((m.mean() - 20.0).abs() < 1e-12);
        assert!((m.factor() - 1.5).abs() < 1e-12);
        assert!(m.cv() > 0.0 && m.cv() < 1.0);
    }
}
