//! Cost of the flight recorder on the serving hot path.
//!
//! The off-is-free contract (docs/observability.md) promises that an
//! unattached tracer — and an attached [`NullSink`] — cost one predicted
//! branch per emit site. This bench prices that promise on the worst case
//! for tracing: an at-capacity two-tier replay where every insert runs
//! eviction episodes (the most event-dense decision path), swept three
//! ways over the identical seeded workload:
//!
//! * `no_sink` — the baseline, `Tracer::off()` as built;
//! * `null_sink` — a `NullSink` attached (must stay within noise of the
//!   baseline; CI gates on ≤ 3%);
//! * `ring_recorder` — a live bounded [`RingRecorder`], the documented
//!   price of actually recording (event construction + one mutex + ring
//!   push per decision).
//!
//! Results print as `ops/sec` lines and are written machine-readably to
//! `BENCH_9.json` at the repo root. Criterion then registers one timed
//! case per arm so regressions show in ordinary bench comparisons.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use marconi_core::{EvictionPolicy, HybridPrefixCache, PrefixCache};
use marconi_model::ModelConfig;
use marconi_trace::{NullSink, RingRecorder, Tracer};
use marconi_workload::{DatasetKind, Trace, TraceGenerator};
use std::time::Instant;

/// Tokens of device capacity — small enough that the seeded trace keeps
/// the cache saturated, so steady state runs eviction on most inserts.
const CAPACITY_TOKENS: u64 = 9_000;
const MEASURE_PASSES: usize = 200;
/// Best-of repetitions per arm, interleaved round-robin so frequency
/// scaling and page-cache warmup hit every arm alike.
const REPS: usize = 5;

fn workload() -> Trace {
    TraceGenerator::new(DatasetKind::Lmsys)
        .sessions(12)
        .seed(7)
        .generate()
}

fn at_capacity_cache(tracer: Option<Tracer>) -> HybridPrefixCache {
    let m = ModelConfig::hybrid_7b();
    let capacity = CAPACITY_TOKENS * m.kv_bytes_per_token();
    let mut cache = HybridPrefixCache::builder(m)
        .capacity_bytes(capacity)
        .host_capacity_bytes(capacity / 2)
        .policy(EvictionPolicy::FlopAware { alpha: 2.0 })
        .build();
    if let Some(t) = tracer {
        cache.set_tracer(t);
    }
    cache
}

/// One replay pass: the engine loop (lookup + admit) over every request,
/// with arrivals offset so recency keeps advancing across passes.
fn replay_pass(cache: &mut HybridPrefixCache, trace: &Trace, pass: usize) {
    let base = pass as f64 * 1e4;
    for r in &trace.requests {
        black_box(cache.lookup_at(&r.input, base + r.arrival));
        cache.insert_at(&r.input, &r.output, base + r.arrival);
    }
}

/// Requests/sec of `MEASURE_PASSES` at-capacity replays after a warmup
/// pass that fills the cache to saturation.
fn replay_ops_per_sec(cache: &mut HybridPrefixCache, trace: &Trace) -> f64 {
    replay_pass(cache, trace, 0);
    let start = Instant::now();
    for pass in 1..=MEASURE_PASSES {
        replay_pass(cache, trace, pass);
    }
    (MEASURE_PASSES * trace.len()) as f64 / start.elapsed().as_secs_f64()
}

fn run_sweep_and_write_json() {
    let trace = workload();

    // Warm the process (allocator, page cache, branch predictors) off the
    // books, and prove the workload actually saturates capacity.
    let mut warm = at_capacity_cache(None);
    replay_ops_per_sec(&mut warm, &trace);
    assert!(
        warm.stats().evictions > 0,
        "the sweep must run at capacity for the comparison to be worst-case"
    );

    let mut best = [0.0f64; 3];
    let mut events = 0u64;
    for _ in 0..REPS {
        let mut no_sink = at_capacity_cache(None);
        best[0] = best[0].max(replay_ops_per_sec(&mut no_sink, &trace));
        let mut null = at_capacity_cache(Some(Tracer::to_sink(NullSink).0));
        best[1] = best[1].max(replay_ops_per_sec(&mut null, &trace));
        let (traced, recorder) = Tracer::to_sink(RingRecorder::new(1 << 16));
        let mut ring = at_capacity_cache(Some(traced));
        best[2] = best[2].max(replay_ops_per_sec(&mut ring, &trace));
        events = recorder.lock().map(|r| r.recorded()).unwrap_or_default();
    }
    let [off_ops, null_ops, ring_ops] = best;
    println!("obs_overhead/no_sink: {off_ops:.0} ops/sec");
    println!("obs_overhead/null_sink: {null_ops:.0} ops/sec");
    println!("obs_overhead/ring_recorder: {ring_ops:.0} ops/sec ({events} events recorded)");

    let pct = |traced_ops: f64| (1.0 - traced_ops / off_ops.max(f64::MIN_POSITIVE)) * 100.0;
    let null_overhead = pct(null_ops);
    let ring_overhead = pct(ring_ops);
    println!(
        "obs_overhead/[overhead] null_sink {null_overhead:+.2}% ring_recorder {ring_overhead:+.2}% vs no sink"
    );

    // Hand-formatted snapshot (serde_json is not vendored); flat schema
    // for the CI trend tooling. CI gates null_sink_overhead_pct <= 3.
    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"model\": \"hybrid_7b\",\n  \
         \"capacity_tokens\": {CAPACITY_TOKENS},\n  \
         \"requests_per_pass\": {},\n  \"measure_passes\": {MEASURE_PASSES},\n  \
         \"no_sink_ops_per_sec\": {off_ops:.0},\n  \
         \"null_sink_ops_per_sec\": {null_ops:.0},\n  \
         \"ring_recorder_ops_per_sec\": {ring_ops:.0},\n  \
         \"null_sink_overhead_pct\": {null_overhead:.2},\n  \
         \"ring_recorder_overhead_pct\": {ring_overhead:.2},\n  \
         \"ring_events_recorded\": {events}\n}}\n",
        trace.len(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_9.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("obs_overhead: wrote {path}"),
        Err(e) => eprintln!("obs_overhead: could not write {path}: {e}"),
    }
}

fn bench_obs_overhead(c: &mut Criterion) {
    run_sweep_and_write_json();

    let trace = workload();
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.bench_function("replay_no_sink", |b| {
        let mut cache = at_capacity_cache(None);
        replay_pass(&mut cache, &trace, 0);
        let mut pass = 1;
        b.iter(|| {
            replay_pass(&mut cache, &trace, pass);
            pass += 1;
        });
    });
    group.bench_function("replay_null_sink", |b| {
        let mut cache = at_capacity_cache(Some(Tracer::to_sink(NullSink).0));
        replay_pass(&mut cache, &trace, 0);
        let mut pass = 1;
        b.iter(|| {
            replay_pass(&mut cache, &trace, pass);
            pass += 1;
        });
    });
    group.bench_function("replay_ring_recorder", |b| {
        let (tracer, _recorder) = Tracer::to_sink(RingRecorder::new(1 << 16));
        let mut cache = at_capacity_cache(Some(tracer));
        replay_pass(&mut cache, &trace, 0);
        let mut pass = 1;
        b.iter(|| {
            replay_pass(&mut cache, &trace, pass);
            pass += 1;
        });
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
