//! Multi-threaded throughput of the sharded concurrent cache front-end.
//!
//! Three measurements, each swept over 1–32 threads against one
//! [`ShardedCache`]:
//!
//! * `read_probe` — router-style non-mutating probes
//!   (`longest_cached_prefix_len`) through shard *read* locks: the path
//!   that must scale with reader count, since read locks on distinct (and
//!   even the same) shard never exclude each other.
//! * `mixed_insert` — executor-style write traffic (`lookup_at` +
//!   `insert_at`) with each thread driving its own sessions; distinct
//!   sessions hash to distinct shards, so writers serialize only within a
//!   shard.
//! * `eviction_pressure` — single-threaded inserts against a
//!   capacity-saturated cache, every insertion forcing eviction work (the
//!   same steady state as the `eviction_pressure` bench, re-measured here
//!   so the JSON snapshot is self-contained).
//!
//! Results print as `ops/sec` lines and are written machine-readably to
//! `BENCH_6.json` at the repo root, together with the read-side scaling
//! factor from 1→8 threads and the core count (on single-core hosts the
//! curve is flat by construction — threads add no parallelism, only
//! scheduling overhead — so the scaling factor must be read alongside
//! `cores`).
//!
//! The sweep runs once up front (Instant-based, like the other benches'
//! `[ratio]` lines); criterion then registers one timed case per path so
//! regressions in per-op cost still show up in criterion's own output.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use marconi_core::{
    EvictionPolicy, HybridPrefixCache, HybridPrefixCacheBuilder, PrefixCache, ShardedCache,
};
use marconi_model::ModelConfig;
use marconi_radix::Token;
use std::time::Instant;

const THREAD_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];
const SHARDS: usize = 16;
const SESSIONS: u32 = 512;
/// Tokens per cached session chain (input + first-turn output).
const SESSION_TOKENS: u32 = 64;

fn builder() -> HybridPrefixCacheBuilder {
    // Pure Transformer so per-node footprint is token KVs only — keeps the
    // prefilled working set at SESSIONS live chains.
    HybridPrefixCache::builder(ModelConfig::transformer_7b())
        .capacity_bytes(1 << 40)
        .policy(EvictionPolicy::FlopAware { alpha: 2.0 })
}

fn session_input(s: u32) -> Vec<Token> {
    let base = s * 10_000;
    (base..base + SESSION_TOKENS - 16).collect()
}

fn session_output(s: u32) -> Vec<Token> {
    let base = s * 10_000 + 5_000;
    (base..base + 16).collect()
}

/// A sharded cache prewarmed with every session's first turn.
fn prewarmed() -> ShardedCache {
    let cache = ShardedCache::new(builder(), SHARDS);
    for s in 0..SESSIONS {
        cache.insert_at(&session_input(s), &session_output(s), f64::from(s));
    }
    cache
}

/// Cheap deterministic per-thread sequence of session ids.
fn next_session(state: &mut u64) -> u32 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 33) % u64::from(SESSIONS)) as u32
}

/// Total ops/sec of `threads` readers probing cached prefixes.
fn read_probe_ops_per_sec(cache: &ShardedCache, threads: usize, ops_per_thread: usize) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let mut rng = t as u64 + 0x5EED;
                let mut acc = 0u64;
                for _ in 0..ops_per_thread {
                    let s = next_session(&mut rng);
                    acc += cache.longest_cached_prefix_len(&session_input(s));
                }
                black_box(acc);
            });
        }
    });
    (threads * ops_per_thread) as f64 / start.elapsed().as_secs_f64()
}

/// Total ops/sec of `threads` writers each running lookup+insert turns on
/// its own session range (one op = one lookup + one insert).
fn mixed_insert_ops_per_sec(cache: &ShardedCache, threads: usize, ops_per_thread: usize) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                for i in 0..ops_per_thread as u32 {
                    let s = (t as u32 * 4_096 + i) % SESSIONS;
                    let mut turn = session_input(s);
                    turn.extend_from_slice(&session_output(s));
                    turn.extend([1_000_000 + t as u32 * 1_000 + i]);
                    black_box(cache.lookup_at(&turn, f64::from(i)));
                    cache.insert_at(&turn, &[2_000_000 + i], f64::from(i));
                }
            });
        }
    });
    (threads * ops_per_thread) as f64 / start.elapsed().as_secs_f64()
}

/// Single-threaded inserts at steady-state capacity, every one evicting —
/// the `eviction_pressure` snapshot for the JSON report. Returns
/// `(ops_per_sec, live_nodes, evictions_during_measurement)`.
fn eviction_pressure_snapshot() -> (f64, u64, u64) {
    let model = ModelConfig::transformer_7b();
    let capacity = 10_000u64 * 20 * model.kv_bytes_per_token();
    let mut cache = HybridPrefixCache::builder(model)
        .capacity_bytes(capacity)
        .policy(EvictionPolicy::FlopAware { alpha: 2.0 })
        .build();
    let mut next = 0u32;
    let mut insert_one = |cache: &mut HybridPrefixCache| {
        next = next.wrapping_add(1);
        let base = next.wrapping_mul(1_000);
        let input: Vec<Token> = (base..base + 16).collect();
        let output: Vec<Token> = (base + 500_000..base + 500_004).collect();
        cache.insert_at(&input, &output, f64::from(next));
    };
    while cache.usage_bytes() + 21 * cache.model().kv_bytes_per_token() <= cache.capacity_bytes() {
        insert_one(&mut cache);
    }
    let evictions_before = cache.stats().evictions;
    const OPS: usize = 2_000;
    let start = Instant::now();
    for _ in 0..OPS {
        insert_one(&mut cache);
    }
    let ops_per_sec = OPS as f64 / start.elapsed().as_secs_f64();
    (
        ops_per_sec,
        cache.node_count() as u64,
        cache.stats().evictions - evictions_before,
    )
}

fn json_curve(points: &[(usize, f64)]) -> String {
    let entries: Vec<String> = points
        .iter()
        .map(|(t, ops)| format!("    {{ \"threads\": {t}, \"ops_per_sec\": {ops:.0} }}"))
        .collect();
    format!("[\n{}\n  ]", entries.join(",\n"))
}

fn run_sweep_and_write_json() {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let cache = prewarmed();

    let mut read_curve = Vec::new();
    for &t in &THREAD_COUNTS {
        // Fixed total work per configuration so wall time stays flat as
        // threads grow.
        let ops = 200_000 / t;
        let ops_per_sec = read_probe_ops_per_sec(&cache, t, ops);
        println!("concurrent_throughput/read_probe threads={t}: {ops_per_sec:.0} ops/sec");
        read_curve.push((t, ops_per_sec));
    }
    let mut mixed_curve = Vec::new();
    for &t in &THREAD_COUNTS {
        let ops = 8_000 / t;
        let ops_per_sec = mixed_insert_ops_per_sec(&cache, t, ops);
        println!("concurrent_throughput/mixed_insert threads={t}: {ops_per_sec:.0} ops/sec");
        mixed_curve.push((t, ops_per_sec));
    }
    let at = |curve: &[(usize, f64)], t: usize| {
        curve
            .iter()
            .find(|(n, _)| *n == t)
            .map_or(0.0, |(_, ops)| *ops)
    };
    let read_scaling = at(&read_curve, 8) / at(&read_curve, 1).max(f64::MIN_POSITIVE);
    println!(
        "concurrent_throughput/[scaling] read_probe 1->8 threads: {read_scaling:.2}x on {cores} core(s)"
    );

    let (pressure_ops, live_nodes, evictions) = eviction_pressure_snapshot();
    println!(
        "concurrent_throughput/eviction_pressure: {pressure_ops:.0} inserts/sec at {live_nodes} live nodes ({evictions} evictions)"
    );

    // Hand-formatted snapshot (serde_json is not vendored); schema kept
    // flat and stable for the CI trend tooling.
    let json = format!(
        "{{\n  \"bench\": \"concurrent_throughput\",\n  \"model\": \"transformer_7b\",\n  \
         \"shards\": {SHARDS},\n  \"sessions\": {SESSIONS},\n  \"cores\": {cores},\n  \
         \"read_probe\": {},\n  \"mixed_insert\": {},\n  \
         \"read_scaling_1_to_8\": {read_scaling:.3},\n  \"eviction_pressure\": {{\n    \
         \"insert_evicting_ops_per_sec\": {pressure_ops:.0},\n    \
         \"live_nodes\": {live_nodes},\n    \"evictions_measured\": {evictions}\n  }}\n}}\n",
        json_curve(&read_curve),
        json_curve(&mixed_curve),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_6.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("concurrent_throughput: wrote {path}"),
        Err(e) => eprintln!("concurrent_throughput: could not write {path}: {e}"),
    }
}

fn bench_concurrent_paths(c: &mut Criterion) {
    run_sweep_and_write_json();

    // Criterion-tracked per-op costs (single- and multi-threaded batches)
    // so ordinary bench comparisons catch regressions in either path.
    let cache = prewarmed();
    let mut group = c.benchmark_group("concurrent_throughput");
    group.sample_size(10);
    group.bench_function("read_probe_1_thread_x1000", |b| {
        b.iter(|| black_box(read_probe_ops_per_sec(&cache, 1, 1_000)))
    });
    group.bench_function("read_probe_8_threads_x125", |b| {
        b.iter(|| black_box(read_probe_ops_per_sec(&cache, 8, 125)))
    });
    group.bench_function("mixed_insert_4_threads_x50", |b| {
        b.iter(|| black_box(mixed_insert_ops_per_sec(&cache, 4, 50)))
    });
    group.finish();
}

criterion_group!(benches, bench_concurrent_paths);
criterion_main!(benches);
