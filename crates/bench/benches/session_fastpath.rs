//! Price of the session-cursor fast path (PR 10).
//!
//! Multi-turn sessions extend the previous prompt, so without cursors
//! every turn re-walks the radix tree from the root for the lookup match,
//! the pin match, the speculative probe, and the full insert — four
//! O(prompt) walks per request, quadratic over a session. With the
//! engine's per-session [`CursorTable`] each turn resumes from the
//! previous admission's end node and walks only the delta tokens.
//!
//! The sweep replays seeded session traces of 8, 32, and 128 turns
//! (128-token turns over a 256-token opener) through two identically
//! configured engines at capacity — cursors disabled (`rootwalk`, the
//! pre-PR behavior via a zero-capacity table) and enabled (`cursor`) —
//! and reports engine requests/sec plus the speedup. Results are
//! byte-identical across arms (asserted per sweep, and pinned by the
//! parity suite in `marconi-core`); only the walk cost changes. Written
//! machine-readably to `BENCH_10.json`; CI gates `speedup_128_turns ≥ 5`.

use criterion::{criterion_group, criterion_main, Criterion};
use marconi_core::{EvictionPolicy, HybridPrefixCache, PrefixCache};
use marconi_model::ModelConfig;
use marconi_sim::{Engine, GpuModel};
use marconi_workload::{Request, Trace};
use std::time::Instant;

/// Concurrent sessions per trace.
const SESSIONS: u64 = 8;
/// Tokens in each session's opening prompt.
const OPENER_TOKENS: u32 = 256;
/// New tokens per turn (split half input extension, half decoded output).
const TURN_TOKENS: u32 = 128;
/// Turn counts swept; the last is the headline (CI gates its speedup).
const TURN_SWEEP: [u32; 3] = [8, 32, 128];
/// Best-of repetitions per arm, interleaved so warmup hits both alike.
const REPS: usize = 3;

/// SplitMix64 — deterministic token stream, no RNG state to carry.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A multi-turn chat trace: every request's input is the full history
/// (previous input + previous output + this turn's new user tokens), the
/// access pattern the session fast path exists for. Sessions interleave
/// round-robin, like concurrent conversations hitting one engine.
fn session_trace(turns: u32, seed: u64) -> Trace {
    let token = |s: u64, i: u64| (mix(seed ^ (s << 32) ^ i) % 50_000) as u32;
    let mut histories: Vec<Vec<u32>> = (0..SESSIONS)
        .map(|s| (0..u64::from(OPENER_TOKENS)).map(|i| token(s, i)).collect())
        .collect();
    let mut requests = Vec::with_capacity((SESSIONS * u64::from(turns)) as usize);
    let mut id = 0u64;
    for turn in 0..turns {
        for (s, history) in histories.iter_mut().enumerate() {
            let base = history.len() as u64;
            let new_user: Vec<u32> = (0..u64::from(TURN_TOKENS) / 2)
                .map(|i| token(s as u64, base + i))
                .collect();
            history.extend(&new_user);
            let input = history.clone();
            let output: Vec<u32> = (0..u64::from(TURN_TOKENS) / 2)
                .map(|i| token(s as u64, base + 1_000_000 + i))
                .collect();
            history.extend(&output);
            requests.push(Request {
                id,
                session_id: s as u64,
                tenant_id: 0,
                turn,
                arrival: id as f64,
                input,
                output,
            });
            id += 1;
        }
    }
    Trace {
        name: format!("session-fastpath-{turns}t"),
        requests,
    }
}

fn cache_with_capacity(capacity: u64) -> HybridPrefixCache {
    HybridPrefixCache::builder(ModelConfig::hybrid_7b())
        .capacity_bytes(capacity)
        .policy(EvictionPolicy::FlopAware { alpha: 2.0 })
        .build()
}

/// Capacity that saturates by the end of the replay: the trace's full
/// footprint (KVs plus every speculated SSM checkpoint, measured by an
/// uncapped calibration replay) shaved by ~1.5%, so occupancy climbs to
/// 100% and the tail runs real eviction episodes in both arms. Naive
/// token-count sizing would undercount the checkpoints and leave the
/// cache permanently over capacity, turning every insert into an
/// O(nodes) victim scan that swamps the walk cost the bench isolates
/// (an evicted resume path just falls back — parity either way).
fn at_capacity_bytes(trace: &Trace) -> u64 {
    let mut engine = Engine::new(cache_with_capacity(u64::MAX / 2), GpuModel::a100_x4());
    engine.run(trace);
    let footprint = engine.cache().stats().peak_usage_bytes;
    footprint - footprint / 64
}

/// Engine requests/sec replaying `trace` once from a cold cache, with the
/// session table sized by `cursor_capacity` (0 = root-walk baseline).
/// Returns the rate and the final token hit count (the parity probe).
fn engine_ops_per_sec(trace: &Trace, capacity: u64, cursor_capacity: usize) -> (f64, u64) {
    let mut engine = Engine::new(cache_with_capacity(capacity), GpuModel::a100_x4());
    engine.set_session_cursor_capacity(cursor_capacity);
    let start = Instant::now();
    let report = engine.run(trace);
    let rate = trace.len() as f64 / start.elapsed().as_secs_f64();
    drop(report);
    (rate, engine.cache().stats().hit_tokens)
}

fn run_sweep_and_write_json() {
    let mut lines = String::new();
    let mut headline_speedup = 0.0f64;
    for turns in TURN_SWEEP {
        let trace = session_trace(turns, 7);
        let capacity = at_capacity_bytes(&trace);
        // Off-the-books warmup (allocator, page cache, predictors).
        engine_ops_per_sec(&trace, capacity, 0);
        let mut rootwalk = 0.0f64;
        let mut cursor = 0.0f64;
        let mut parity = (0, 0);
        for _ in 0..REPS {
            let (r, hr) = engine_ops_per_sec(&trace, capacity, 0);
            rootwalk = rootwalk.max(r);
            let (c, hc) = engine_ops_per_sec(&trace, capacity, 4096);
            cursor = cursor.max(c);
            parity = (hr, hc);
        }
        assert_eq!(
            parity.0, parity.1,
            "cursor arm must hit exactly the tokens the root walk hits ({turns} turns)"
        );
        let speedup = cursor / rootwalk.max(f64::MIN_POSITIVE);
        if turns == TURN_SWEEP[TURN_SWEEP.len() - 1] {
            headline_speedup = speedup;
        }
        println!(
            "session_fastpath/{turns}_turns: rootwalk {rootwalk:.0} ops/sec, \
             cursor {cursor:.0} ops/sec ({speedup:.2}x)"
        );
        lines.push_str(&format!(
            "  \"rootwalk_ops_per_sec_{turns}_turns\": {rootwalk:.0},\n  \
             \"cursor_ops_per_sec_{turns}_turns\": {cursor:.0},\n  \
             \"speedup_{turns}_turns\": {speedup:.2},\n"
        ));
    }
    // Hand-formatted snapshot (serde_json is not vendored); flat schema
    // for the CI trend tooling. CI gates speedup_128_turns >= 5.
    let json = format!(
        "{{\n  \"bench\": \"session_fastpath\",\n  \"model\": \"hybrid_7b\",\n  \
         \"sessions\": {SESSIONS},\n  \"opener_tokens\": {OPENER_TOKENS},\n  \
         \"turn_tokens\": {TURN_TOKENS},\n{lines}  \
         \"headline_speedup\": {headline_speedup:.2}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_10.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("session_fastpath: wrote {path}"),
        Err(e) => eprintln!("session_fastpath: could not write {path}: {e}"),
    }
}

fn bench_session_fastpath(c: &mut Criterion) {
    run_sweep_and_write_json();

    let turns = TURN_SWEEP[1];
    let trace = session_trace(turns, 7);
    let capacity = at_capacity_bytes(&trace);
    let mut group = c.benchmark_group("session_fastpath");
    group.sample_size(10);
    group.bench_function("replay_rootwalk_32_turns", |b| {
        b.iter(|| engine_ops_per_sec(&trace, capacity, 0));
    });
    group.bench_function("replay_cursor_32_turns", |b| {
        b.iter(|| engine_ops_per_sec(&trace, capacity, 4096));
    });
    group.finish();
}

criterion_group!(benches, bench_session_fastpath);
criterion_main!(benches);
