//! Criterion bench for the eviction hot path at large tree sizes.
//!
//! Demonstrates the asymptotic contract of the incremental candidate index:
//! victim selection costs O(live candidates) per pressure episode, not
//! O(arena slots × victims).
//!
//! Groups:
//!
//! * `candidate_enumeration` — collecting the candidate set from the
//!   incremental index vs. re-deriving it by scanning every arena slot
//!   (the pre-refactor pattern), on a churned tree whose arena is ~10×
//!   its live set.
//! * `victim_selection` — one pressure episode picking 64 victims: the
//!   pre-refactor per-victim re-scan + fresh FLOP math vs. the
//!   score-once-then-rescan-cheaply episode structure. A `[ratio]` line
//!   prints the measured speedup.
//! * `cache_eviction_storm` — end to end: `HybridPrefixCache` in steady
//!   state at ≥ 10k live nodes, every insertion forcing evictions.
//!
//! Sizes default to 10k nodes so the CI smoke run stays fast; set
//! `EVICTION_PRESSURE_FULL=1` to sweep 10k–100k.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use marconi_core::{EvictionPolicy, HybridPrefixCache, PrefixCache};
use marconi_model::ModelConfig;
use marconi_radix::{NodeId, RadixTree, Token};
use std::time::Instant;

fn sizes() -> Vec<usize> {
    if std::env::var("EVICTION_PRESSURE_FULL").is_ok() {
        vec![10_000, 30_000, 100_000]
    } else {
        vec![10_000]
    }
}

/// A tree of `n` short sequences in groups of 8 sharing a prefix, giving a
/// realistic branch-heavy shape: ~n leaves plus ~n/8 branch nodes.
fn build_tree(n: usize) -> RadixTree<()> {
    let mut tree: RadixTree<()> = RadixTree::new();
    for i in 0..n as u32 {
        let group = i / 8;
        let seq: Vec<Token> = vec![
            group * 31 + 1,
            group * 17 + 2,
            group * 13 + 3,
            group * 7 + 4,
            i * 97 + 5,
            i * 89 + 6,
            i * 83 + 7,
            i * 79 + 8,
        ];
        tree.insert(&seq);
    }
    tree
}

/// Like `build_tree`, then removes ~90% of the leaves so the arena holds
/// ~10× more slots than live nodes — the steady state of a long-running
/// cache, where arena scans hurt the most.
fn build_churned_tree(n: usize) -> RadixTree<()> {
    let mut tree = build_tree(n);
    let victims: Vec<NodeId> = tree
        .node_ids()
        .filter(|&id| tree.is_leaf(id) && (id.index() % 10 != 0))
        .collect();
    for id in victims {
        let _ = tree.remove(id);
    }
    tree
}

fn bench_candidate_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_enumeration");
    for &n in &sizes() {
        let tree = build_churned_tree(n);
        group.bench_with_input(BenchmarkId::new("indexed", n), &tree, |b, tree| {
            b.iter(|| black_box(tree.eviction_candidates().count()));
        });
        group.bench_with_input(BenchmarkId::new("arena_scan", n), &tree, |b, tree| {
            // Pre-refactor: walk every arena slot and re-test child counts.
            b.iter(|| {
                black_box(
                    tree.node_ids()
                        .filter(|&id| tree.child_count(id) <= 1)
                        .count(),
                )
            });
        });
    }
    group.finish();
}

/// Emulates scoring one eviction candidate the pre-refactor way: fresh
/// FLOP-saved math against the node's parent, per victim round.
fn fresh_score(tree: &RadixTree<()>, model: &ModelConfig, id: NodeId) -> f64 {
    let freed = if tree.is_leaf(id) {
        tree.edge_len(id) * model.kv_bytes_per_token()
    } else {
        0
    };
    if freed == 0 {
        return f64::INFINITY;
    }
    let parent_depth = tree.parent(id).map(|p| tree.depth(p)).unwrap_or(0);
    let delta = model.flops_saved(tree.depth(id)) - model.flops_saved(parent_depth);
    delta as f64 / freed as f64
}

fn bench_victim_selection(c: &mut Criterion) {
    const VICTIMS: usize = 64;
    let model = ModelConfig::hybrid_7b();
    let mut group = c.benchmark_group("victim_selection");
    group.sample_size(10);

    let episode_rescan = |tree: &RadixTree<()>| -> f64 {
        // Pre-refactor pattern: per victim, re-collect candidates from an
        // arena scan and re-derive every score from the model's FLOP math.
        let mut acc = 0.0;
        for _ in 0..VICTIMS {
            let best = tree
                .node_ids()
                .filter(|&id| tree.child_count(id) <= 1)
                .map(|id| fresh_score(tree, &model, id))
                .fold(f64::INFINITY, f64::min);
            acc += best;
        }
        acc
    };
    let episode_indexed = |tree: &RadixTree<()>| -> f64 {
        // Refactored pattern: collect the pool once from the incremental
        // index, score each node once, then rescan only the cheap memoized
        // scores per victim (min-max normalization forces the per-victim
        // rescan; the win is dropping the arena walk and the FLOP math).
        let pool: Vec<f64> = tree
            .eviction_candidates()
            .map(|id| fresh_score(tree, &model, id))
            .collect();
        let mut acc = 0.0;
        for _ in 0..VICTIMS {
            acc += pool.iter().copied().fold(f64::INFINITY, f64::min);
        }
        acc
    };

    for &n in &sizes() {
        let tree = build_churned_tree(n);
        group.bench_with_input(
            BenchmarkId::new("rescan_per_victim", n),
            &tree,
            |b, tree| b.iter(|| black_box(episode_rescan(tree))),
        );
        group.bench_with_input(BenchmarkId::new("indexed_episode", n), &tree, |b, tree| {
            b.iter(|| black_box(episode_indexed(tree)))
        });

        // One explicit measured ratio so the asymptotic win is visible
        // without comparing criterion lines by hand.
        let t0 = Instant::now();
        black_box(episode_rescan(&tree));
        let rescan = t0.elapsed();
        let t1 = Instant::now();
        black_box(episode_indexed(&tree));
        let indexed = t1.elapsed();
        println!(
            "victim_selection/[ratio] n={n}: rescan {:?} / indexed {:?} = {:.1}x",
            rescan,
            indexed,
            rescan.as_secs_f64() / indexed.as_secs_f64().max(f64::MIN_POSITIVE)
        );
    }
    group.finish();
}

fn bench_cache_eviction_storm(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_eviction_storm");
    group.sample_size(10);
    for &n in &sizes() {
        // Pure Transformer so per-node footprint is just the 20-token edge
        // KVs (hybrid SSM checkpoints are ~MBs each and would cap the live
        // node count far below `n`).
        let model = ModelConfig::transformer_7b();
        // Capacity for ~n live leaves of 20 tokens each: every insertion at
        // steady state forces eviction work.
        let capacity = (n as u64) * 20 * model.kv_bytes_per_token();
        let mut cache = HybridPrefixCache::builder(model)
            .capacity_bytes(capacity)
            .policy(EvictionPolicy::FlopAware { alpha: 2.0 })
            .build();
        let mut next = 0u32;
        let mut insert_one = move |cache: &mut HybridPrefixCache| {
            next = next.wrapping_add(1);
            let base = next.wrapping_mul(1_000);
            let input: Vec<Token> = (base..base + 16).collect();
            let output: Vec<Token> = (base + 500_000..base + 500_004).collect();
            cache.insert_at(&input, &output, f64::from(next));
            cache.stats().evictions
        };
        // Fill to steady state (usage pinned at capacity).
        while cache.usage_bytes() + 21 * cache.model().kv_bytes_per_token()
            <= cache.capacity_bytes()
        {
            insert_one(&mut cache);
        }
        group.bench_function(BenchmarkId::new("insert_evicting", n), |b| {
            b.iter(|| black_box(insert_one(&mut cache)))
        });
        println!(
            "cache_eviction_storm n={n}: {} live nodes at capacity, {} evictions during bench",
            cache.node_count(),
            cache.stats().evictions
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_candidate_enumeration,
    bench_victim_selection,
    bench_cache_eviction_storm
);
criterion_main!(benches);
