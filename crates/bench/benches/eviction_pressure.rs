//! Criterion bench for the eviction hot path at large tree sizes.
//!
//! Demonstrates the asymptotic contract of the incremental candidate index:
//! victim selection costs O(live candidates) per pressure episode, not
//! O(arena slots × victims).
//!
//! Groups:
//!
//! * `candidate_enumeration` — collecting the candidate set from the
//!   incremental index vs. re-deriving it by scanning every arena slot
//!   (the pre-refactor pattern), on a churned tree whose arena is ~10×
//!   its live set.
//! * `victim_selection` — one pressure episode picking 64 victims: the
//!   pre-refactor per-victim re-scan + fresh FLOP math vs. the
//!   score-once-then-rescan-cheaply episode structure. A `[ratio]` line
//!   prints the measured speedup.
//! * `cache_eviction_storm` — end to end: `HybridPrefixCache` in steady
//!   state at ≥ 10k live nodes, every insertion forcing evictions.
//! * `engine_replay` — the arena engine's O(log n) recency-index victim
//!   pops vs the pre-PR 8 selection pattern (stamp in the payload, one
//!   O(candidates) min-scan per victim) on an identical pre-baked
//!   at-capacity op stream (90/10 insert/match, every insert evicting the
//!   coldest candidates back down to the node budget) at 10k and 100k
//!   live nodes (1M with `EVICTION_PRESSURE_FULL=1`). Both arms run on
//!   the arena engine — the verbatim `legacy` oracle was retired in PR 10
//!   once the differential safety net had served its purpose — so the
//!   curve isolates the victim-selection asymptotics alone. A second
//!   probe pair compares root-walk matches against cursor-resumed
//!   matches ([`cursor_at`](RadixTree::cursor_at) + `match_prefix_from`)
//!   over the same probe set. Writes the measured curve to
//!   `BENCH_8.json` at the repo root (the `event_sim` bench merges its
//!   section into the same file).
//!
//! Sizes default to 10k nodes so the CI smoke run stays fast; set
//! `EVICTION_PRESSURE_FULL=1` to sweep 10k–100k (and 10k–1M for
//! `engine_replay`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use marconi_core::{EvictionPolicy, HybridPrefixCache, PrefixCache};
use marconi_model::ModelConfig;
use marconi_radix::{NodeId, RadixTree, Token};
use std::time::Instant;

fn sizes() -> Vec<usize> {
    if std::env::var("EVICTION_PRESSURE_FULL").is_ok() {
        vec![10_000, 30_000, 100_000]
    } else {
        vec![10_000]
    }
}

/// A tree of `n` short sequences in groups of 8 sharing a prefix, giving a
/// realistic branch-heavy shape: ~n leaves plus ~n/8 branch nodes.
fn build_tree(n: usize) -> RadixTree<()> {
    let mut tree: RadixTree<()> = RadixTree::new();
    for i in 0..n as u32 {
        let group = i / 8;
        let seq: Vec<Token> = vec![
            group * 31 + 1,
            group * 17 + 2,
            group * 13 + 3,
            group * 7 + 4,
            i * 97 + 5,
            i * 89 + 6,
            i * 83 + 7,
            i * 79 + 8,
        ];
        tree.insert(&seq);
    }
    tree
}

/// Like `build_tree`, then removes ~90% of the leaves so the arena holds
/// ~10× more slots than live nodes — the steady state of a long-running
/// cache, where arena scans hurt the most.
fn build_churned_tree(n: usize) -> RadixTree<()> {
    let mut tree = build_tree(n);
    let victims: Vec<NodeId> = tree
        .node_ids()
        .filter(|&id| tree.is_leaf(id) && (id.index() % 10 != 0))
        .collect();
    for id in victims {
        let _ = tree.remove(id);
    }
    tree
}

fn bench_candidate_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_enumeration");
    for &n in &sizes() {
        let tree = build_churned_tree(n);
        group.bench_with_input(BenchmarkId::new("indexed", n), &tree, |b, tree| {
            b.iter(|| black_box(tree.eviction_candidates().count()));
        });
        group.bench_with_input(BenchmarkId::new("arena_scan", n), &tree, |b, tree| {
            // Pre-refactor: walk every arena slot and re-test child counts.
            b.iter(|| {
                black_box(
                    tree.node_ids()
                        .filter(|&id| tree.child_count(id) <= 1)
                        .count(),
                )
            });
        });
    }
    group.finish();
}

/// Emulates scoring one eviction candidate the pre-refactor way: fresh
/// FLOP-saved math against the node's parent, per victim round.
fn fresh_score(tree: &RadixTree<()>, model: &ModelConfig, id: NodeId) -> f64 {
    let freed = if tree.is_leaf(id) {
        tree.edge_len(id) * model.kv_bytes_per_token()
    } else {
        0
    };
    if freed == 0 {
        return f64::INFINITY;
    }
    let parent_depth = tree.parent(id).map(|p| tree.depth(p)).unwrap_or(0);
    let delta = model.flops_saved(tree.depth(id)) - model.flops_saved(parent_depth);
    delta as f64 / freed as f64
}

fn bench_victim_selection(c: &mut Criterion) {
    const VICTIMS: usize = 64;
    let model = ModelConfig::hybrid_7b();
    let mut group = c.benchmark_group("victim_selection");
    group.sample_size(10);

    let episode_rescan = |tree: &RadixTree<()>| -> f64 {
        // Pre-refactor pattern: per victim, re-collect candidates from an
        // arena scan and re-derive every score from the model's FLOP math.
        let mut acc = 0.0;
        for _ in 0..VICTIMS {
            let best = tree
                .node_ids()
                .filter(|&id| tree.child_count(id) <= 1)
                .map(|id| fresh_score(tree, &model, id))
                .fold(f64::INFINITY, f64::min);
            acc += best;
        }
        acc
    };
    let episode_indexed = |tree: &RadixTree<()>| -> f64 {
        // Refactored pattern: collect the pool once from the incremental
        // index, score each node once, then rescan only the cheap memoized
        // scores per victim (min-max normalization forces the per-victim
        // rescan; the win is dropping the arena walk and the FLOP math).
        let pool: Vec<f64> = tree
            .eviction_candidates()
            .map(|id| fresh_score(tree, &model, id))
            .collect();
        let mut acc = 0.0;
        for _ in 0..VICTIMS {
            acc += pool.iter().copied().fold(f64::INFINITY, f64::min);
        }
        acc
    };

    for &n in &sizes() {
        let tree = build_churned_tree(n);
        group.bench_with_input(
            BenchmarkId::new("rescan_per_victim", n),
            &tree,
            |b, tree| b.iter(|| black_box(episode_rescan(tree))),
        );
        group.bench_with_input(BenchmarkId::new("indexed_episode", n), &tree, |b, tree| {
            b.iter(|| black_box(episode_indexed(tree)))
        });

        // One explicit measured ratio so the asymptotic win is visible
        // without comparing criterion lines by hand.
        let t0 = Instant::now();
        black_box(episode_rescan(&tree));
        let rescan = t0.elapsed();
        let t1 = Instant::now();
        black_box(episode_indexed(&tree));
        let indexed = t1.elapsed();
        println!(
            "victim_selection/[ratio] n={n}: rescan {:?} / indexed {:?} = {:.1}x",
            rescan,
            indexed,
            rescan.as_secs_f64() / indexed.as_secs_f64().max(f64::MIN_POSITIVE)
        );
    }
    group.finish();
}

fn bench_cache_eviction_storm(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_eviction_storm");
    group.sample_size(10);
    for &n in &sizes() {
        // Pure Transformer so per-node footprint is just the 20-token edge
        // KVs (hybrid SSM checkpoints are ~MBs each and would cap the live
        // node count far below `n`).
        let model = ModelConfig::transformer_7b();
        // Capacity for ~n live leaves of 20 tokens each: every insertion at
        // steady state forces eviction work.
        let capacity = (n as u64) * 20 * model.kv_bytes_per_token();
        let mut cache = HybridPrefixCache::builder(model)
            .capacity_bytes(capacity)
            .policy(EvictionPolicy::FlopAware { alpha: 2.0 })
            .build();
        let mut next = 0u32;
        let mut insert_one = move |cache: &mut HybridPrefixCache| {
            next = next.wrapping_add(1);
            let base = next.wrapping_mul(1_000);
            let input: Vec<Token> = (base..base + 16).collect();
            let output: Vec<Token> = (base + 500_000..base + 500_004).collect();
            cache.insert_at(&input, &output, f64::from(next));
            cache.stats().evictions
        };
        // Fill to steady state (usage pinned at capacity).
        while cache.usage_bytes() + 21 * cache.model().kv_bytes_per_token()
            <= cache.capacity_bytes()
        {
            insert_one(&mut cache);
        }
        group.bench_function(BenchmarkId::new("insert_evicting", n), |b| {
            b.iter(|| black_box(insert_one(&mut cache)))
        });
        println!(
            "cache_eviction_storm n={n}: {} live nodes at capacity, {} evictions during bench",
            cache.node_count(),
            cache.stats().evictions
        );
    }
    group.finish();
}

// ---------------------------------------------------------------------------
// engine_replay: arena engine vs the verbatim pre-refactor engine.
// ---------------------------------------------------------------------------

/// splitmix64: deterministic trace generation without external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One pre-baked replay op. Both engines replay the identical stream;
/// evictions are implicit (each insert evicts the coldest candidates until
/// the tree is back under its node budget, as a cache at capacity would).
enum ReplayOp {
    Insert(Vec<Token>),
    Match(Vec<Token>),
}

/// Two victim-selection strategies behind one replay interface, both on
/// the arena engine:
///
/// * the indexed arm `touch`es the O(log n) recency index and evicts by
///   popping the index's coldest entry;
/// * the scan arm reproduces the pre-PR 8 shape — the stamp lives in the
///   payload and every victim costs an O(candidates) min-scan (the
///   retired `legacy` oracle had no recency structure at all).
trait Engine: Default {
    type Id: Copy;
    fn insert_seq(&mut self, seq: &[Token]) -> (Self::Id, u64);
    fn touch_node(&mut self, id: Self::Id, stamp: u64);
    /// Removes the coldest eviction candidate, returning its arena index.
    fn evict_coldest(&mut self) -> Option<usize>;
    fn match_len(&self, seq: &[Token]) -> u64;
    fn live(&self) -> usize;
}

impl Engine for RadixTree<()> {
    type Id = NodeId;

    fn insert_seq(&mut self, seq: &[Token]) -> (NodeId, u64) {
        let out = self.insert(seq);
        (out.end_node, out.added_tokens)
    }

    fn touch_node(&mut self, id: NodeId, stamp: u64) {
        self.touch(id, stamp);
    }

    fn evict_coldest(&mut self) -> Option<usize> {
        let id = self.lru_candidates().next()?.1;
        self.remove(id).ok().map(|_| id.index())
    }

    fn match_len(&self, seq: &[Token]) -> u64 {
        self.match_prefix(seq).matched_len
    }

    fn live(&self) -> usize {
        self.len()
    }
}

/// The scan arm: an arena tree whose payload carries the recency stamp,
/// with victims selected by a per-victim min-scan — byte-identical victim
/// order to the indexed arm (stamps are unique, so the `(stamp, index)`
/// key totally orders candidates the same way the recency index does).
#[derive(Default)]
struct ScanEvictTree(RadixTree<u64>);

impl Engine for ScanEvictTree {
    type Id = NodeId;

    fn insert_seq(&mut self, seq: &[Token]) -> (NodeId, u64) {
        let out = self.0.insert(seq);
        (out.end_node, out.added_tokens)
    }

    fn touch_node(&mut self, id: NodeId, stamp: u64) {
        *self.0.data_mut(id) = stamp;
    }

    fn evict_coldest(&mut self) -> Option<usize> {
        // Pre-refactor victim selection: ignore the recency index and pay
        // a full min-scan over the candidate set per victim (the shape of
        // the cache's scored pool loop before PR 8's LRU fast path).
        let id = self
            .0
            .eviction_candidates()
            .min_by_key(|&id| (*self.0.data(id), id.index()))?;
        self.0.remove(id).ok().map(|_| id.index())
    }

    fn match_len(&self, seq: &[Token]) -> u64 {
        self.0.match_prefix(seq).matched_len
    }

    fn live(&self) -> usize {
        self.0.len()
    }
}

/// Fork-and-extend trace with long edges (64–320 fresh tokens per insert):
/// most inserts fork a prior sequence mid-edge, so the pre-refactor engine
/// pays an O(edge) `Vec` clone per split where the arena engine does O(1)
/// offset arithmetic. Returns `(build, measured)`: `build` grows a scratch
/// arena tree to exactly `target_live` nodes, `measured` is the
/// at-capacity steady-state segment (90% insert / 10% match; every insert
/// evicts back down to the node budget during replay).
fn engine_replay_trace(
    seed: u64,
    target_live: usize,
    measured_ops: usize,
) -> (Vec<ReplayOp>, Vec<ReplayOp>) {
    let mut rng = Rng(seed);
    let mut history: Vec<Vec<Token>> = Vec::new();
    let mut fresh: Token = 1 << 16;
    let mut scratch: RadixTree<()> = RadixTree::new();
    let insert_op = |rng: &mut Rng, history: &mut Vec<Vec<Token>>, fresh: &mut Token| {
        let mut seq: Vec<Token> = if history.is_empty() || rng.below(8) == 0 {
            vec![(rng.below(64) + 1) as Token]
        } else {
            let base = &history[rng.below(history.len() as u64) as usize];
            let cut = 1 + rng.below(base.len() as u64) as usize;
            base[..cut].to_vec()
        };
        for _ in 0..64 + rng.below(256) {
            seq.push(*fresh);
            *fresh += 1;
        }
        if history.len() < 512 {
            history.push(seq.clone());
        } else {
            let slot = rng.below(512) as usize;
            history[slot] = seq.clone();
        }
        seq
    };

    let mut build = Vec::new();
    while scratch.live() < target_live {
        let seq = insert_op(&mut rng, &mut history, &mut fresh);
        scratch.insert(&seq);
        build.push(ReplayOp::Insert(seq));
    }
    let mut measured = Vec::with_capacity(measured_ops);
    for _ in 0..measured_ops {
        if rng.below(100) < 90 {
            measured.push(ReplayOp::Insert(insert_op(
                &mut rng,
                &mut history,
                &mut fresh,
            )));
        } else {
            let base = &history[rng.below(history.len() as u64) as usize];
            let cut = 1 + rng.below(base.len() as u64) as usize;
            measured.push(ReplayOp::Match(base[..cut].to_vec()));
        }
    }
    (build, measured)
}

/// Replays `ops` against a node `budget`: every inserted end node is
/// touched with a monotone recency stamp, then the coldest candidates are
/// evicted until the tree is back under budget — the cache-at-capacity
/// loop both engines served in production. Returns a checksum over added
/// tokens, victim arena indices, and match lengths; because both slabs
/// allocate LIFO in the same order, the checksum is byte-comparable across
/// engines and doubles as a lockstep assertion.
fn replay<E: Engine>(tree: &mut E, ops: &[ReplayOp], budget: usize, stamp: &mut u64) -> u64 {
    let mut checksum = 0u64;
    for op in ops {
        match op {
            ReplayOp::Insert(seq) => {
                let (id, added) = tree.insert_seq(seq);
                *stamp += 1;
                tree.touch_node(id, *stamp);
                checksum = checksum.wrapping_add(added);
                while tree.live() > budget {
                    match tree.evict_coldest() {
                        Some(idx) => checksum = checksum.wrapping_add(idx as u64),
                        None => break,
                    }
                }
            }
            ReplayOp::Match(seq) => {
                checksum = checksum.wrapping_add(tree.match_len(seq));
            }
        }
    }
    checksum
}

/// Builds to size (untimed, unbounded budget), then replays the measured
/// segment (timed) with the budget pinned at the built size, so every
/// insert pays the eviction path. Returns `(ops_per_sec,
/// live_nodes_at_start, checksum)`.
fn measure_engine<E: Engine>(build: &[ReplayOp], measured: &[ReplayOp]) -> (f64, usize, u64) {
    let mut tree = E::default();
    let mut stamp = 0u64;
    replay(&mut tree, build, usize::MAX, &mut stamp);
    let live = tree.live();
    let started = Instant::now();
    let checksum = replay(&mut tree, measured, live, &mut stamp);
    let wall = started.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
    (measured.len() as f64 / wall, live, checksum)
}

fn replay_sizes() -> Vec<usize> {
    if std::env::var("EVICTION_PRESSURE_FULL").is_ok() {
        vec![10_000, 100_000, 1_000_000]
    } else {
        vec![10_000, 100_000]
    }
}

const REPLAY_SEED: u64 = 0xBE8;

/// Measured-segment length, scaled down as the tree grows so the scan
/// arm's O(candidates)-per-victim cost keeps the sweep bounded (~2e9
/// candidate visits per size regardless of n).
fn replay_measured_ops(n: usize) -> usize {
    (2_000_000_000 / n).clamp(2_000, 20_000)
}

/// One-shot sweep: measures both victim-selection arms at each size,
/// prints `[ratio]` lines, and writes the curve to `BENCH_8.json`
/// (hand-formatted; the `event_sim` bench appends its section to the
/// same file).
fn run_replay_sweep_and_write_json() {
    let mut rows = Vec::new();
    for &n in &replay_sizes() {
        let measured_ops = replay_measured_ops(n);
        let (build, measured) = engine_replay_trace(REPLAY_SEED, n, measured_ops);
        let (scan_ops, scan_live, scan_sum) = measure_engine::<ScanEvictTree>(&build, &measured);
        let (arena_ops, arena_live, arena_sum) = measure_engine::<RadixTree<()>>(&build, &measured);
        assert_eq!(
            (arena_live, arena_sum),
            (scan_live, scan_sum),
            "victim-selection arms diverged on the bench trace at n={n}"
        );
        let speedup = arena_ops / scan_ops.max(f64::MIN_POSITIVE);
        println!(
            "engine_replay/[ratio] n={n} ({arena_live} live nodes): \
             indexed {arena_ops:.0} ops/s / scan {scan_ops:.0} ops/s = {speedup:.1}x"
        );
        rows.push(format!(
            "    {{ \"live_nodes\": {arena_live}, \"ops\": {measured_ops}, \
             \"scan_ops_per_sec\": {scan_ops:.0}, \
             \"arena_ops_per_sec\": {arena_ops:.0}, \"speedup\": {speedup:.2} }}"
        ));
    }
    // Hand-formatted snapshot (serde_json is not vendored); flat schema,
    // same convention as BENCH_6.json.
    let json = format!(
        "{{\n  \"bench\": \"engine_replay\",\n  \
         \"trace\": \"fork-extend at-capacity steady state, seed {REPLAY_SEED}, \
         90/10 insert/match, evict-to-budget per insert\",\n  \"sizes\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_8.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("engine_replay: wrote {path}"),
        Err(e) => eprintln!("engine_replay: could not write {path}: {e}"),
    }
}

fn bench_engine_replay(c: &mut Criterion) {
    run_replay_sweep_and_write_json();

    // Criterion-tracked non-mutating probes on one 10k-node tree: each
    // probe extends a previously-inserted sequence by a fresh suffix, the
    // follow-up-turn shape the PR 10 session cursor exists for. The
    // rootwalk arm matches from the root (O(prompt)); the cursor arm
    // resumes from a cursor minted at the base sequence's end node
    // (O(suffix)), so ordinary bench comparisons catch regressions in
    // either walk without rebuilding state per iteration.
    let (build, _) = engine_replay_trace(REPLAY_SEED, 10_000, 0);
    let mut stamp = 0u64;
    let mut arena: RadixTree<()> = RadixTree::default();
    replay(&mut arena, &build, usize::MAX, &mut stamp);
    let probes: Vec<(marconi_radix::MatchCursor, Vec<Token>)> = {
        let mut rng = Rng(REPLAY_SEED ^ 0xABCD);
        let seqs: Vec<&Vec<Token>> = build
            .iter()
            .filter_map(|op| match op {
                ReplayOp::Insert(seq) => Some(seq),
                _ => None,
            })
            .collect();
        (0..256)
            .map(|_| {
                let base = seqs[rng.below(seqs.len() as u64) as usize];
                let m = arena.match_prefix(base);
                assert_eq!(
                    m.matched_len as usize,
                    base.len(),
                    "build tree is unevicted"
                );
                let end = m.deepest().expect("non-empty sequences end at a node");
                let cursor = arena.cursor_at(end).expect("live node mints a cursor");
                let mut probe = base.clone();
                probe.extend((0..8).map(|_| (rng.next() % 50_000) as Token));
                (cursor, probe)
            })
            .collect()
    };
    let rootwalk_sum: u64 = probes
        .iter()
        .map(|(_, p)| arena.match_prefix(p).matched_len)
        .sum();
    let cursor_sum: u64 = probes
        .iter()
        .map(|(c, p)| {
            arena
                .match_prefix_from(c, p)
                .expect("fresh cursor")
                .matched_len
        })
        .sum();
    assert_eq!(
        rootwalk_sum, cursor_sum,
        "cursor resume must match the root walk"
    );

    let mut group = c.benchmark_group("engine_replay");
    group.sample_size(10);
    group.bench_function("match_rootwalk_10k_x256", |b| {
        b.iter(|| {
            let sum: u64 = probes
                .iter()
                .map(|(_, p)| arena.match_prefix(p).matched_len)
                .sum();
            black_box(sum)
        })
    });
    group.bench_function("match_cursor_10k_x256", |b| {
        b.iter(|| {
            let sum: u64 = probes
                .iter()
                .map(|(c, p)| {
                    arena
                        .match_prefix_from(c, p)
                        .expect("fresh cursor")
                        .matched_len
                })
                .sum();
            black_box(sum)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_candidate_enumeration,
    bench_victim_selection,
    bench_cache_eviction_storm,
    bench_engine_replay
);
criterion_main!(benches);
