//! Criterion benches for the radix-tree substrate: insert, longest-prefix
//! match, and speculative insertion on trees populated with realistic
//! multi-turn sequences.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use marconi_radix::{RadixTree, Token};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a tree holding `sessions` conversation histories that share a
/// common system prompt.
fn populated_tree(sessions: u32, turns: u32, turn_len: u64) -> (RadixTree<u64>, Vec<Vec<Token>>) {
    let mut rng = StdRng::seed_from_u64(99);
    let prompt: Vec<Token> = (0..512).map(|_| rng.gen_range(0..50_000)).collect();
    let mut tree = RadixTree::new();
    let mut finals = Vec::new();
    for _ in 0..sessions {
        let mut history = prompt.clone();
        for _ in 0..turns {
            history.extend((0..turn_len).map(|_| rng.gen_range(0..50_000u32)));
            tree.insert(&history);
        }
        finals.push(history);
    }
    (tree, finals)
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("radix_insert");
    for &len in &[256u64, 1024, 4096] {
        group.throughput(Throughput::Elements(len));
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter_batched(
                || {
                    (0..len)
                        .map(|_| rng.gen_range(0..50_000u32))
                        .collect::<Vec<Token>>()
                },
                |seq| {
                    let mut tree: RadixTree<u64> = RadixTree::new();
                    tree.insert(black_box(&seq));
                    tree
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_match_prefix(c: &mut Criterion) {
    let (tree, finals) = populated_tree(64, 6, 512);
    let mut group = c.benchmark_group("radix_match_prefix");
    group.throughput(Throughput::Elements(finals[0].len() as u64));
    group.bench_function("hit_full_history", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % finals.len();
            black_box(tree.match_prefix(&finals[i]))
        });
    });
    group.bench_function("miss_cold_sequence", |b| {
        let cold: Vec<Token> = (1_000_000..1_004_096).collect();
        b.iter(|| black_box(tree.match_prefix(&cold)));
    });
    group.finish();
}

fn bench_speculative_insert(c: &mut Criterion) {
    let (tree, finals) = populated_tree(64, 6, 512);
    c.bench_function("radix_speculate_insert", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % finals.len();
            // A shared-prompt request that diverges after the prompt.
            let mut req = finals[i][..512].to_vec();
            req.extend(2_000_000..2_000_128);
            black_box(tree.speculate_insert(&req))
        });
    });
}

criterion_group!(
    benches,
    bench_insert,
    bench_match_prefix,
    bench_speculative_insert
);
criterion_main!(benches);
