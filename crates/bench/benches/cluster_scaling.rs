//! Criterion bench for the sharded-cluster replay across replica counts
//! and routing policies.
//!
//! Sweeps replicas ∈ {1, 2, 4, 8} × {round-robin, session-affinity,
//! prefix-aware} over one seeded multi-tenant trace at fixed *total*
//! capacity, so the sweep isolates the placement effect: more replicas
//! never add memory, they only fragment it.
//!
//! Besides the wall-time lines, a `cluster_scaling/[sweep]` line per
//! configuration prints the aggregate token hit rate and the load-imbalance
//! factor — the qualitative result (prefix-aware ≥ session-affinity ≥
//! round-robin) should be visible directly in the output. The CI smoke run
//! uses the default sizes; set `CLUSTER_SCALING_FULL=1` for a larger trace.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use marconi_core::EvictionPolicy;
use marconi_model::ModelConfig;
use marconi_sim::{Cluster, RoutingPolicy};
use marconi_workload::{DatasetKind, Trace, TraceGenerator};

const GB: u64 = 1_000_000_000;

fn trace() -> Trace {
    let sessions = if std::env::var("CLUSTER_SCALING_FULL").is_ok() {
        96
    } else {
        24
    };
    TraceGenerator::new(DatasetKind::ShareGpt)
        .sessions(sessions)
        .tenants(8)
        .seed(21)
        .generate()
}

fn cluster(replicas: usize, routing: RoutingPolicy) -> Cluster {
    Cluster::builder(ModelConfig::hybrid_7b())
        .replicas(replicas)
        .total_capacity_bytes(2 * GB)
        // Static α: marconi-flavored eviction without per-iteration tuner
        // replays dominating the measurement.
        .policy(EvictionPolicy::FlopAware { alpha: 2.0 })
        .routing(routing)
        .build()
}

fn bench_cluster_scaling(c: &mut Criterion) {
    let trace = trace();
    let mut group = c.benchmark_group("cluster_replay");
    group.sample_size(10);
    for &n in &[1usize, 2, 4, 8] {
        for routing in RoutingPolicy::ALL {
            group.bench_with_input(BenchmarkId::new(routing.to_string(), n), &n, |b, &n| {
                b.iter(|| {
                    let mut cluster = cluster(n, routing);
                    black_box(cluster.run(&trace).aggregate_stats().hit_tokens)
                });
            });
            let mut sweep = cluster(n, routing);
            let report = sweep.run(&trace);
            println!(
                "cluster_scaling/[sweep] n={n} {routing}: hit rate {:.1}%, imbalance {:.2}",
                report.aggregate_token_hit_rate() * 100.0,
                report.load_imbalance().map_or(1.0, |i| i.factor()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cluster_scaling);
criterion_main!(benches);
