//! Criterion bench for the tiered device/host cache hot paths.
//!
//! Exercises the two paths the tiering refactor added on top of the PR 2
//! eviction machinery:
//!
//! * `demotion_pipeline` — steady-state insertions under device pressure,
//!   single-tier deletion vs. tiered demotion (the demotion path must stay
//!   in the same O(candidates)-per-episode envelope: it reuses the victim
//!   pool and only flips residency, never touching tree structure).
//! * `reload_lookup` — lookups that hit demoted (host-resident) prefixes,
//!   paying the host-share walk, vs. device-resident hits on the same
//!   tree shape.
//! * `offload_storm` — end to end: a tiered cache at steady state where
//!   every insertion demotes, host pressure deletes, and every third
//!   lookup reloads.
//!
//! Sizes default to 10k sequences so the CI smoke run stays fast; set
//! `TIER_OFFLOAD_FULL=1` to sweep 10k–100k.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use marconi_core::{EvictionPolicy, HybridPrefixCache, PrefixCache};
use marconi_model::ModelConfig;
use marconi_radix::Token;

fn sizes() -> Vec<usize> {
    if std::env::var("TIER_OFFLOAD_FULL").is_ok() {
        vec![10_000, 30_000, 100_000]
    } else {
        vec![10_000]
    }
}

/// A pure-Transformer cache (per-node footprint is just edge KVs, so the
/// live-node count tracks `n`) whose device tier fits ~n 20-token
/// sequences.
fn build_cache(n: usize, host_capacity: u64) -> HybridPrefixCache {
    let model = ModelConfig::transformer_7b();
    let capacity = (n as u64) * 20 * model.kv_bytes_per_token();
    HybridPrefixCache::builder(model)
        .capacity_bytes(capacity)
        .host_capacity_bytes(host_capacity)
        .policy(EvictionPolicy::FlopAware { alpha: 2.0 })
        .build()
}

fn seq_for(i: u32) -> (Vec<Token>, Vec<Token>) {
    let base = i.wrapping_mul(1_000);
    let input: Vec<Token> = (base..base + 16).collect();
    let output: Vec<Token> = (base + 500_000..base + 500_004).collect();
    (input, output)
}

/// Fills the cache to steady state (usage pinned at device capacity).
fn fill(cache: &mut HybridPrefixCache, next: &mut u32) {
    let kv = cache.model().kv_bytes_per_token();
    while cache.usage_bytes() + 21 * kv <= cache.capacity_bytes() {
        *next = next.wrapping_add(1);
        let (input, output) = seq_for(*next);
        cache.insert_at(&input, &output, f64::from(*next));
    }
}

fn bench_demotion_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("demotion_pipeline");
    group.sample_size(10);
    for &n in &sizes() {
        // Host budget = device budget, so the tiered variant reaches a
        // bounded steady state (demotions overflow into host evictions)
        // instead of growing the tree during measurement.
        let device = (n as u64) * 20 * ModelConfig::transformer_7b().kv_bytes_per_token();
        for (label, host) in [("delete_single_tier", 0u64), ("demote_tiered", device)] {
            let mut cache = build_cache(n, host);
            let mut next = 0u32;
            fill(&mut cache, &mut next);
            group.bench_function(BenchmarkId::new(label, n), |b| {
                b.iter(|| {
                    next = next.wrapping_add(1);
                    let (input, output) = seq_for(next);
                    cache.insert_at(&input, &output, f64::from(next));
                    black_box(cache.stats().demotions + cache.stats().evictions)
                })
            });
        }
    }
    group.finish();
}

fn bench_reload_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("reload_lookup");
    group.sample_size(10);
    for &n in &sizes() {
        // Tiered cache where roughly half the inserted sequences have been
        // demoted: alternating lookups hit device- and host-resident
        // prefixes on the same tree shape.
        let mut cache = build_cache(n / 2, u64::MAX >> 1);
        let mut next = 0u32;
        fill(&mut cache, &mut next);
        let cold_end = next;
        // A second wave doubles the working set: the first wave demotes.
        for _ in 0..cold_end {
            next = next.wrapping_add(1);
            let (input, output) = seq_for(next);
            cache.insert_at(&input, &output, f64::from(next));
        }
        assert!(cache.stats().demotions > 0, "pressure must demote");
        let mut i = 0u32;
        group.bench_function(BenchmarkId::new("host_hit", n), |b| {
            b.iter(|| {
                // Wave-1 ids: demoted (host) prefixes.
                i = (i + 1) % cold_end.max(1);
                let (input, _) = seq_for(i + 1);
                black_box(cache.longest_cached_prefix_len(&input))
            })
        });
        let mut j = 0u32;
        group.bench_function(BenchmarkId::new("device_hit", n), |b| {
            b.iter(|| {
                // Wave-2 ids: device-resident prefixes.
                j = (j + 1) % cold_end.max(1);
                let (input, _) = seq_for(cold_end + j + 1);
                black_box(cache.longest_cached_prefix_len(&input))
            })
        });
    }
    group.finish();
}

fn bench_offload_storm(c: &mut Criterion) {
    let mut group = c.benchmark_group("offload_storm");
    group.sample_size(10);
    for &n in &sizes() {
        // Host tier fits only a quarter of the device tier: insertions
        // demote, demotions overflow, host pressure deletes.
        let model = ModelConfig::transformer_7b();
        let host = (n as u64 / 4) * 20 * model.kv_bytes_per_token();
        let mut cache = build_cache(n, host);
        let mut next = 0u32;
        fill(&mut cache, &mut next);
        let mut i = 0u32;
        group.bench_function(BenchmarkId::new("insert_demote_reload", n), |b| {
            b.iter(|| {
                next = next.wrapping_add(1);
                let (input, output) = seq_for(next);
                cache.insert_at(&input, &output, f64::from(next));
                i += 1;
                if i.is_multiple_of(3) {
                    // Revisit an older sequence: often a host hit.
                    let (old, _) = seq_for(next.wrapping_sub(64));
                    black_box(cache.lookup_at(&old, f64::from(next)).host_tokens);
                }
                black_box(cache.host_usage_bytes())
            })
        });
        println!(
            "offload_storm n={n}: {} demotions, {} host evictions, host usage {} MiB",
            cache.stats().demotions,
            cache.stats().host_evictions,
            cache.host_usage_bytes() >> 20
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_demotion_pipeline,
    bench_reload_lookup,
    bench_offload_storm
);
criterion_main!(benches);
