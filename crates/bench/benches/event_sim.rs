//! Criterion bench for the discrete-event serving simulator.
//!
//! Measures wall time of `EventSim::run` — the full virtual-clock loop:
//! FIFO admission, chunked-prefill/decode iteration scheduling, cache
//! lookups at admission and insertions at completion — on a seeded
//! ShareGPT-like trace, in both service modes:
//!
//! * `modeled/saturated`: arrivals compressed 20× over a 4×A100 device, so
//!   queues form and the batch stays full (the regime docs/latency.md
//!   studies);
//! * `instantaneous`: the zero-load parity limit (most iterations, one per
//!   decode token, no batching overlap).
//!
//! A `event_sim/[sweep]` line per configuration prints simulated events
//! (iterations) and requests per wall-second. The CI smoke run uses the
//! default size (~10k events); set `EVENT_SIM_FULL=1` for the ~100k-event
//! trace.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use marconi_core::{EvictionPolicy, HybridPrefixCache};
use marconi_model::ModelConfig;
use marconi_sim::{EventSim, GpuModel};
use marconi_workload::{DatasetKind, Trace, TraceGenerator};
use std::time::Instant;

fn trace() -> Trace {
    let sessions = if std::env::var("EVENT_SIM_FULL").is_ok() {
        160
    } else {
        40
    };
    TraceGenerator::new(DatasetKind::ShareGpt)
        .sessions(sessions)
        .seed(29)
        .generate()
}

fn cache() -> HybridPrefixCache {
    HybridPrefixCache::builder(ModelConfig::hybrid_7b())
        .capacity_bytes(4 << 30)
        .policy(EvictionPolicy::FlopAware { alpha: 2.0 })
        .build()
}

fn bench_event_sim(c: &mut Criterion) {
    let base = trace();
    let saturated = base.time_scaled(20.0);
    let mut group = c.benchmark_group("event_sim");
    group.sample_size(10);
    group.bench_function("modeled/saturated", |b| {
        b.iter(|| {
            let mut sim = EventSim::new(cache(), GpuModel::a100_x4());
            black_box(sim.run(&saturated).cache_stats.hit_tokens)
        });
    });
    group.bench_function("instantaneous", |b| {
        b.iter(|| {
            let mut sim = EventSim::instantaneous(cache());
            black_box(sim.run(&base).cache_stats.hit_tokens)
        });
    });
    group.finish();

    for (label, t, modeled) in [
        ("modeled/saturated", &saturated, true),
        ("instantaneous", &base, false),
    ] {
        let mut sim = if modeled {
            EventSim::new(cache(), GpuModel::a100_x4())
        } else {
            EventSim::instantaneous(cache())
        };
        let started = Instant::now();
        let report = sim.run(t);
        let wall = started.elapsed().as_secs_f64();
        println!(
            "event_sim/[sweep] {label}: {} requests, {} events, {:.0} req/s, {:.2e} events/s",
            report.records.len(),
            report.iterations,
            report.records.len() as f64 / wall,
            report.iterations as f64 / wall,
        );
    }
}

criterion_group!(benches, bench_event_sim);
criterion_main!(benches);
