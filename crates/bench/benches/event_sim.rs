//! Criterion bench for the discrete-event serving simulator.
//!
//! Measures wall time of `EventSim::run` — the full virtual-clock loop:
//! FIFO admission, chunked-prefill/decode iteration scheduling, cache
//! lookups at admission and insertions at completion — on a seeded
//! ShareGPT-like trace, in both service modes:
//!
//! * `modeled/saturated`: arrivals compressed 20× over a 4×A100 device, so
//!   queues form and the batch stays full (the regime docs/latency.md
//!   studies);
//! * `instantaneous`: the zero-load parity limit (most iterations, one per
//!   decode token, no batching overlap).
//!
//! A `event_sim/[sweep]` line per configuration prints simulated events
//! (iterations) and requests per wall-second. The CI smoke run uses the
//! default size (~10k events); set `EVENT_SIM_FULL=1` for the ~100k-event
//! trace.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use marconi_core::{EvictionPolicy, HybridPrefixCache};
use marconi_model::ModelConfig;
use marconi_sim::{EventSim, GpuModel};
use marconi_workload::{DatasetKind, Trace, TraceGenerator};
use std::time::Instant;

fn trace() -> Trace {
    let sessions = if std::env::var("EVENT_SIM_FULL").is_ok() {
        160
    } else {
        40
    };
    TraceGenerator::new(DatasetKind::ShareGpt)
        .sessions(sessions)
        .seed(29)
        .generate()
}

fn cache() -> HybridPrefixCache {
    HybridPrefixCache::builder(ModelConfig::hybrid_7b())
        .capacity_bytes(4 << 30)
        .policy(EvictionPolicy::FlopAware { alpha: 2.0 })
        .build()
}

fn bench_event_sim(c: &mut Criterion) {
    let base = trace();
    let saturated = base.time_scaled(20.0);
    let mut group = c.benchmark_group("event_sim");
    group.sample_size(10);
    group.bench_function("modeled/saturated", |b| {
        b.iter(|| {
            let mut sim = EventSim::new(cache(), GpuModel::a100_x4());
            black_box(sim.run(&saturated).cache_stats.hit_tokens)
        });
    });
    group.bench_function("instantaneous", |b| {
        b.iter(|| {
            let mut sim = EventSim::instantaneous(cache());
            black_box(sim.run(&base).cache_stats.hit_tokens)
        });
    });
    group.finish();

    let mut rows = Vec::new();
    for (label, t, modeled) in [
        ("modeled/saturated", &saturated, true),
        ("instantaneous", &base, false),
    ] {
        let mut sim = if modeled {
            EventSim::new(cache(), GpuModel::a100_x4())
        } else {
            EventSim::instantaneous(cache())
        };
        let started = Instant::now();
        let report = sim.run(t);
        let wall = started.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
        println!(
            "event_sim/[sweep] {label}: {} requests, {} events, {:.0} req/s, {:.2e} events/s",
            report.records.len(),
            report.iterations,
            report.records.len() as f64 / wall,
            report.iterations as f64 / wall,
        );
        rows.push(format!(
            "      {{ \"mode\": \"{label}\", \"requests\": {}, \"events\": {}, \
             \"events_per_sec\": {:.0} }}",
            report.records.len(),
            report.iterations,
            report.iterations as f64 / wall,
        ));
    }
    merge_into_bench8(&format!(
        "{{\n    \"model\": \"hybrid_7b\",\n    \"sweeps\": [\n{}\n    ]\n  }}",
        rows.join(",\n")
    ));
}

/// Appends (or replaces) the `event_sim` section of `BENCH_8.json`, whose
/// base object the `eviction_pressure` bench's `engine_replay` sweep
/// writes. Plain string surgery — serde_json is not vendored, and the
/// hand-formatted layout is part of the file's schema.
fn merge_into_bench8(section: &str) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_8.json");
    let Ok(existing) = std::fs::read_to_string(path) else {
        eprintln!(
            "event_sim: {path} not found (run the eviction_pressure bench first); \
             skipping BENCH_8 merge"
        );
        return;
    };
    // Truncate at a previous event_sim section (idempotent re-runs) or
    // before the object's closing brace.
    let base = match existing.find(",\n  \"event_sim\"") {
        Some(i) => &existing[..i],
        None => match existing.rfind('}') {
            // The closing brace of the top-level object follows the last
            // section's own closing bracket/brace on the previous line.
            Some(i) => existing[..i].trim_end(),
            None => {
                eprintln!("event_sim: {path} is malformed; skipping BENCH_8 merge");
                return;
            }
        },
    };
    let json = format!("{base},\n  \"event_sim\": {section}\n}}\n");
    match std::fs::write(path, &json) {
        Ok(()) => println!("event_sim: merged section into {path}"),
        Err(e) => eprintln!("event_sim: could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_event_sim);
criterion_main!(benches);
