//! Criterion benches for end-to-end trace replay throughput per system.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use marconi_bench::GB;
use marconi_model::ModelConfig;
use marconi_sim::{Comparison, SystemKind};
use marconi_workload::{DatasetKind, TraceGenerator};
use std::time::Duration;

fn bench_replay(c: &mut Criterion) {
    let trace = TraceGenerator::new(DatasetKind::ShareGpt)
        .sessions(16)
        .seed(3)
        .generate();
    let tokens = trace.total_input_tokens();
    let mut group = c.benchmark_group("trace_replay");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(4));
    group.throughput(Throughput::Elements(tokens));
    for system in [
        SystemKind::Vanilla,
        SystemKind::VllmPlus,
        SystemKind::SglangPlus,
        SystemKind::Marconi,
    ] {
        group.bench_function(system.to_string(), |b| {
            b.iter(|| {
                let result = Comparison::new(ModelConfig::hybrid_7b(), 4 * GB)
                    .systems(&[system])
                    .run(&trace);
                black_box(result.report(system).map(|r| r.token_hit_rate()))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
