//! Criterion benches for cache-policy costs: per-request admission under
//! each policy, eviction storms, and the α grid-search replay.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use marconi_core::oracle::{best_static_alpha, SequenceEvent};
use marconi_core::{EvictionPolicy, HybridPrefixCache, PrefixCache};
use marconi_model::ModelConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn sequences(n: u32, len: u64) -> Vec<(Vec<u32>, Vec<u32>)> {
    let mut rng = StdRng::seed_from_u64(5);
    (0..n)
        .map(|_| {
            let input: Vec<u32> = (0..len).map(|_| rng.gen_range(0..50_000)).collect();
            let output: Vec<u32> = (0..32).map(|_| rng.gen_range(0..50_000)).collect();
            (input, output)
        })
        .collect()
}

/// Capacity that holds only a handful of sequences, forcing evictions on
/// nearly every insert.
fn tight_capacity(seq_len: u64) -> u64 {
    let m = ModelConfig::hybrid_7b();
    4 * (seq_len * m.kv_bytes_per_token() + 2 * m.ssm_checkpoint_bytes())
}

fn bench_insert_under_pressure(c: &mut Criterion) {
    let seqs = sequences(64, 1024);
    let mut group = c.benchmark_group("cache_insert_evicting");
    for (name, policy) in [
        ("lru", EvictionPolicy::Lru),
        ("flop_aware", EvictionPolicy::FlopAware { alpha: 2.0 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cache = HybridPrefixCache::builder(ModelConfig::hybrid_7b())
                    .capacity_bytes(tight_capacity(1056))
                    .policy(policy.clone())
                    .build();
                for (i, (input, output)) in seqs.iter().enumerate() {
                    cache.lookup_at(input, i as f64);
                    cache.insert_at(input, output, i as f64);
                }
                black_box(cache.stats().evictions)
            });
        });
    }
    group.finish();
}

fn bench_lookup_hot(c: &mut Criterion) {
    let mut cache = HybridPrefixCache::builder(ModelConfig::hybrid_7b())
        .capacity_bytes(1 << 42)
        .build();
    let seqs = sequences(64, 2048);
    for (i, (input, output)) in seqs.iter().enumerate() {
        cache.insert_at(input, output, i as f64);
    }
    c.bench_function("cache_lookup_hot", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % seqs.len();
            black_box(cache.lookup_at(&seqs[i].0, 1e6))
        });
    });
}

fn bench_alpha_grid_search(c: &mut Criterion) {
    let seqs = sequences(48, 768);
    let events: Vec<SequenceEvent> = seqs
        .iter()
        .enumerate()
        .map(|(i, (input, output))| SequenceEvent {
            input: input.clone(),
            output: output.clone(),
            at: i as f64,
        })
        .collect();
    let model = ModelConfig::hybrid_7b();
    let capacity = tight_capacity(800);
    let mut group = c.benchmark_group("alpha_grid_search");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(4));
    group.bench_function("serial_7_alphas", |b| {
        b.iter(|| {
            black_box(best_static_alpha(
                &model,
                capacity,
                &events,
                &[0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0],
                false,
            ))
        });
    });
    group.bench_function("parallel_7_alphas", |b| {
        b.iter(|| {
            black_box(best_static_alpha(
                &model,
                capacity,
                &events,
                &[0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0],
                true,
            ))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_insert_under_pressure,
    bench_lookup_hot,
    bench_alpha_grid_search
);
criterion_main!(benches);
