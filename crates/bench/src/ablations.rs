//! Ablations of Marconi's design choices (DESIGN.md's "Key design
//! decisions"): eviction-policy family, checkpoint materialization mode,
//! and the §4.3 implementation rules.

use crate::pct;
use marconi_core::{CheckpointMode, EvictionPolicy, HybridPrefixCache};
use marconi_model::ModelConfig;
use marconi_sim::{Engine, GpuModel};
use marconi_workload::{ArrivalConfig, DatasetKind, Trace, TraceGenerator};
use std::fmt::Write as _;

/// One ablation configuration and its measured hit rate.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Configuration label.
    pub label: String,
    /// Token hit rate achieved.
    pub hit_rate: f64,
    /// Entries evicted (diagnostic for policy behaviour).
    pub evictions: u64,
}

fn ablation_trace() -> Trace {
    // The fig10 regime: contended SWE-agent-like serving where eviction
    // decisions matter.
    TraceGenerator::new(DatasetKind::SweBench)
        .sessions(36)
        .arrival(ArrivalConfig::new(1.0, 20.0))
        .seed(10)
        .generate()
}

fn run_config(
    trace: &Trace,
    label: &str,
    configure: impl FnOnce(
        marconi_core::HybridPrefixCacheBuilder,
    ) -> marconi_core::HybridPrefixCacheBuilder,
) -> AblationPoint {
    let builder =
        HybridPrefixCache::builder(ModelConfig::hybrid_7b()).capacity_bytes(2_000_000_000);
    let cache = configure(builder).build();
    let mut engine = Engine::new(cache, GpuModel::a100_x4());
    let report = engine.run(trace);
    AblationPoint {
        label: label.to_owned(),
        hit_rate: report.token_hit_rate(),
        evictions: report.cache_stats.evictions,
    }
}

/// Runs the ablation grid.
#[must_use]
pub fn run() -> Vec<AblationPoint> {
    let trace = ablation_trace();
    vec![
        // Eviction-policy family.
        run_config(&trace, "lru (sglang+)", |b| b.policy(EvictionPolicy::Lru)),
        run_config(&trace, "gdsf (classic cost-aware)", |b| {
            b.policy(EvictionPolicy::Gdsf)
        }),
        run_config(&trace, "flop-aware α=2 (static)", |b| {
            b.policy(EvictionPolicy::FlopAware { alpha: 2.0 })
        }),
        run_config(&trace, "flop-aware auto-α (marconi)", |b| b),
        // §4.1 checkpoint materialization.
        run_config(&trace, "marconi + chunked ckpt (64)", |b| {
            b.checkpoint_mode(CheckpointMode::Chunked { chunk_size: 64 })
        }),
        run_config(&trace, "marconi + chunked ckpt (256)", |b| {
            b.checkpoint_mode(CheckpointMode::Chunked { chunk_size: 256 })
        }),
        // §4.3 implementation rules, ablated one at a time on LRU (so the
        // effect is not masked by FLOP-aware scoring).
        run_config(&trace, "lru + ancestor-refresh", |b| {
            b.policy(EvictionPolicy::Lru).refresh_ancestors(true)
        }),
        run_config(&trace, "lru + leaf-only eviction", |b| {
            b.policy(EvictionPolicy::Lru).leaf_only_eviction(true)
        }),
    ]
}

/// The ablation table rendered as text.
#[must_use]
pub fn ablations() -> String {
    let points = run();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Ablations: design choices on the contended SWE-agent trace (fig10 regime)"
    );
    let _ = writeln!(
        out,
        "{:<32} {:>10} {:>10}",
        "configuration", "hit rate", "evictions"
    );
    for p in &points {
        let _ = writeln!(
            out,
            "{:<32} {:>10} {:>10}",
            p.label,
            pct(p.hit_rate),
            p.evictions
        );
    }
    let _ = writeln!(
        out,
        "\nreading: every cost-aware policy beats LRU. Our GDSF variant prices entries by\n\
         FLOPs (not object size, which the paper shows fails for length-independent SSM\n\
         states) and adds frequency + an aging clock — it is competitive with and can\n\
         exceed recency+α scoring, matching §4.2's remark that FLOP efficiency is\n\
         complementary to classic estimators like GDSF. Chunked checkpointing costs only\n\
         a few points of hit rate for much cheaper state materialization (§4.1), and the\n\
         §4.3 rules (single-timestamp update, ≤1-child candidates) are safe: ablating\n\
         them does not improve the hit rate meaningfully."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_aware_policies_beat_lru() {
        let points = run();
        let find = |label: &str| {
            points
                .iter()
                .find(|p| p.label.starts_with(label))
                .unwrap_or_else(|| panic!("{label} missing"))
                .hit_rate
        };
        let marconi = find("flop-aware auto-α");
        let lru = find("lru (sglang+)");
        let gdsf = find("gdsf");
        assert!(marconi > lru, "marconi {marconi} vs lru {lru}");
        // FLOP-priced GDSF is a *stronger* classic baseline (frequency +
        // aging on top of FLOP cost); it must also beat LRU.
        assert!(gdsf > lru, "gdsf {gdsf} vs lru {lru}");
    }

    #[test]
    fn chunked_checkpointing_costs_little() {
        let points = run();
        let find = |label: &str| {
            points
                .iter()
                .find(|p| p.label.starts_with(label))
                .unwrap()
                .hit_rate
        };
        let exact = find("flop-aware auto-α");
        let chunked = find("marconi + chunked ckpt (64)");
        assert!(
            chunked > exact * 0.9,
            "chunked {chunked} should be within 10% of exact {exact}"
        );
    }
}
