//! Fig. 11: impact of cache contention on FLOP-aware eviction's benefits.

use crate::{pct, GB};
use marconi_model::ModelConfig;
use marconi_sim::{Comparison, SystemKind};
use marconi_workload::{ArrivalConfig, DatasetKind, Trace, TraceGenerator};
use std::fmt::Write as _;

/// One cache-size data point.
#[derive(Debug, Clone, Copy)]
pub struct ContentionPoint {
    /// Cache size in GB.
    pub cache_gb: f64,
    /// Marconi's token hit rate.
    pub marconi: f64,
    /// SGLang+'s token hit rate.
    pub sglang: f64,
}

impl ContentionPoint {
    /// Marconi's relative improvement over SGLang+.
    #[must_use]
    pub fn relative_win(&self) -> f64 {
        if self.sglang == 0.0 {
            return f64::INFINITY;
        }
        self.marconi / self.sglang - 1.0
    }
}

fn contention_trace() -> Trace {
    TraceGenerator::new(DatasetKind::SweBench)
        .sessions(36)
        .arrival(ArrivalConfig::new(1.0, 20.0))
        .seed(10)
        .generate()
}

/// Sweeps cache sizes (the paper's 60–140 GB axis) on a SWEBench-like
/// trace.
#[must_use]
pub fn run(cache_sizes_gb: &[f64]) -> Vec<ContentionPoint> {
    let trace = contention_trace();
    cache_sizes_gb
        .iter()
        .map(|&cache_gb| {
            let capacity = (cache_gb * GB as f64) as u64;
            let result = Comparison::new(ModelConfig::hybrid_7b(), capacity)
                .systems(&[SystemKind::SglangPlus, SystemKind::Marconi])
                .run(&trace);
            ContentionPoint {
                cache_gb,
                marconi: result
                    .report(SystemKind::Marconi)
                    .expect("ran")
                    .token_hit_rate(),
                sglang: result
                    .report(SystemKind::SglangPlus)
                    .expect("ran")
                    .token_hit_rate(),
            }
        })
        .collect()
}

/// Fig. 11 rendered as text.
#[must_use]
pub fn fig11() -> String {
    let points = run(&[1.0, 1.5, 2.0, 3.0, 4.0]);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig 11: token hit rate vs cache size (SWEBench-like trace)"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>10} {:>12}",
        "cache_gb", "marconi", "sglang+", "rel. win"
    );
    for p in &points {
        let _ = writeln!(
            out,
            "{:>10.1} {:>10} {:>10} {:>12}",
            p.cache_gb,
            pct(p.marconi),
            pct(p.sglang),
            pct(p.relative_win())
        );
    }
    let _ = writeln!(
        out,
        "paper check: biggest relative win at moderate contention (paper: +24.3/+51.5/+68.3/+30.0/+10.0%\n\
         across 60→140 GB); extremes of very-high and very-low contention shrink the gap"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_grows_with_cache_size() {
        let points = run(&[1.0, 4.0]);
        assert!(points[1].marconi >= points[0].marconi);
        assert!(points[1].sglang >= points[0].sglang);
    }

    #[test]
    fn marconi_never_loses_to_lru_on_this_trace() {
        for p in run(&[2.0, 3.0]) {
            assert!(
                p.marconi >= p.sglang * 0.98,
                "cache {} GB: {} vs {}",
                p.cache_gb,
                p.marconi,
                p.sglang
            );
        }
    }
}
