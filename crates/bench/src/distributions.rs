//! Fig. 6: input/output sequence-length distributions per workload.

use marconi_metrics::Percentiles;
use marconi_workload::{DatasetKind, Trace, TraceGenerator};
use std::fmt::Write as _;

/// Generates the evaluation trace used to characterize a dataset family.
#[must_use]
pub fn characterization_trace(kind: DatasetKind) -> Trace {
    TraceGenerator::new(kind).sessions(60).seed(6).generate()
}

/// Fig. 6 rendered as text: five-number summaries of per-request input and
/// output lengths for each dataset family.
#[must_use]
pub fn fig6() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Fig 6: input/output sequence length distributions");
    let _ = writeln!(
        out,
        "{:<10} {:<7} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "dataset", "side", "P5", "P50", "mean", "P95", "max"
    );
    for kind in DatasetKind::ALL {
        let trace = characterization_trace(kind);
        for (side, values) in [
            ("input", trace.input_lengths()),
            ("output", trace.output_lengths()),
        ] {
            let p = Percentiles::new(&values).expect("non-empty trace");
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            let _ = writeln!(
                out,
                "{:<10} {:<7} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0}",
                kind.to_string(),
                side,
                p.p5(),
                p.median(),
                mean,
                p.p95(),
                p.max()
            );
        }
    }
    let _ = writeln!(
        out,
        "paper check: LMSys outputs reach thousands of tokens; ShareGPT outputs are tens-hundreds;\n\
         SWEBench inputs span hundreds to tens of thousands (widest distribution)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_reports_both_sides_of_all_datasets() {
        let s = fig6();
        for name in ["lmsys", "sharegpt", "swebench"] {
            assert_eq!(
                s.matches(name).count(),
                2,
                "{name} should have input and output rows"
            );
        }
    }
}
