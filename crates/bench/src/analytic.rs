//! Analytic experiments: Table 1, Fig. 3b, Fig. 5, Fig. 14.
//!
//! These regenerate the paper's closed-form plots directly from
//! `marconi-model` — no simulation involved, so our numbers should match
//! the paper's up to the conv-state approximation.

use crate::GB;
use marconi_model::{FlopEfficiency, LayerKind, ModelConfig};
use std::fmt::Write as _;

/// Table 1: per-layer FLOPs, state sizes, and FLOPs-saved-per-byte for the
/// 7B hybrid model.
#[must_use]
pub fn table1() -> String {
    let m = ModelConfig::hybrid_7b();
    let eff = FlopEfficiency::new(&m);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Table 1: FLOP efficiency of layer types (7B hybrid, D=4096, N=128)"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>18} {:>16} {:>22}",
        "layer", "FLOPs (L=4096)", "state bytes", "FLOPs saved per byte"
    );
    for kind in LayerKind::ALL {
        let l = 4096;
        let flops = m.layer_flops(kind, l);
        let (bytes, per_byte) = match kind {
            LayerKind::Attention => (
                format!("{}", 4 * l * m.d_model()),
                format!("L + 2D = {}", eff.attention_flops_per_byte(l)),
            ),
            LayerKind::Ssm => (
                format!("{}", 2 * m.d_model() * m.d_state()),
                format!("≈200L = {:.0}", eff.ssm_flops_per_byte(l)),
            ),
            LayerKind::Mlp => ("-".to_owned(), "-".to_owned()),
        };
        let _ = writeln!(out, "{kind:<12} {flops:>18} {bytes:>16} {per_byte:>22}");
    }
    let _ = writeln!(
        out,
        "paper check: SSM/Attn per-byte slope ratio at L=4096 → {:.0} (paper: 200L vs L+8192)",
        eff.ssm_flops_per_byte(4096) / 4096.0
    );
    out
}

/// Fig. 3b: total cache-entry bytes for one sequence under fine-grained
/// checkpointing, as sequence length scales, for block sizes 8/16/32.
#[must_use]
pub fn fig3b() -> String {
    let m = ModelConfig::hybrid_7b();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig 3b: cache size of ONE sequence, fine-grained checkpointing (GB)"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>12} {:>12}",
        "seq_len", "block=8", "block=16", "block=32"
    );
    for len in (1000..=15_000).step_by(2000) {
        let row: Vec<f64> = [8, 16, 32]
            .iter()
            .map(|&b| marconi_model::sequence_cache_bytes(&m, len, b) as f64 / GB as f64)
            .collect();
        let _ = writeln!(
            out,
            "{:>10} {:>12.2} {:>12.2} {:>12.2}",
            len, row[0], row[1], row[2]
        );
    }
    let at_10k = marconi_model::sequence_cache_bytes(&m, 10_000, 16) as f64 / GB as f64;
    let _ = writeln!(
        out,
        "paper check: 10K tokens @ block 16 = {at_10k:.1} GB (paper: 17.4 GB)"
    );
    out
}

/// Fig. 5: whole-model FLOPs-saved-per-byte vs sequence length for
/// Transformer / Hybrid / Mamba 7B models.
#[must_use]
pub fn fig5() -> String {
    let models = [
        ModelConfig::mamba_7b(),
        ModelConfig::hybrid_7b(),
        ModelConfig::transformer_7b(),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig 5: FLOP efficiency (FLOPs saved / byte) vs sequence length"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>14} {:>14} {:>14}",
        "seq_len", "mamba", "hybrid", "transformer"
    );
    for len in (250..=2000).step_by(250) {
        let _ = writeln!(
            out,
            "{:>10} {:>14.0} {:>14.0} {:>14.0}",
            len,
            models[0].flop_efficiency(len),
            models[1].flop_efficiency(len),
            models[2].flop_efficiency(len)
        );
    }
    let _ = writeln!(
        out,
        "paper check: ordering mamba > hybrid > transformer and steeper slopes with more SSM layers"
    );
    out
}

/// Fig. 14: FLOP breakdown by layer type for the 7B hybrid model.
#[must_use]
pub fn fig14() -> String {
    let m = ModelConfig::hybrid_7b();
    let mut out = String::new();
    let _ = writeln!(out, "# Fig 14: FLOP breakdown by layer type (7B hybrid)");
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>12} {:>12} {:>8}",
        "seq_len", "attn(e12)", "ssm(e12)", "mlp(e12)", "attn%"
    );
    for len in (5_000..=30_000).step_by(5_000) {
        let b = m.prefill_flops(len);
        let _ = writeln!(
            out,
            "{:>10} {:>12.1} {:>12.1} {:>12.1} {:>8.1}",
            len,
            b.attention as f64 / 1e12,
            b.ssm as f64 / 1e12,
            b.mlp as f64 / 1e12,
            b.attention_share() * 100.0
        );
    }
    let _ = writeln!(
        out,
        "paper check: 4 Attention layers (7.1% of layers) consume a growing, significant share"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mentions_all_layers() {
        let t = table1();
        assert!(t.contains("Attention") && t.contains("SSM") && t.contains("MLP"));
    }

    #[test]
    fn fig3b_reproduces_headline() {
        let t = fig3b();
        assert!(t.contains("17.4 GB"), "paper reference present");
        // Our measured value appears and is in range (checked in model
        // crate tests; here just ensure the row exists).
        assert!(t.contains("block=16"));
    }

    #[test]
    fn fig5_and_fig14_render() {
        assert!(fig5().lines().count() > 8);
        assert!(fig14().lines().count() > 6);
    }
}
