//! Fig. 12: impact of model architecture — layer composition (a) and SSM
//! state dimension (b).

use crate::times;
use marconi_model::ModelConfig;
use marconi_sim::{Comparison, SystemKind};
use marconi_workload::{ArrivalConfig, DatasetKind, Trace, TraceGenerator};
use std::fmt::Write as _;

/// Hit rates of the three systems for one model variant.
#[derive(Debug, Clone)]
pub struct ArchPoint {
    /// Variant label (e.g. `"(24,12)"` or `"dstate=64"`).
    pub label: String,
    /// Marconi's token hit rate.
    pub marconi: f64,
    /// SGLang+'s token hit rate.
    pub sglang: f64,
    /// vLLM+'s token hit rate.
    pub vllm: f64,
}

fn arch_trace() -> Trace {
    TraceGenerator::new(DatasetKind::ShareGpt)
        .sessions(120)
        .arrival(ArrivalConfig::new(1.0, 10.0))
        .seed(12)
        .generate()
}

/// Bytes the whole trace's distinct prefixes would occupy for `model`
/// (per-session final context KVs + two checkpoints per session).
fn working_set_bytes(model: &ModelConfig, trace: &Trace) -> u64 {
    let mut final_len: std::collections::HashMap<u64, u64> = Default::default();
    for r in &trace.requests {
        let e = final_len.entry(r.session_id).or_insert(0);
        *e = (*e).max(r.total_len());
    }
    let tokens: u64 = final_len.values().sum();
    tokens * model.kv_bytes_per_token() + 2 * final_len.len() as u64 * model.ssm_checkpoint_bytes()
}

/// Runs one variant with capacity at a fixed fraction of that variant's
/// working set, so contention is comparable across architectures.
fn run_model(model: ModelConfig, label: String, trace: &Trace, ws_fraction: f64) -> ArchPoint {
    let capacity = (working_set_bytes(&model, trace) as f64 * ws_fraction) as u64;
    let result = Comparison::new(model, capacity)
        .systems(&[
            SystemKind::VllmPlus,
            SystemKind::SglangPlus,
            SystemKind::Marconi,
        ])
        .run(trace);
    let rate = |s| {
        result
            .report(s)
            .map(|r: &marconi_sim::SimReport| r.token_hit_rate())
            .unwrap_or(0.0)
    };
    ArchPoint {
        label,
        marconi: rate(SystemKind::Marconi),
        sglang: rate(SystemKind::SglangPlus),
        vllm: rate(SystemKind::VllmPlus),
    }
}

/// Fig. 12a: layer-composition sweep `(SSM, Attn)` per the paper.
#[must_use]
pub fn run_layer_compositions() -> Vec<ArchPoint> {
    let trace = arch_trace();
    [(32u64, 4u64), (30, 5), (28, 7), (24, 12), (0, 36)]
        .iter()
        .map(|&(ssm, attn)| {
            run_model(
                ModelConfig::with_layer_composition(ssm, attn),
                format!("({ssm},{attn})"),
                &trace,
                0.3,
            )
        })
        .collect()
}

/// Fig. 12b: SSM state-dimension sweep.
#[must_use]
pub fn run_state_dims() -> Vec<ArchPoint> {
    let trace = arch_trace();
    [128u64, 64, 32, 16]
        .iter()
        .map(|&n| {
            run_model(
                ModelConfig::with_state_dim(n),
                format!("dstate={n}"),
                &trace,
                0.3,
            )
        })
        .collect()
}

fn render(points: &[ArchPoint], title: &str, check: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(
        out,
        "{:<12} {:>9} {:>9} {:>9} {:>14} {:>14}",
        "variant", "marconi", "sglang+", "vllm+", "vs sglang+", "vs vllm+"
    );
    for p in points {
        let norm = |x: f64| if p.marconi > 0.0 { x / p.marconi } else { 0.0 };
        let _ = writeln!(
            out,
            "{:<12} {:>9.3} {:>9.3} {:>9.3} {:>14} {:>14}",
            p.label,
            1.0,
            norm(p.sglang),
            norm(p.vllm),
            if p.sglang > 0.0 {
                times(p.marconi / p.sglang)
            } else {
                "∞".to_owned()
            },
            if p.vllm > 0.0 {
                times(p.marconi / p.vllm)
            } else {
                "∞".to_owned()
            },
        );
    }
    let _ = writeln!(out, "paper check: {check}");
    out
}

/// Fig. 12a rendered as text (hit rates normalized to Marconi).
#[must_use]
pub fn fig12a() -> String {
    render(
        &run_layer_compositions(),
        "Fig 12a: varying layer composition (SSM, Attn); hit rate normalized to Marconi",
        "Marconi's advantage grows with the SSM ratio (paper: 13.5% → 66.6% → 2.6× over vLLM+);\n\
         for the pure Transformer (0,36) the three systems converge",
    )
}

/// Fig. 12b rendered as text.
#[must_use]
pub fn fig12b() -> String {
    render(
        &run_state_dims(),
        "Fig 12b: varying SSM state dimension; hit rate normalized to Marconi",
        "larger states (Mamba1 16 → Mamba2 128) amplify Marconi's win over vLLM+\n\
         (paper: 5.7× → 35.4×) while the SGLang+ gap stays ~1.6-1.9×",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_transformer_composition_converges() {
        let trace = TraceGenerator::new(DatasetKind::ShareGpt)
            .sessions(12)
            .seed(12)
            .generate();
        let p = run_model(
            ModelConfig::with_layer_composition(0, 36),
            "(0,36)".into(),
            &trace,
            0.5,
        );
        // No SSM constraint: radix systems identical, vLLM+ within one
        // block per request.
        assert!((p.marconi - p.sglang).abs() < 0.02, "{p:?}");
        assert!((p.marconi - p.vllm).abs() < 0.1, "{p:?}");
    }

    #[test]
    fn vllm_gap_grows_with_state_dim() {
        let trace = TraceGenerator::new(DatasetKind::ShareGpt)
            .sessions(16)
            .seed(13)
            .generate();
        let small = run_model(ModelConfig::with_state_dim(16), "16".into(), &trace, 0.3);
        let large = run_model(ModelConfig::with_state_dim(128), "128".into(), &trace, 0.3);
        let gap = |p: &ArchPoint| {
            if p.vllm > 0.0 {
                p.marconi / p.vllm
            } else {
                f64::INFINITY
            }
        };
        assert!(
            gap(&large) >= gap(&small),
            "small {:?} large {:?}",
            gap(&small),
            gap(&large)
        );
    }
}
