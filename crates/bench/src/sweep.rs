//! Shared end-to-end configuration sweep for Fig. 7 / Fig. 8 / Fig. 9.
//!
//! The paper's main results vary the dataset, request arrival pattern, and
//! cache size, then report distributions (boxes/CDFs) over the
//! configuration sweep. This module runs the grid once so the three
//! figures can share it.

use crate::GB;
use marconi_core::TunerConfig;
use marconi_model::ModelConfig;
use marconi_sim::{Comparison, ComparisonResult, SystemKind};
use marconi_workload::{ArrivalConfig, DatasetKind, TraceGenerator};

/// One cell of the sweep grid.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Workload family.
    pub dataset: DatasetKind,
    /// Session arrival rate (sessions/second).
    pub sessions_per_second: f64,
    /// Cache capacity in GB.
    pub cache_gb: f64,
    /// Sessions in the trace.
    pub sessions: usize,
    /// RNG seed.
    pub seed: u64,
}

/// A sweep cell plus its comparison result.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// The configuration that produced the result.
    pub config: SweepConfig,
    /// Per-system reports.
    pub result: ComparisonResult,
}

/// Per-dataset cache sizes chosen to span high → low contention around the
/// workload's working set (the paper's 60–140 GB sweep plays the same role
/// for its full-size traces).
#[must_use]
pub fn cache_sizes_gb(dataset: DatasetKind) -> [f64; 3] {
    match dataset {
        DatasetKind::Lmsys => [2.0, 4.0, 8.0],
        DatasetKind::ShareGpt => [3.0, 6.0, 12.0],
        DatasetKind::SweBench => [2.0, 4.0, 8.0],
    }
}

/// Per-dataset mean response time between a session's turns: human typing
/// for chat, environment/IDE interaction for agents (§5.1).
#[must_use]
pub fn response_time_for(dataset: DatasetKind) -> f64 {
    match dataset {
        DatasetKind::Lmsys => 10.0,
        DatasetKind::ShareGpt => 8.0,
        DatasetKind::SweBench => 20.0,
    }
}

/// Sessions per trace, sized so each dataset's sweep finishes quickly while
/// still exercising eviction.
#[must_use]
pub fn sessions_for(dataset: DatasetKind) -> usize {
    match dataset {
        DatasetKind::Lmsys => 100,
        DatasetKind::ShareGpt => 120,
        DatasetKind::SweBench => 50,
    }
}

/// Marconi's α grid per dataset. LMSys's flat, short-output-dominated α
/// landscape punishes aggressive FLOP weighting, so its grid stays
/// conservative; the agentic/long-context datasets use the full default.
#[must_use]
pub fn tuner_for(dataset: DatasetKind) -> TunerConfig {
    match dataset {
        DatasetKind::Lmsys => TunerConfig {
            alpha_grid: vec![0.0, 0.1, 0.25, 0.5],
            ..TunerConfig::default()
        },
        DatasetKind::ShareGpt | DatasetKind::SweBench => TunerConfig::default(),
    }
}

/// The full grid for one dataset: 3 arrival rates × 3 cache sizes.
#[must_use]
pub fn grid(dataset: DatasetKind) -> Vec<SweepConfig> {
    let mut configs = Vec::new();
    for &rate in &[0.5, 1.0, 2.0] {
        for &cache_gb in &cache_sizes_gb(dataset) {
            configs.push(SweepConfig {
                dataset,
                sessions_per_second: rate,
                cache_gb,
                sessions: sessions_for(dataset),
                seed: 1000 + (cache_gb * 10.0) as u64 + (rate * 10.0) as u64,
            });
        }
    }
    configs
}

/// Runs one sweep cell across the given systems.
#[must_use]
pub fn run_cell(config: &SweepConfig, systems: &[SystemKind]) -> SweepCell {
    let trace = TraceGenerator::new(config.dataset)
        .sessions(config.sessions)
        .arrival(ArrivalConfig::new(
            config.sessions_per_second,
            response_time_for(config.dataset),
        ))
        .seed(config.seed)
        .generate();
    let capacity = (config.cache_gb * GB as f64) as u64;
    let result = Comparison::new(ModelConfig::hybrid_7b(), capacity)
        .marconi_tuner(tuner_for(config.dataset))
        .systems(systems)
        .run(&trace);
    SweepCell {
        config: config.clone(),
        result,
    }
}

/// Runs the whole grid for a dataset.
#[must_use]
pub fn run_dataset(dataset: DatasetKind, systems: &[SystemKind]) -> Vec<SweepCell> {
    grid(dataset).iter().map(|c| run_cell(c, systems)).collect()
}

/// The systems Fig. 7–9 need (everything except the slow oracle).
pub const MAIN_SYSTEMS: [SystemKind; 4] = [
    SystemKind::Vanilla,
    SystemKind::VllmPlus,
    SystemKind::SglangPlus,
    SystemKind::Marconi,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_rates_and_sizes() {
        let g = grid(DatasetKind::ShareGpt);
        assert_eq!(g.len(), 9);
        let rates: std::collections::BTreeSet<u64> = g
            .iter()
            .map(|c| (c.sessions_per_second * 10.0) as u64)
            .collect();
        assert_eq!(rates.len(), 3);
    }

    #[test]
    fn single_cell_runs_all_main_systems() {
        let mut config = grid(DatasetKind::ShareGpt).remove(0);
        config.sessions = 6; // keep the unit test fast
        let cell = run_cell(&config, &MAIN_SYSTEMS);
        assert_eq!(cell.result.reports.len(), 4);
        for system in MAIN_SYSTEMS {
            assert!(cell.result.report(system).is_some());
        }
    }
}
