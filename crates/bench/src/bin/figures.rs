//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p marconi-bench --bin figures -- all
//! cargo run --release -p marconi-bench --bin figures -- table1 fig7 fig12b
//! cargo run --release -p marconi-bench --bin figures -- list
//! ```

use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "table1",
    "fig3a",
    "fig3b",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12a",
    "fig12b",
    "fig13a",
    "fig13b",
    "fig14",
    "ablations",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "help") {
        eprintln!("usage: figures <experiment>... | all | list");
        eprintln!("experiments: {}", EXPERIMENTS.join(" "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "list") {
        for e in EXPERIMENTS {
            println!("{e}");
        }
        return;
    }
    let selected: Vec<&str> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.to_vec()
    } else {
        let mut chosen = Vec::new();
        for a in &args {
            if EXPERIMENTS.contains(&a.as_str()) {
                chosen.push(a.as_str());
            } else {
                eprintln!("unknown experiment '{a}'; see `figures list`");
                std::process::exit(2);
            }
        }
        chosen
    };

    // Fig. 7/8/9 share one sweep; run it once if any of them is selected.
    let needs_sweep = selected
        .iter()
        .any(|e| matches!(*e, "fig7" | "fig8" | "fig9"));
    let sweep = needs_sweep.then(|| {
        let t = Instant::now();
        eprintln!(
            "[sweep] running the fig7/8/9 config grid (3 datasets × 9 configs × 4 systems)..."
        );
        let s = marconi_bench::end_to_end::run_all();
        eprintln!("[sweep] done in {:.1?}", t.elapsed());
        s
    });

    for exp in selected {
        let t = Instant::now();
        let output = match exp {
            "table1" => marconi_bench::analytic::table1(),
            "fig3a" => marconi_bench::reuse::fig3a(),
            "fig3b" => marconi_bench::analytic::fig3b(),
            "fig5" => marconi_bench::analytic::fig5(),
            "fig6" => marconi_bench::distributions::fig6(),
            "fig7" => marconi_bench::end_to_end::fig7(sweep.as_ref().expect("sweep ran")),
            "fig8" => marconi_bench::end_to_end::fig8(sweep.as_ref().expect("sweep ran")),
            "fig9" => marconi_bench::end_to_end::fig9(sweep.as_ref().expect("sweep ran")),
            "fig10" => marconi_bench::fine_grained::fig10(),
            "fig11" => marconi_bench::contention::fig11(),
            "fig12a" => marconi_bench::architecture::fig12a(),
            "fig12b" => marconi_bench::architecture::fig12b(),
            "fig13a" => marconi_bench::arrivals::fig13a(),
            "fig13b" => marconi_bench::arrivals::fig13b(),
            "fig14" => marconi_bench::analytic::fig14(),
            "ablations" => marconi_bench::ablations::ablations(),
            other => unreachable!("validated above: {other}"),
        };
        println!("{output}");
        eprintln!("[{exp}] finished in {:.1?}\n", t.elapsed());
    }
}
