//! Fig. 13: impact of request arrival patterns.

use crate::{pct, times, GB};
use marconi_model::ModelConfig;
use marconi_sim::{Comparison, SystemKind};
use marconi_workload::{ArrivalConfig, DatasetKind, TraceGenerator};
use std::fmt::Write as _;

/// One arrival-pattern data point.
#[derive(Debug, Clone)]
pub struct ArrivalPoint {
    /// Axis label.
    pub label: String,
    /// Marconi's token hit rate.
    pub marconi: f64,
    /// SGLang+'s token hit rate.
    pub sglang: f64,
}

impl ArrivalPoint {
    /// Marconi-over-SGLang+ hit-rate ratio.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.sglang == 0.0 {
            return f64::INFINITY;
        }
        self.marconi / self.sglang
    }
}

fn run_arrival(arrival: ArrivalConfig, label: String, cache_gb: u64) -> ArrivalPoint {
    let trace = TraceGenerator::new(DatasetKind::Lmsys)
        .sessions(150)
        .arrival(arrival)
        .seed(21)
        .generate();
    let tuner = marconi_core::TunerConfig {
        bootstrap_multiplier: 5.0,
        alpha_grid: vec![0.0, 0.25, 0.5],
        parallel: true,
    };
    let result = Comparison::new(ModelConfig::hybrid_7b(), cache_gb * GB)
        .marconi_tuner(tuner)
        .systems(&[SystemKind::SglangPlus, SystemKind::Marconi])
        .run(&trace);
    let rate = |s| {
        result
            .report(s)
            .map(|r: &marconi_sim::SimReport| r.token_hit_rate())
            .unwrap_or(0.0)
    };
    ArrivalPoint {
        label,
        marconi: rate(SystemKind::Marconi),
        sglang: rate(SystemKind::SglangPlus),
    }
}

/// Fig. 13a: varying session arrival rate at a fixed 5 s response time.
#[must_use]
pub fn run_session_rates() -> Vec<ArrivalPoint> {
    [0.5f64, 1.0, 2.0]
        .iter()
        .map(|&rate| run_arrival(ArrivalConfig::new(rate, 10.0), format!("{rate} sess/s"), 3))
        .collect()
}

/// Fig. 13b: varying the average response time at 1 session/s.
#[must_use]
pub fn run_response_times() -> Vec<ArrivalPoint> {
    [10.0f64, 15.0, 20.0]
        .iter()
        .map(|&resp| run_arrival(ArrivalConfig::new(1.0, resp), format!("{resp} s resp"), 3))
        .collect()
}

fn render(points: &[ArrivalPoint], title: &str, check: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10} {:>8}",
        "config", "marconi", "sglang+", "ratio"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>10} {:>8}",
            p.label,
            pct(p.marconi),
            pct(p.sglang),
            times(p.ratio())
        );
    }
    let _ = writeln!(out, "paper check: {check}");
    out
}

/// Fig. 13a rendered as text.
#[must_use]
pub fn fig13a() -> String {
    render(
        &run_session_rates(),
        "Fig 13a: varying session arrival rate (LMSys-like, 5 s response time)",
        "hit rate falls as more sessions contend (paper: 48.7% → 43.0%) while Marconi's\n\
         relative win grows (paper: 1.4× → 1.6×)",
    )
}

/// Fig. 13b rendered as text.
#[must_use]
pub fn fig13b() -> String {
    render(
        &run_response_times(),
        "Fig 13b: varying avg response time (LMSys-like, 1 session/s)",
        "longer gaps between turns reduce reuse (paper: 25.9% → 24.1%) while Marconi's\n\
         relative win grows (paper: 1.4× → 1.6×)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_lowers_hit_rate() {
        let slow = run_arrival(ArrivalConfig::new(0.5, 5.0), "slow".into(), 16);
        let fast = run_arrival(ArrivalConfig::new(2.0, 5.0), "fast".into(), 16);
        // More concurrent sessions sharing the cache ⇒ lower (or equal)
        // hit rate for the LRU baseline.
        assert!(
            fast.sglang <= slow.sglang + 0.02,
            "fast {} vs slow {}",
            fast.sglang,
            slow.sglang
        );
    }
}
