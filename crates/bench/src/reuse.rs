//! Fig. 3a: token-block reuse rates under fine-grained checkpointing.

use crate::{pct, times, GB};
use marconi_core::{BlockCache, BlockReuseReport};
use marconi_model::ModelConfig;
use marconi_sim::{Engine, GpuModel};
use marconi_workload::{DatasetKind, TraceGenerator};
use std::fmt::Write as _;

/// One block-size data point.
#[derive(Debug, Clone, Copy)]
pub struct ReusePoint {
    /// Token-block size.
    pub block_size: u64,
    /// The vLLM+ cache's cumulative reuse counters.
    pub report: BlockReuseReport,
}

impl ReusePoint {
    /// KV-over-SSM reuse-rate ratio (the 65.3× / 27.9× / 11.1× labels).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        let ssm = self.report.ssm_reuse_fraction();
        if ssm == 0.0 {
            return f64::INFINITY;
        }
        self.report.kv_reuse_fraction() / ssm
    }
}

/// Runs vLLM+ over a multi-turn trace for each block size and measures the
/// fraction of cached blocks whose KVs vs SSM states are ever reused.
#[must_use]
pub fn run(block_sizes: &[u64]) -> Vec<ReusePoint> {
    // Long-context conversations: each resume touches hundreds of KV
    // blocks but exactly one SSM state, which is what makes SSM entries
    // sparsely hit (§3).
    let trace = TraceGenerator::new(DatasetKind::Lmsys)
        .sessions(40)
        .seed(42)
        .generate();
    block_sizes
        .iter()
        .map(|&block_size| {
            let cache = BlockCache::builder(ModelConfig::hybrid_7b())
                .capacity_bytes(400 * GB) // ample: measure reuse, not eviction
                .block_size(block_size)
                .build();
            let mut engine = Engine::new(cache, GpuModel::a100_x4());
            let _ = engine.run(&trace);
            ReusePoint {
                block_size,
                report: engine.cache().reuse_report(),
            }
        })
        .collect()
}

/// Fig. 3a rendered as text.
#[must_use]
pub fn fig3a() -> String {
    let points = run(&[32, 64, 128]);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig 3a: % of cached token blocks ever reused (vLLM+ fine-grained)"
    );
    let _ = writeln!(
        out,
        "{:>12} {:>12} {:>12} {:>10}",
        "block_size", "KVs", "SSM states", "ratio"
    );
    for p in &points {
        let _ = writeln!(
            out,
            "{:>12} {:>12} {:>12} {:>10}",
            p.block_size,
            pct(p.report.kv_reuse_fraction()),
            pct(p.report.ssm_reuse_fraction()),
            times(p.ratio())
        );
    }
    let _ = writeln!(
        out,
        "paper check: block 32 → KVs 25.0% vs SSM 0.4% (65.3×); gap narrows as blocks grow"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_reuse_dwarfs_ssm_reuse() {
        let points = run(&[32, 128]);
        for p in &points {
            assert!(
                p.report.kv_reuse_fraction() > 2.0 * p.report.ssm_reuse_fraction(),
                "block {}: kv {} vs ssm {}",
                p.block_size,
                p.report.kv_reuse_fraction(),
                p.report.ssm_reuse_fraction()
            );
        }
        // Larger blocks shrink the gap (fewer sparsely-hit checkpoints).
        assert!(points[0].ratio() > points[1].ratio());
    }

    #[test]
    fn rendering_includes_every_block_size() {
        let s = fig3a();
        for b in ["32", "64", "128"] {
            assert!(s.contains(b));
        }
    }
}
