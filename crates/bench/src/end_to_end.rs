//! Fig. 7 (Marconi vs vLLM+ hit rate), Fig. 8 (win over SGLang+), and
//! Fig. 9 (P95 TTFT relative to vanilla), derived from the shared sweep.

use crate::sweep::{run_dataset, SweepCell, MAIN_SYSTEMS};
use crate::{pct, times};
use marconi_metrics::{BoxStats, Cdf};
use marconi_sim::SystemKind;
use marconi_workload::DatasetKind;
use std::fmt::Write as _;

/// Sweep results for all three datasets, shared across the three figures.
#[must_use]
pub fn run_all() -> Vec<(DatasetKind, Vec<SweepCell>)> {
    DatasetKind::ALL
        .iter()
        .map(|&d| (d, run_dataset(d, &MAIN_SYSTEMS)))
        .collect()
}

/// Per-config token hit rates of one system.
fn hit_rates(cells: &[SweepCell], system: SystemKind) -> Vec<f64> {
    cells
        .iter()
        .filter_map(|c| c.result.report(system))
        .map(|r| r.token_hit_rate())
        .collect()
}

/// Fig. 7: box statistics of token hit rate over the config sweep,
/// Marconi vs vLLM+.
#[must_use]
pub fn fig7(sweeps: &[(DatasetKind, Vec<SweepCell>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig 7: token hit rate over the config sweep (boxes: P5|Q1|med|Q3|P95)"
    );
    for (dataset, cells) in sweeps {
        for system in [SystemKind::VllmPlus, SystemKind::Marconi] {
            let rates = hit_rates(cells, system);
            let b = BoxStats::new(&rates).expect("non-empty sweep");
            let _ = writeln!(
                out,
                "{:<10} {:<9} {} ",
                dataset.to_string(),
                system.to_string(),
                b
            );
        }
        let vllm: f64 = mean(&hit_rates(cells, SystemKind::VllmPlus));
        let marconi: f64 = mean(&hit_rates(cells, SystemKind::Marconi));
        let ratio = if vllm > 0.0 {
            marconi / vllm
        } else {
            f64::INFINITY
        };
        let _ = writeln!(
            out,
            "{:<10} marconi/vllm+ mean hit-rate ratio: {}",
            dataset.to_string(),
            times(ratio)
        );
    }
    let _ = writeln!(
        out,
        "paper check: Marconi improves the hit rate by 4.5× (LMSys), 7.3× (ShareGPT), 34.4× (SWEBench) on average"
    );
    out
}

/// Fig. 8: Marconi's relative token-hit-rate win over SGLang+ per config.
#[must_use]
pub fn fig8(sweeps: &[(DatasetKind, Vec<SweepCell>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig 8: token hit rate win of Marconi over SGLang+ (%)"
    );
    for (dataset, cells) in sweeps {
        let wins: Vec<f64> = cells
            .iter()
            .filter_map(|c| {
                let m = c.result.report(SystemKind::Marconi)?.token_hit_rate();
                let s = c.result.report(SystemKind::SglangPlus)?.token_hit_rate();
                (s > 0.0).then(|| (m - s) / s * 100.0)
            })
            .collect();
        let b = BoxStats::new(&wins).expect("non-empty sweep");
        let _ = writeln!(out, "{:<10} win% {}", dataset.to_string(), b);
    }
    let _ = writeln!(
        out,
        "paper check: largest wins on SWEBench (P95 +219.7%), smaller on ShareGPT (+19.0%) — \n\
         longer sequences make FLOP-aware eviction matter more"
    );
    out
}

/// Fig. 9: CDF of P95 TTFT relative to vanilla inference over the sweep.
#[must_use]
pub fn fig9(sweeps: &[(DatasetKind, Vec<SweepCell>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig 9: P95 TTFT relative to vanilla (lower is better)"
    );
    for (dataset, cells) in sweeps {
        let _ = writeln!(out, "## {dataset}");
        for system in [
            SystemKind::VllmPlus,
            SystemKind::SglangPlus,
            SystemKind::Marconi,
        ] {
            let ratios: Vec<f64> = cells
                .iter()
                .filter_map(|c| {
                    let v = c
                        .result
                        .report(SystemKind::Vanilla)?
                        .ttft_percentile_ms(0.95)?;
                    let s = c.result.report(system)?.ttft_percentile_ms(0.95)?;
                    Some(s / v)
                })
                .collect();
            let cdf = Cdf::new(&ratios).expect("non-empty sweep");
            let pts: Vec<String> = cdf
                .points()
                .into_iter()
                .map(|(x, y)| format!("({x:.3},{y:.2})"))
                .collect();
            let _ = writeln!(
                out,
                "{:<9} median {} | cdf {}",
                system.to_string(),
                pct(cdf.inverse(0.5)),
                pts.join(" ")
            );
        }
    }
    let _ = writeln!(
        out,
        "paper check: Marconi's curve sits left of SGLang+ which sits left of vLLM+\n\
         (paper: up to 36.9% / 73.2% / 46.8% P95 TTFT reduction vs vanilla per dataset)"
    );
    out
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_cell, SweepConfig};

    /// A single miniature sweep cell shared by the rendering tests.
    fn mini_sweep() -> Vec<(DatasetKind, Vec<SweepCell>)> {
        let config = SweepConfig {
            dataset: DatasetKind::ShareGpt,
            sessions_per_second: 1.0,
            cache_gb: 4.0,
            sessions: 8,
            seed: 77,
        };
        vec![(
            DatasetKind::ShareGpt,
            vec![run_cell(&config, &MAIN_SYSTEMS)],
        )]
    }

    #[test]
    fn figures_render_from_sweep() {
        let sweeps = mini_sweep();
        let f7 = fig7(&sweeps);
        let f8 = fig8(&sweeps);
        let f9 = fig9(&sweeps);
        assert!(f7.contains("marconi"));
        assert!(f8.contains("win%"));
        assert!(f9.contains("cdf"));
    }

    #[test]
    fn marconi_dominates_vllm_in_mini_sweep() {
        let sweeps = mini_sweep();
        let cells = &sweeps[0].1;
        let m = hit_rates(cells, SystemKind::Marconi)[0];
        let v = hit_rates(cells, SystemKind::VllmPlus)[0];
        assert!(m >= v, "marconi {m} vs vllm+ {v}");
    }
}
