//! Figure- and table-reproduction harness for the Marconi paper.
//!
//! Every table and figure in the paper's evaluation maps to one function
//! here (see DESIGN.md's per-experiment index). The `figures` binary
//! dispatches to them:
//!
//! ```text
//! cargo run --release -p marconi-bench --bin figures -- all
//! cargo run --release -p marconi-bench --bin figures -- fig7 fig8
//! ```
//!
//! Each experiment prints the same rows/series the paper reports, so the
//! output can be diffed against EXPERIMENTS.md. Everything is seeded and
//! deterministic.
//!
//! The Criterion benches under `benches/` cover the *systems* costs
//! (radix-tree operations, eviction sweeps, cluster routing, end-to-end
//! replay throughput); this library covers the *paper* results.
//!
//! # Examples
//!
//! ```
//! // The formatting helpers every experiment table uses.
//! assert_eq!(marconi_bench::pct(0.517), "51.7%");
//! assert_eq!(marconi_bench::times(2.25), "2.2×");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod analytic;
pub mod architecture;
pub mod arrivals;
pub mod contention;
pub mod distributions;
pub mod end_to_end;
pub mod fine_grained;
pub mod reuse;
pub mod sweep;

/// 1 GB in bytes (decimal, as the paper's cache-size axis uses GB).
pub const GB: u64 = 1_000_000_000;

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a ratio as `N.N×`.
#[must_use]
pub fn times(x: f64) -> String {
    format!("{x:.1}×")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.254), "25.4%");
        assert_eq!(times(34.42), "34.4×");
    }
}
