//! Fig. 10: fine-grained analysis of FLOP-aware eviction on one
//! SWE-Bench-like trace — per-length hit-rate differences (a) and the TTFT
//! distribution (b).

use crate::{pct, GB};
use marconi_model::ModelConfig;
use marconi_sim::{Comparison, ComparisonResult, SystemKind};
use marconi_workload::{ArrivalConfig, DatasetKind, TraceGenerator};
use std::fmt::Write as _;

/// Runs the single-trace comparison the figure dissects.
#[must_use]
pub fn run() -> ComparisonResult {
    let trace = TraceGenerator::new(DatasetKind::SweBench)
        .sessions(36)
        .arrival(ArrivalConfig::new(1.0, 20.0))
        .seed(10)
        .generate();
    Comparison::new(ModelConfig::hybrid_7b(), 2 * GB)
        .systems(&[
            SystemKind::Vanilla,
            SystemKind::SglangPlus,
            SystemKind::Marconi,
        ])
        .run(&trace)
}

/// Fig. 10 rendered as text.
#[must_use]
pub fn fig10() -> String {
    let result = run();
    let marconi = result.report(SystemKind::Marconi).expect("marconi ran");
    let sglang = result.report(SystemKind::SglangPlus).expect("sglang+ ran");
    let vanilla = result.report(SystemKind::Vanilla).expect("vanilla ran");

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig 10: FLOP-aware eviction vs LRU on one SWEBench-like trace"
    );
    let _ = writeln!(
        out,
        "overall token hit rate: marconi {} vs sglang+ {} ({}% relative win)",
        pct(marconi.token_hit_rate()),
        pct(sglang.token_hit_rate()),
        if sglang.token_hit_rate() > 0.0 {
            format!(
                "{:+.1}",
                (marconi.token_hit_rate() / sglang.token_hit_rate() - 1.0) * 100.0
            )
        } else {
            "inf".to_owned()
        }
    );

    // (a) average hit rate binned by input length, Marconi − SGLang+.
    const BIN: f64 = 4000.0;
    let mb = marconi.hit_rate_by_input_len(BIN);
    let sb = sglang.hit_rate_by_input_len(BIN);
    let _ = writeln!(
        out,
        "\n## (a) avg hit rate diff by input length (marconi − sglang+)"
    );
    let _ = writeln!(
        out,
        "{:>16} {:>12} {:>12} {:>10}",
        "len_bin", "marconi", "sglang+", "diff"
    );
    for (m, s) in mb.means().iter().zip(sb.means().iter()) {
        if let (Some(mm), Some(ss)) = (m.1, s.1) {
            let _ = writeln!(
                out,
                "{:>16} {:>12} {:>12} {:>+9.1}%",
                format!("[{:.0},{:.0})", m.0, m.0 + BIN),
                pct(mm),
                pct(ss),
                (mm - ss) * 100.0
            );
        }
    }
    let _ = writeln!(
        out,
        "paper check: Marconi gives up a little hit rate on short sequences (≤ -3.0%) to gain\n\
         up to +25.5% on long ones (>7K tokens)"
    );

    // (b) TTFT distribution.
    let _ = writeln!(out, "\n## (b) TTFT (ms) percentiles");
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>8} {:>8}",
        "system", "P5", "P50", "P95"
    );
    for (name, rep) in [
        ("marconi", marconi),
        ("sglang+", sglang),
        ("vanilla", vanilla),
    ] {
        let _ = writeln!(
            out,
            "{:<10} {:>8.1} {:>8.1} {:>8.1}",
            name,
            rep.ttft_percentile_ms(0.05).unwrap_or(f64::NAN),
            rep.ttft_percentile_ms(0.50).unwrap_or(f64::NAN),
            rep.ttft_percentile_ms(0.95).unwrap_or(f64::NAN),
        );
    }
    let _ = writeln!(
        out,
        "paper check: Marconi may lose a few ms at P5 but wins at P50/P95 (paper: −13.4% / −22.0%)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marconi_wins_aggregate_and_long_sequences() {
        let result = run();
        let marconi = result.report(SystemKind::Marconi).unwrap();
        let sglang = result.report(SystemKind::SglangPlus).unwrap();
        assert!(
            marconi.token_hit_rate() >= sglang.token_hit_rate(),
            "marconi {} vs sglang+ {}",
            marconi.token_hit_rate(),
            sglang.token_hit_rate()
        );
        // P95 TTFT should not regress.
        let mp = marconi.ttft_percentile_ms(0.95).unwrap();
        let sp = sglang.ttft_percentile_ms(0.95).unwrap();
        assert!(mp <= sp * 1.02, "P95 {mp} vs {sp}");
    }
}
