//! Analytic GPU timing model.

use marconi_core::ReloadPolicy;
use marconi_model::{MemoryBandwidths, ModelConfig};
use serde::{Deserialize, Serialize};

/// Which arm of the compute-or-load decision served a host-tier hit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReloadDecision {
    /// The hit had no host-resident share (or there was no hit).
    #[default]
    None,
    /// The host bytes were transferred over PCIe.
    Loaded,
    /// The host spans were recomputed on the device.
    Recomputed,
}

/// Roofline-style device model: prefill is compute-bound, so latency is
/// FLOPs over sustained throughput, plus a fixed per-request overhead
/// (scheduling, tokenization, kernel launch).
///
/// The absolute numbers are calibrated to land in the paper's TTFT range
/// (hundreds of milliseconds to ~1.8 s on SWE-Bench-scale contexts); every
/// cross-system *comparison* cancels the constants, so conclusions depend
/// only on FLOPs skipped.
///
/// # Examples
///
/// ```
/// use marconi_model::ModelConfig;
/// use marconi_sim::GpuModel;
///
/// let gpu = GpuModel::a100_x4();
/// let m = ModelConfig::hybrid_7b();
/// let cold = gpu.ttft_ms(&m, 8192, 0);
/// let warm = gpu.ttft_ms(&m, 8192, 8000);
/// assert!(warm < cold);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    name: String,
    /// Sustained FLOP/s across the serving devices.
    effective_flops: f64,
    /// Fixed per-request overhead in seconds.
    overhead_s: f64,
    /// Memory-hierarchy bandwidths: HBM (on-device) and PCIe (host-tier
    /// reloads).
    bandwidths: MemoryBandwidths,
}

impl GpuModel {
    /// Creates a custom device model with single-A100 default bandwidths
    /// (override with [`with_bandwidths`](GpuModel::with_bandwidths)).
    ///
    /// # Panics
    ///
    /// Panics if `effective_flops` is not positive or `overhead_s` is
    /// negative.
    #[must_use]
    pub fn new(name: impl Into<String>, effective_flops: f64, overhead_s: f64) -> Self {
        assert!(
            effective_flops > 0.0 && effective_flops.is_finite(),
            "effective_flops must be positive"
        );
        assert!(
            overhead_s >= 0.0 && overhead_s.is_finite(),
            "overhead_s must be non-negative"
        );
        GpuModel {
            name: name.into(),
            effective_flops,
            overhead_s,
            bandwidths: MemoryBandwidths::a100(1),
        }
    }

    /// Overrides the memory-hierarchy bandwidths.
    #[must_use]
    pub fn with_bandwidths(mut self, bandwidths: MemoryBandwidths) -> Self {
        self.bandwidths = bandwidths;
        self
    }

    /// Four A100-40GB at ~40% model FLOPs utilization — the paper's TTFT
    /// testbed for Jamba-1.5-Mini. HBM2e + PCIe 4.0 ×16 per GPU.
    #[must_use]
    pub fn a100_x4() -> Self {
        GpuModel::new("4xA100-40GB", 4.0 * 312e12 * 0.4, 0.015)
            .with_bandwidths(MemoryBandwidths::a100(4))
    }

    /// Eight A100-40GB (the paper's p4d.24xlarge host).
    #[must_use]
    pub fn a100_x8() -> Self {
        GpuModel::new("8xA100-40GB", 8.0 * 312e12 * 0.4, 0.015)
            .with_bandwidths(MemoryBandwidths::a100(8))
    }

    /// Device name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sustained throughput in FLOP/s.
    #[must_use]
    pub fn effective_flops(&self) -> f64 {
        self.effective_flops
    }

    /// Fixed per-request overhead in seconds (scheduling, tokenization,
    /// kernel launch).
    #[must_use]
    pub fn overhead_s(&self) -> f64 {
        self.overhead_s
    }

    /// The host's memory-hierarchy bandwidths.
    #[must_use]
    pub fn bandwidths(&self) -> MemoryBandwidths {
        self.bandwidths
    }

    /// Seconds to move `bytes` of demoted cache state from host DRAM back
    /// to device HBM over PCIe — the "load" arm of the compute-or-load
    /// decision.
    ///
    /// # Examples
    ///
    /// ```
    /// use marconi_sim::GpuModel;
    ///
    /// let gpu = GpuModel::a100_x4();
    /// // A 26 MB SSM checkpoint crosses 4 PCIe links in ~0.26 ms...
    /// let t = gpu.transfer_secs(26 << 20);
    /// assert!((0.0002..0.0004).contains(&t), "{t}");
    /// // ...and 1 GiB of demoted KVs in ~10.7 ms.
    /// assert!(gpu.transfer_secs(1 << 30) < 0.011);
    /// ```
    #[must_use]
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidths.pcie_bytes_per_s
    }

    /// Latency charged for the host-resident share of a hit, together with
    /// the arm that produced it: the PCIe transfer of `host_bytes`, the
    /// recompute of `host_reload_flops`, or — under
    /// [`ReloadPolicy::ComputeOrLoad`] — whichever is faster. `(0.0,
    /// None)` when the hit has no host share.
    #[must_use]
    pub fn reload_secs(
        &self,
        policy: ReloadPolicy,
        host_bytes: u64,
        host_reload_flops: u128,
    ) -> (f64, ReloadDecision) {
        if host_bytes == 0 && host_reload_flops == 0 {
            return (0.0, ReloadDecision::None);
        }
        let load = self.transfer_secs(host_bytes);
        let recompute = self.secs_for_flops(host_reload_flops);
        match policy {
            ReloadPolicy::AlwaysReload => (load, ReloadDecision::Loaded),
            ReloadPolicy::AlwaysRecompute => (recompute, ReloadDecision::Recomputed),
            ReloadPolicy::ComputeOrLoad => {
                if load <= recompute {
                    (load, ReloadDecision::Loaded)
                } else {
                    (recompute, ReloadDecision::Recomputed)
                }
            }
        }
    }

    /// TTFT of an `input_len`-token request whose cached prefix of
    /// `hit`-tokens must partly be reloaded from the host tier: the
    /// analytic [`ttft_s`](GpuModel::ttft_s) of the uncached suffix plus
    /// the [`reload_secs`](GpuModel::reload_secs) charge.
    ///
    /// # Examples
    ///
    /// A fully host-resident 8000-token hit is still far cheaper to load
    /// over PCIe than to prefill from scratch — the tiered cache's raison
    /// d'être — while compute-or-load never does worse than either arm:
    ///
    /// ```
    /// use marconi_core::{LookupResult, ReloadPolicy};
    /// use marconi_model::ModelConfig;
    /// use marconi_sim::GpuModel;
    ///
    /// let gpu = GpuModel::a100_x4();
    /// let m = ModelConfig::hybrid_7b();
    /// let hit = LookupResult {
    ///     tokens_matched: 8000,
    ///     raw_matched: 8000,
    ///     host_tokens: 8000,
    ///     host_bytes: 8000 * m.kv_bytes_per_token() + m.ssm_checkpoint_bytes(),
    ///     host_reload_flops: m.prefill_flops(8000).total(),
    ///     ..LookupResult::MISS
    /// };
    /// let cold = gpu.ttft_s(&m, 8192, 0);
    /// let reload = gpu.reload_ttft_s(&m, 8192, &hit, ReloadPolicy::ComputeOrLoad);
    /// let recompute = gpu.reload_ttft_s(&m, 8192, &hit, ReloadPolicy::AlwaysRecompute);
    /// assert!(reload < cold, "reloading beats a cold prefill");
    /// assert!(reload <= recompute, "compute-or-load never loses");
    /// ```
    #[must_use]
    pub fn reload_ttft_s(
        &self,
        model: &ModelConfig,
        input_len: u64,
        hit: &marconi_core::LookupResult,
        policy: ReloadPolicy,
    ) -> f64 {
        let (reload, _) = self.reload_secs(policy, hit.host_bytes, hit.host_reload_flops);
        self.ttft_s(model, input_len, hit.tokens_matched) + reload
    }

    /// Seconds to execute `flops` at sustained throughput (no overhead) —
    /// the unit the continuous-batching executor charges per iteration.
    #[must_use]
    pub fn secs_for_flops(&self, flops: u128) -> f64 {
        flops as f64 / self.effective_flops
    }

    /// Seconds for one decode step of a request whose context (input plus
    /// already-decoded tokens) is `context_len` tokens: the incremental
    /// FLOPs of token `context_len + 1`. The continuous-batching executor
    /// charges exactly [`decode_token_flops`] per decoding request per
    /// iteration, so this is the single-request decode latency it models.
    #[must_use]
    pub fn decode_step_s(&self, model: &ModelConfig, context_len: u64) -> f64 {
        self.secs_for_flops(decode_token_flops(model, context_len))
    }

    /// Time to first token in seconds for an `input_len`-token prefill of
    /// which `cached_prefix` tokens are served from cache.
    ///
    /// # Panics
    ///
    /// Panics if `cached_prefix > input_len`.
    #[must_use]
    pub fn ttft_s(&self, model: &ModelConfig, input_len: u64, cached_prefix: u64) -> f64 {
        let flops = model.prefill_flops_with_prefix(input_len, cached_prefix);
        self.overhead_s + flops as f64 / self.effective_flops
    }

    /// [`ttft_s`](GpuModel::ttft_s) in milliseconds.
    #[must_use]
    pub fn ttft_ms(&self, model: &ModelConfig, input_len: u64, cached_prefix: u64) -> f64 {
        self.ttft_s(model, input_len, cached_prefix) * 1e3
    }
}

/// FLOPs of decoding one token at context length `context_len` — the
/// incremental prefill cost of token `context_len + 1`. The one decode
/// formula shared by [`GpuModel::decode_step_s`] and the
/// continuous-batching executor's per-iteration accounting.
#[must_use]
pub fn decode_token_flops(model: &ModelConfig, context_len: u64) -> u128 {
    model.prefill_flops(context_len + 1).total() - model.prefill_flops(context_len).total()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ttft_scale_matches_paper_range() {
        // The paper's TTFTs run from tens of ms (short prefills) to
        // ~1.8 s (30K-token agentic contexts).
        let gpu = GpuModel::a100_x4();
        let m = ModelConfig::jamba_mini_like();
        let short = gpu.ttft_ms(&m, 512, 0);
        let long = gpu.ttft_ms(&m, 30_000, 0);
        assert!(short < 100.0, "short prefill {short} ms");
        assert!((400.0..3000.0).contains(&long), "long prefill {long} ms");
    }

    #[test]
    fn full_hit_leaves_only_overhead() {
        let gpu = GpuModel::a100_x4();
        let m = ModelConfig::hybrid_7b();
        assert_eq!(gpu.ttft_s(&m, 1000, 1000), 0.015);
    }

    #[test]
    fn hits_monotonically_reduce_ttft() {
        let gpu = GpuModel::a100_x4();
        let m = ModelConfig::hybrid_7b();
        let mut last = f64::INFINITY;
        for prefix in [0, 1000, 4000, 8000] {
            let t = gpu.ttft_ms(&m, 8192, prefix);
            assert!(t < last);
            last = t;
        }
    }

    #[test]
    fn hybrid_prefills_faster_than_transformer_at_length() {
        // §2.1: hybrid models are up to ~8x faster than Transformers on
        // long contexts.
        let gpu = GpuModel::a100_x4();
        let h = ModelConfig::hybrid_7b();
        let t = ModelConfig::transformer_7b();
        let len = 30_000;
        assert!(gpu.ttft_s(&h, len, 0) < gpu.ttft_s(&t, len, 0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_throughput_panics() {
        let _ = GpuModel::new("bad", 0.0, 0.0);
    }

    #[test]
    fn ttft_decomposes_into_overhead_plus_flop_time() {
        let gpu = GpuModel::a100_x4();
        let m = ModelConfig::hybrid_7b();
        let flops = m.prefill_flops_with_prefix(2000, 500);
        let composed = gpu.overhead_s() + gpu.secs_for_flops(flops);
        assert!((gpu.ttft_s(&m, 2000, 500) - composed).abs() < 1e-12);
    }

    #[test]
    fn compute_or_load_takes_the_minimum_arm() {
        let gpu = GpuModel::a100_x4();
        // Cheap transfer, expensive recompute: load wins.
        let (t, d) = gpu.reload_secs(ReloadPolicy::ComputeOrLoad, 1 << 20, 1 << 50);
        assert_eq!(d, ReloadDecision::Loaded);
        assert!((t - gpu.transfer_secs(1 << 20)).abs() < 1e-15);
        // Expensive transfer, cheap recompute: compute wins.
        let (t, d) = gpu.reload_secs(ReloadPolicy::ComputeOrLoad, 1 << 33, 1 << 20);
        assert_eq!(d, ReloadDecision::Recomputed);
        assert!((t - gpu.secs_for_flops(1 << 20)).abs() < 1e-15);
        // Forced arms.
        let (_, d) = gpu.reload_secs(ReloadPolicy::AlwaysReload, 1 << 33, 1 << 20);
        assert_eq!(d, ReloadDecision::Loaded);
        let (_, d) = gpu.reload_secs(ReloadPolicy::AlwaysRecompute, 1 << 20, 1 << 50);
        assert_eq!(d, ReloadDecision::Recomputed);
        // No host share: free.
        assert_eq!(
            gpu.reload_secs(ReloadPolicy::ComputeOrLoad, 0, 0),
            (0.0, ReloadDecision::None)
        );
    }

    #[test]
    fn bandwidths_scale_between_presets() {
        let x4 = GpuModel::a100_x4();
        let x8 = GpuModel::a100_x8();
        assert!(x8.bandwidths().pcie_bytes_per_s > x4.bandwidths().pcie_bytes_per_s);
        // Same bytes, twice the links: half the transfer time.
        let bytes = 1 << 28;
        assert!((x4.transfer_secs(bytes) / x8.transfer_secs(bytes) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pcie_reload_beats_recompute_for_long_hybrid_prefixes() {
        // The crossover motivating compute-or-load: hybrid prefill FLOPs
        // grow superlinearly in bytes-of-state, so long prefixes are
        // cheaper to load, short ones can be cheaper to recompute.
        let gpu = GpuModel::a100_x4();
        let m = ModelConfig::hybrid_7b();
        let len = 8000u64;
        let bytes = len * m.kv_bytes_per_token() + m.ssm_checkpoint_bytes();
        let load = gpu.transfer_secs(bytes);
        let recompute = gpu.secs_for_flops(m.prefill_flops(len).total());
        assert!(
            load < recompute,
            "8000-token reload {load} s vs recompute {recompute} s"
        );
    }

    #[test]
    fn decode_steps_sum_to_the_suffix_prefill_time() {
        // Decoding tokens one at a time costs exactly what prefilling the
        // same span would: the executor's token-level accounting conserves
        // FLOPs.
        let gpu = GpuModel::a100_x4();
        let m = ModelConfig::hybrid_7b();
        let stepped: f64 = (1000..1032).map(|ctx| gpu.decode_step_s(&m, ctx)).sum();
        let bulk = gpu.secs_for_flops(m.prefill_flops_with_prefix(1032, 1000));
        assert!((stepped - bulk).abs() < 1e-9 * bulk.max(1e-9));
    }
}
