//! Analytic GPU timing model.

use marconi_model::ModelConfig;
use serde::{Deserialize, Serialize};

/// Roofline-style device model: prefill is compute-bound, so latency is
/// FLOPs over sustained throughput, plus a fixed per-request overhead
/// (scheduling, tokenization, kernel launch).
///
/// The absolute numbers are calibrated to land in the paper's TTFT range
/// (hundreds of milliseconds to ~1.8 s on SWE-Bench-scale contexts); every
/// cross-system *comparison* cancels the constants, so conclusions depend
/// only on FLOPs skipped.
///
/// # Examples
///
/// ```
/// use marconi_model::ModelConfig;
/// use marconi_sim::GpuModel;
///
/// let gpu = GpuModel::a100_x4();
/// let m = ModelConfig::hybrid_7b();
/// let cold = gpu.ttft_ms(&m, 8192, 0);
/// let warm = gpu.ttft_ms(&m, 8192, 8000);
/// assert!(warm < cold);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    name: String,
    /// Sustained FLOP/s across the serving devices.
    effective_flops: f64,
    /// Fixed per-request overhead in seconds.
    overhead_s: f64,
}

impl GpuModel {
    /// Creates a custom device model.
    ///
    /// # Panics
    ///
    /// Panics if `effective_flops` is not positive or `overhead_s` is
    /// negative.
    #[must_use]
    pub fn new(name: impl Into<String>, effective_flops: f64, overhead_s: f64) -> Self {
        assert!(
            effective_flops > 0.0 && effective_flops.is_finite(),
            "effective_flops must be positive"
        );
        assert!(
            overhead_s >= 0.0 && overhead_s.is_finite(),
            "overhead_s must be non-negative"
        );
        GpuModel {
            name: name.into(),
            effective_flops,
            overhead_s,
        }
    }

    /// Four A100-40GB at ~40% model FLOPs utilization — the paper's TTFT
    /// testbed for Jamba-1.5-Mini.
    #[must_use]
    pub fn a100_x4() -> Self {
        GpuModel::new("4xA100-40GB", 4.0 * 312e12 * 0.4, 0.015)
    }

    /// Eight A100-40GB (the paper's p4d.24xlarge host).
    #[must_use]
    pub fn a100_x8() -> Self {
        GpuModel::new("8xA100-40GB", 8.0 * 312e12 * 0.4, 0.015)
    }

    /// Device name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sustained throughput in FLOP/s.
    #[must_use]
    pub fn effective_flops(&self) -> f64 {
        self.effective_flops
    }

    /// Fixed per-request overhead in seconds (scheduling, tokenization,
    /// kernel launch).
    #[must_use]
    pub fn overhead_s(&self) -> f64 {
        self.overhead_s
    }

    /// Seconds to execute `flops` at sustained throughput (no overhead) —
    /// the unit the continuous-batching executor charges per iteration.
    #[must_use]
    pub fn secs_for_flops(&self, flops: u128) -> f64 {
        flops as f64 / self.effective_flops
    }

    /// Seconds for one decode step of a request whose context (input plus
    /// already-decoded tokens) is `context_len` tokens: the incremental
    /// FLOPs of token `context_len + 1`. The continuous-batching executor
    /// charges exactly [`decode_token_flops`] per decoding request per
    /// iteration, so this is the single-request decode latency it models.
    #[must_use]
    pub fn decode_step_s(&self, model: &ModelConfig, context_len: u64) -> f64 {
        self.secs_for_flops(decode_token_flops(model, context_len))
    }

    /// Time to first token in seconds for an `input_len`-token prefill of
    /// which `cached_prefix` tokens are served from cache.
    ///
    /// # Panics
    ///
    /// Panics if `cached_prefix > input_len`.
    #[must_use]
    pub fn ttft_s(&self, model: &ModelConfig, input_len: u64, cached_prefix: u64) -> f64 {
        let flops = model.prefill_flops_with_prefix(input_len, cached_prefix);
        self.overhead_s + flops as f64 / self.effective_flops
    }

    /// [`ttft_s`](GpuModel::ttft_s) in milliseconds.
    #[must_use]
    pub fn ttft_ms(&self, model: &ModelConfig, input_len: u64, cached_prefix: u64) -> f64 {
        self.ttft_s(model, input_len, cached_prefix) * 1e3
    }
}

/// FLOPs of decoding one token at context length `context_len` — the
/// incremental prefill cost of token `context_len + 1`. The one decode
/// formula shared by [`GpuModel::decode_step_s`] and the
/// continuous-batching executor's per-iteration accounting.
#[must_use]
pub fn decode_token_flops(model: &ModelConfig, context_len: u64) -> u128 {
    model.prefill_flops(context_len + 1).total() - model.prefill_flops(context_len).total()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ttft_scale_matches_paper_range() {
        // The paper's TTFTs run from tens of ms (short prefills) to
        // ~1.8 s (30K-token agentic contexts).
        let gpu = GpuModel::a100_x4();
        let m = ModelConfig::jamba_mini_like();
        let short = gpu.ttft_ms(&m, 512, 0);
        let long = gpu.ttft_ms(&m, 30_000, 0);
        assert!(short < 100.0, "short prefill {short} ms");
        assert!((400.0..3000.0).contains(&long), "long prefill {long} ms");
    }

    #[test]
    fn full_hit_leaves_only_overhead() {
        let gpu = GpuModel::a100_x4();
        let m = ModelConfig::hybrid_7b();
        assert_eq!(gpu.ttft_s(&m, 1000, 1000), 0.015);
    }

    #[test]
    fn hits_monotonically_reduce_ttft() {
        let gpu = GpuModel::a100_x4();
        let m = ModelConfig::hybrid_7b();
        let mut last = f64::INFINITY;
        for prefix in [0, 1000, 4000, 8000] {
            let t = gpu.ttft_ms(&m, 8192, prefix);
            assert!(t < last);
            last = t;
        }
    }

    #[test]
    fn hybrid_prefills_faster_than_transformer_at_length() {
        // §2.1: hybrid models are up to ~8x faster than Transformers on
        // long contexts.
        let gpu = GpuModel::a100_x4();
        let h = ModelConfig::hybrid_7b();
        let t = ModelConfig::transformer_7b();
        let len = 30_000;
        assert!(gpu.ttft_s(&h, len, 0) < gpu.ttft_s(&t, len, 0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_throughput_panics() {
        let _ = GpuModel::new("bad", 0.0, 0.0);
    }

    #[test]
    fn ttft_decomposes_into_overhead_plus_flop_time() {
        let gpu = GpuModel::a100_x4();
        let m = ModelConfig::hybrid_7b();
        let flops = m.prefill_flops_with_prefix(2000, 500);
        let composed = gpu.overhead_s() + gpu.secs_for_flops(flops);
        assert!((gpu.ttft_s(&m, 2000, 500) - composed).abs() < 1e-12);
    }

    #[test]
    fn decode_steps_sum_to_the_suffix_prefill_time() {
        // Decoding tokens one at a time costs exactly what prefilling the
        // same span would: the executor's token-level accounting conserves
        // FLOPs.
        let gpu = GpuModel::a100_x4();
        let m = ModelConfig::hybrid_7b();
        let stepped: f64 = (1000..1032).map(|ctx| gpu.decode_step_s(&m, ctx)).sum();
        let bulk = gpu.secs_for_flops(m.prefill_flops_with_prefix(1032, 1000));
        assert!((stepped - bulk).abs() < 1e-9 * bulk.max(1e-9));
    }
}
