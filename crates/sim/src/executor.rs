//! Continuous-batching executor: token-level scheduling on a virtual clock.
//!
//! One executor models one serving device. Requests wait in a FIFO
//! admission queue until a batch slot frees; the running batch advances in
//! *iterations* (the continuous-batching step): each iteration schedules a
//! shared chunked-prefill token budget FIFO across prefilling requests plus
//! one decode token per decoding request, and lasts as long as the
//! [`GpuModel`] needs for that work. Requests that finish decoding complete
//! *mid-batch* — their slot is re-admitted from the queue at the very next
//! iteration — and only completion admits a sequence into the prefix cache,
//! so under load the cache observes the true serving interleaving rather
//! than the oracle arrival order the instantaneous engine assumes.
//!
//! Everything is a pure function of the trace and the configuration: no
//! wall clock, no randomness — iteration durations come from the analytic
//! device model, ties resolve in FIFO admission order.

use crate::event::EventRecord;
use crate::gpu::{GpuModel, ReloadDecision};
use marconi_core::{CursorTable, PinTicket, PrefixCache, SessionCursor};
use marconi_trace::{ReloadDecision as TraceReload, TraceEvent, Tracer};
use marconi_workload::Request;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Knobs of the continuous-batching executor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Batch slots: maximum requests resident in the running batch.
    pub max_batch_requests: usize,
    /// Prefill tokens one iteration may schedule, shared FIFO across the
    /// batch (chunked prefill). Decode always advances one token per
    /// decoding request per iteration on top of this budget.
    pub prefill_chunk_tokens: u64,
}

impl Default for BatchConfig {
    /// 16 slots, 4096-token prefill chunks (vLLM-like defaults).
    fn default() -> Self {
        BatchConfig {
            max_batch_requests: 16,
            prefill_chunk_tokens: 4096,
        }
    }
}

impl BatchConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if either knob is zero (the executor could not make
    /// progress).
    pub fn validate(&self) {
        assert!(self.max_batch_requests > 0, "at least one batch slot");
        assert!(
            self.prefill_chunk_tokens > 0,
            "prefill chunk must be positive"
        );
    }
}

/// How iteration durations are produced.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceMode {
    /// Durations from the analytic [`GpuModel`]: iteration FLOPs over
    /// sustained throughput, plus the fixed per-request overhead charged
    /// once at admission.
    Modeled(GpuModel),
    /// Every iteration takes zero virtual time — the infinite-throughput
    /// limit. With empty queues this reproduces the instantaneous
    /// [`Engine`](crate::Engine) byte-for-byte (the zero-load parity
    /// contract): every lookup and insertion lands at exactly the
    /// request's arrival time, in arrival order.
    Instantaneous,
}

/// A request resident in the running batch.
#[derive(Debug)]
struct Running<'a> {
    req: &'a Request,
    admitted: f64,
    hit_tokens: u64,
    host_hit_tokens: u64,
    raw_matched: u64,
    flops_saved: u128,
    /// Latency charged at admission for the host-resident share of the
    /// hit (compute-or-load), and the arm that produced it.
    reload_s: f64,
    reload: ReloadDecision,
    /// Prefill frontier in tokens (starts at the cached prefix).
    prefill_pos: u64,
    /// Set when the prefill frontier reaches the input length — the TTFT
    /// instant.
    prefill_done_at: Option<f64>,
    /// In-flight pin on the admission lookup's hit path, held until
    /// completion so eviction pressure from concurrent completions cannot
    /// reclaim KVs this request is still reading.
    pin: PinTicket,
    /// The session hint taken at admission, re-spent on the completion
    /// insert. The insert revalidates it — anything that happened to the
    /// resume path while this request was in flight makes it fall back to
    /// the byte-identical root walk.
    cursor: Option<SessionCursor>,
    decoded: u64,
    /// Work scheduled for the in-flight iteration.
    sched_prefill: u64,
    sched_decode: bool,
}

/// One device's serving state: FIFO admission queue + running batch +
/// in-flight iteration. Created fresh per [`run`](crate::EventSim::run);
/// the prefix cache it drives is borrowed per call so the same executor
/// logic serves both the single-device simulator and cluster replicas.
#[derive(Debug)]
pub(crate) struct Executor<'a> {
    batch: BatchConfig,
    service: ServiceMode,
    queue: VecDeque<&'a Request>,
    queued_input_tokens: u64,
    running: Vec<Running<'a>>,
    /// End of the in-flight iteration; `None` when idle.
    busy_until: Option<f64>,
    busy_s: f64,
    iterations: u64,
    records: Vec<EventRecord>,
    tracer: Tracer,
    /// Per-session resume cursors (the PR 10 fast path): deposited by
    /// completion inserts, spent by the next admission of the same session
    /// on its lookup and pin, then re-spent on that request's completion
    /// insert.
    cursors: CursorTable,
}

impl<'a> Executor<'a> {
    pub(crate) fn new(batch: BatchConfig, service: ServiceMode, tracer: Tracer) -> Self {
        batch.validate();
        Executor {
            batch,
            service,
            queue: VecDeque::new(),
            queued_input_tokens: 0,
            running: Vec::new(),
            busy_until: None,
            busy_s: 0.0,
            iterations: 0,
            records: Vec::new(),
            tracer,
            cursors: CursorTable::new(crate::engine::DEFAULT_SESSION_CURSOR_CAP),
        }
    }

    /// Queues an arriving request; starts an iteration immediately if the
    /// device is idle.
    pub(crate) fn enqueue<C: PrefixCache>(&mut self, req: &'a Request, cache: &mut C, now: f64) {
        self.queued_input_tokens += req.input_len();
        self.queue.push_back(req);
        self.tracer.emit(|| TraceEvent::QueueAdmission {
            ts: now,
            request: req.id,
            queue_depth: self.queue.len() as u64,
            queued_tokens: self.queued_input_tokens,
        });
        if self.busy_until.is_none() {
            self.start_iteration(cache, now);
        }
    }

    /// Virtual time the in-flight iteration ends (`None` when idle).
    pub(crate) fn next_event(&self) -> Option<f64> {
        self.busy_until
    }

    pub(crate) fn is_idle(&self) -> bool {
        self.busy_until.is_none()
    }

    /// Outstanding prefill work in tokens: inputs waiting in the FIFO plus
    /// the un-prefilled remainder of every running request. This is the
    /// load signal the `QueueAware` router ties on.
    pub(crate) fn outstanding_tokens(&self) -> u64 {
        self.queued_input_tokens
            + self
                .running
                .iter()
                .map(|r| r.req.input_len() - r.prefill_pos.min(r.req.input_len()))
                .sum::<u64>()
    }

    /// Virtual seconds the device spent executing iterations.
    pub(crate) fn busy_s(&self) -> f64 {
        self.busy_s
    }

    /// Iterations executed (the discrete-event count).
    pub(crate) fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Completed-request records, in completion order.
    pub(crate) fn take_records(&mut self) -> Vec<EventRecord> {
        std::mem::take(&mut self.records)
    }

    /// Completes the iteration ending at `now`: applies its scheduled
    /// work, finishes prefills (TTFT), completes drained requests
    /// (admitting them into the cache), and starts the next iteration if
    /// any work remains.
    pub(crate) fn advance<C: PrefixCache>(&mut self, cache: &mut C, now: f64) {
        debug_assert!(
            self.busy_until.is_some_and(|t| t <= now),
            "advance before the iteration ended"
        );
        self.busy_until = None;
        for r in &mut self.running {
            r.prefill_pos += r.sched_prefill;
            r.sched_prefill = 0;
            if r.sched_decode {
                r.decoded += 1;
                r.sched_decode = false;
            }
            if r.prefill_pos >= r.req.input_len() && r.prefill_done_at.is_none() {
                r.prefill_done_at = Some(now);
            }
        }
        // Complete drained requests in admission order; completion — not
        // arrival — is what admits the sequence into the cache.
        let mut i = 0;
        while i < self.running.len() {
            let done = self.running[i].prefill_done_at.is_some()
                && self.running[i].decoded >= self.running[i].req.output_len();
            if !done {
                i += 1;
                continue;
            }
            let r = self.running.remove(i);
            // Release the pin *before* admitting the completed sequence:
            // the request is done reading its prefix, and a still-held pin
            // would exempt that path from the admission's own eviction
            // pressure (breaking pin-free parity even at zero load).
            cache.unpin(r.pin);
            let (_, next) = cache.insert_at_with(&r.req.input, &r.req.output, now, r.cursor);
            if let Some(cursor) = next {
                self.cursors.put(r.req.session_id, cursor);
            }
            let ttft_at = r
                .prefill_done_at
                .expect("invariant: completed requests have a prefill timestamp");
            self.records.push(EventRecord {
                id: r.req.id,
                session_id: r.req.session_id,
                arrival: r.req.arrival,
                admitted: r.admitted,
                completed: now,
                input_len: r.req.input_len(),
                hit_tokens: r.hit_tokens,
                host_hit_tokens: r.host_hit_tokens,
                raw_matched: r.raw_matched,
                queue_ms: (r.admitted - r.req.arrival) * 1e3,
                ttft_ms: (ttft_at - r.req.arrival) * 1e3,
                e2e_ms: (now - r.req.arrival) * 1e3,
                reload_ms: r.reload_s * 1e3,
                reload: r.reload,
                flops_spent: cache
                    .model()
                    .prefill_flops_with_prefix(r.req.input_len(), r.hit_tokens),
                flops_saved: r.flops_saved,
            });
        }
        if !self.running.is_empty() || !self.queue.is_empty() {
            self.start_iteration(cache, now);
        }
    }

    /// Starts one iteration at `now`: admits from the FIFO while slots are
    /// free (the admission lookup pins each request's cached prefix and
    /// takes the compute-or-load decision for any host-resident share),
    /// then schedules the chunked-prefill budget FIFO plus one decode
    /// token per decoding request, and charges the device model for the
    /// total — including the admitted requests' reload charges.
    fn start_iteration<C: PrefixCache>(&mut self, cache: &mut C, now: f64) {
        debug_assert!(self.busy_until.is_none());
        let mut admitted_now = 0u32;
        let mut reload_now = 0.0f64;
        while self.running.len() < self.batch.max_batch_requests {
            let Some(req) = self.queue.pop_front() else {
                break;
            };
            debug_assert!(
                self.queued_input_tokens >= req.input_len(),
                "queue accounting underflow: {} queued tokens, dequeuing {}",
                self.queued_input_tokens,
                req.input_len()
            );
            self.queued_input_tokens = self.queued_input_tokens.saturating_sub(req.input_len());
            let hint = self.cursors.take(req.session_id);
            let hit = cache.lookup_at_with(&req.input, now, hint);
            let pin = cache.pin_prefix_with(&req.input, hint);
            let (reload_s, reload) = match &self.service {
                ServiceMode::Modeled(gpu) => {
                    let priced = gpu.reload_secs(
                        cache.reload_policy(),
                        hit.host_bytes,
                        hit.host_reload_flops,
                    );
                    if priced.1 != ReloadDecision::None {
                        self.tracer.emit(|| TraceEvent::Reload {
                            ts: now,
                            cache: cache.name().into(),
                            host_bytes: hit.host_bytes,
                            load_secs: gpu.transfer_secs(hit.host_bytes),
                            recompute_secs: gpu.secs_for_flops(hit.host_reload_flops),
                            decision: match priced.1 {
                                ReloadDecision::Recomputed => TraceReload::Recompute,
                                _ => TraceReload::Load,
                            },
                        });
                    }
                    priced
                }
                // Infinite throughput also means infinite bandwidth: host
                // hits reload in zero time, but the recorded arm still
                // honors the cache's policy (an AlwaysRecompute cache
                // never transfers).
                ServiceMode::Instantaneous => (
                    0.0,
                    if !hit.needs_reload() {
                        ReloadDecision::None
                    } else if cache.reload_policy() == marconi_core::ReloadPolicy::AlwaysRecompute {
                        ReloadDecision::Recomputed
                    } else {
                        ReloadDecision::Loaded
                    },
                ),
            };
            reload_now += reload_s;
            self.running.push(Running {
                req,
                admitted: now,
                hit_tokens: hit.tokens_matched,
                host_hit_tokens: hit.host_tokens,
                raw_matched: hit.raw_matched,
                flops_saved: hit.flops_saved,
                reload_s,
                reload,
                prefill_pos: hit.tokens_matched,
                prefill_done_at: None,
                pin,
                cursor: hint,
                decoded: 0,
                sched_prefill: 0,
                sched_decode: false,
            });
            admitted_now += 1;
        }
        if self.running.is_empty() {
            return; // queue was empty too: stay idle
        }
        let model = cache.model();
        let mut budget = self.batch.prefill_chunk_tokens;
        let mut flops: u128 = 0;
        for r in &mut self.running {
            if r.prefill_pos < r.req.input_len() {
                let chunk = budget.min(r.req.input_len() - r.prefill_pos);
                if chunk > 0 {
                    r.sched_prefill = chunk;
                    budget -= chunk;
                    flops += model.prefill_flops(r.prefill_pos + chunk).total()
                        - model.prefill_flops(r.prefill_pos).total();
                }
            } else if r.prefill_done_at.is_some() && r.decoded < r.req.output_len() {
                r.sched_decode = true;
                flops += crate::gpu::decode_token_flops(model, r.req.input_len() + r.decoded);
            }
            // A freshly admitted full-prefix hit schedules nothing: its
            // prefill frontier is already at the input length, and the next
            // `advance` stamps its TTFT (queue wait + admission overhead).
        }
        let duration = match &self.service {
            ServiceMode::Instantaneous => 0.0,
            ServiceMode::Modeled(gpu) => {
                gpu.secs_for_flops(flops) + f64::from(admitted_now) * gpu.overhead_s() + reload_now
            }
        };
        self.busy_s += duration;
        self.iterations += 1;
        self.tracer.emit(|| TraceEvent::BatchIteration {
            ts: now,
            iteration: self.iterations,
            running: self.running.len() as u64,
            queue_depth: self.queue.len() as u64,
        });
        self.busy_until = Some(now + duration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marconi_core::{EvictionPolicy, HybridPrefixCache};
    use marconi_model::ModelConfig;
    use marconi_workload::{DatasetKind, TraceGenerator};

    fn cache() -> HybridPrefixCache {
        HybridPrefixCache::builder(ModelConfig::hybrid_7b())
            .capacity_bytes(1 << 40)
            .policy(EvictionPolicy::Lru)
            .build()
    }

    /// Queue-token accounting must balance exactly: every enqueued input
    /// token is subtracted exactly once at admission, so a fully drained
    /// executor reports zero outstanding work.
    #[test]
    fn queue_token_accounting_drains_to_zero() {
        let trace = TraceGenerator::new(DatasetKind::ShareGpt)
            .sessions(6)
            .seed(5)
            .generate();
        let mut c = cache();
        let mut ex = Executor::new(
            BatchConfig {
                max_batch_requests: 2,
                prefill_chunk_tokens: 512,
            },
            ServiceMode::Modeled(GpuModel::a100_x4()),
            Tracer::off(),
        );
        for r in &trace.requests {
            ex.enqueue(r, &mut c, r.arrival);
        }
        assert!(ex.outstanding_tokens() > 0, "the batch must saturate");
        while let Some(t) = ex.next_event() {
            ex.advance(&mut c, t);
        }
        assert!(ex.is_idle());
        assert_eq!(
            ex.outstanding_tokens(),
            0,
            "drained executor must owe no queued or running tokens"
        );
        assert_eq!(ex.take_records().len(), trace.requests.len());
    }

    /// The debug guard on admission catches queue-accounting drift (a
    /// request dequeued without having been counted) instead of silently
    /// wrapping `queued_input_tokens` to ~u64::MAX and poisoning the
    /// `QueueAware` router's load signal. Release builds saturate to zero.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "queue accounting underflow")]
    fn queue_accounting_underflow_is_caught_in_debug() {
        let trace = TraceGenerator::new(DatasetKind::ShareGpt)
            .sessions(1)
            .seed(1)
            .generate();
        let mut c = cache();
        let mut ex = Executor::new(
            BatchConfig::default(),
            ServiceMode::Instantaneous,
            Tracer::off(),
        );
        // Bypass `enqueue`'s token bookkeeping to simulate drift, then let
        // admission (via `advance`'s restart path) dequeue the request.
        ex.queue.push_back(&trace.requests[0]);
        ex.busy_until = Some(0.0);
        ex.advance(&mut c, 0.0);
    }
}
