//! Discrete-event serving simulation: queueing, continuous batching, and
//! load-dependent latency.
//!
//! The instantaneous [`Engine`](crate::Engine) replays traces with zero
//! service time — arrival timestamps only *order* requests, so queueing
//! delay, device occupancy, and the load regime where the paper's P95 TTFT
//! reductions actually materialize are invisible. This module adds the
//! missing layer: [`EventSim`] drives a trace through a virtual clock into
//! a per-device FIFO admission queue and a continuous-batching
//! [`executor`](crate::BatchConfig) (token-level scheduling: chunked
//! prefill shared FIFO across the batch, one decode token per decoding
//! request per iteration, completed requests free their slot mid-batch).
//! Prefill cost is the *uncached* FLOPs left after the prefix-cache lookup
//! at admission; decode cost comes from the same analytic
//! [`GpuModel`]. A sequence enters the cache at
//! **completion**, not arrival, so under load the cache sees the true
//! serving interleaving.
//!
//! Determinism contract: the whole subsystem is a pure function of
//! `(trace, cache configuration, BatchConfig, ServiceMode)` — no wall
//! clock, no randomness anywhere; simultaneous events resolve executor
//! events before arrivals, then by replica index, then FIFO. The
//! zero-load anchor: [`ServiceMode::Instantaneous`] with empty queues
//! reproduces the instantaneous `Engine` **byte-for-byte** (identical
//! `CacheStats` and per-request hit tokens — the parity tests below and
//! `ARCHITECTURE.md` pin this), so every claim established on the engine
//! transfers to the event layer's zero-load limit.
//!
//! [`EventCluster`] shards the event layer across N replicas behind the
//! same [`Router`] abstraction as the instantaneous cluster; the
//! [`RoutingPolicy::QueueAware`] policy finally lets placement trade
//! prefix locality against real-time queue depth.

use crate::cluster::{route_tie_break, trace_probes, ReplicaStatus, Router, RoutingPolicy};
use crate::executor::{BatchConfig, Executor, ServiceMode};
use crate::gpu::GpuModel;
use marconi_core::{
    CacheStats, CheckpointMode, EvictionPolicy, HybridPrefixCache, PrefixCache, ReloadPolicy,
};
use marconi_metrics::{LatencySummary, Percentiles, TierSplit};
use marconi_model::ModelConfig;
use marconi_trace::{TraceEvent, Tracer};
use marconi_workload::Trace;
use serde::{Deserialize, Serialize};

/// One request's outcome in a discrete-event run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Request id (arrival order within the trace).
    pub id: u64,
    /// Session the request belonged to.
    pub session_id: u64,
    /// Arrival time in virtual seconds.
    pub arrival: f64,
    /// When the request left the FIFO queue for a batch slot.
    pub admitted: f64,
    /// When its last decode token finished (cache admission time).
    pub completed: f64,
    /// Prefill length in tokens.
    pub input_len: u64,
    /// Tokens served from cache at admission.
    pub hit_tokens: u64,
    /// The subset of [`hit_tokens`](EventRecord::hit_tokens) that was
    /// host-resident at admission (reloaded or recomputed per the cache's
    /// reload policy).
    pub host_hit_tokens: u64,
    /// Raw longest match ignoring SSM checkpoint constraints (diagnostic).
    pub raw_matched: u64,
    /// Queueing delay in milliseconds (admitted − arrival).
    pub queue_ms: f64,
    /// Time to first token in milliseconds: queueing delay + reload +
    /// prefill service (the load-dependent generalization of the engine's
    /// analytic TTFT).
    pub ttft_ms: f64,
    /// End-to-end latency in milliseconds (completed − arrival).
    pub e2e_ms: f64,
    /// Latency charged at admission for the host-resident share of the
    /// hit, in milliseconds.
    pub reload_ms: f64,
    /// Which compute-or-load arm served the host share.
    pub reload: crate::gpu::ReloadDecision,
    /// Prefill FLOPs actually spent.
    pub flops_spent: u128,
    /// Prefill FLOPs skipped thanks to the cache.
    pub flops_saved: u128,
}

/// Aggregate result of one discrete-event run on one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventReport {
    /// System name (the cache's).
    pub system: String,
    /// Trace name the run used.
    pub trace: String,
    /// Per-request outcomes, sorted by request id (arrival order).
    pub records: Vec<EventRecord>,
    /// The cache's cumulative statistics after the run.
    pub cache_stats: CacheStats,
    /// Virtual seconds the device spent executing iterations.
    pub busy_s: f64,
    /// Batching iterations executed (the discrete-event count).
    pub iterations: u64,
    /// Virtual time of the last completion (trace start is 0).
    pub makespan_s: f64,
}

impl EventReport {
    /// Per-request TTFTs in milliseconds, in arrival order.
    #[must_use]
    pub fn ttfts_ms(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.ttft_ms).collect()
    }

    /// Per-request queueing delays in milliseconds, in arrival order.
    #[must_use]
    pub fn queue_delays_ms(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.queue_ms).collect()
    }

    /// TTFT percentile in milliseconds; `None` for an empty run.
    #[must_use]
    pub fn ttft_percentile_ms(&self, q: f64) -> Option<f64> {
        Percentiles::new(&self.ttfts_ms()).map(|p| p.quantile(q))
    }

    /// TTFT distribution summary; `None` for an empty run.
    #[must_use]
    pub fn ttft_summary(&self) -> Option<LatencySummary> {
        LatencySummary::new(&self.ttfts_ms())
    }

    /// Queueing-delay distribution summary; `None` for an empty run.
    #[must_use]
    pub fn queue_summary(&self) -> Option<LatencySummary> {
        LatencySummary::new(&self.queue_delays_ms())
    }

    /// Device utilization: busy time over the makespan, in `[0, 1]`
    /// (0.0 for an empty or instantaneous run).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        (self.busy_s / self.makespan_s).min(1.0)
    }

    /// Fraction of requests whose TTFT met `slo_ms`; `None` for an empty
    /// run.
    #[must_use]
    pub fn slo_attainment(&self, slo_ms: f64) -> Option<f64> {
        Percentiles::new(&self.ttfts_ms()).map(|p| p.fraction_le(slo_ms))
    }

    /// Goodput: SLO-meeting requests per virtual second of makespan
    /// (0.0 for an empty run; an instantaneous run reports the trace's
    /// own arrival rate, since every request trivially meets the SLO).
    #[must_use]
    pub fn goodput_rps(&self, slo_ms: f64) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        let met = self.records.iter().filter(|r| r.ttft_ms <= slo_ms).count();
        met as f64 / self.makespan_s
    }

    /// Token hit rate from the cache's counters.
    #[must_use]
    pub fn token_hit_rate(&self) -> f64 {
        self.cache_stats.token_hit_rate()
    }

    /// Hit tokens split by the memory tier that served them.
    #[must_use]
    pub fn hit_tier_split(&self) -> TierSplit {
        TierSplit {
            device: self.cache_stats.device_hit_tokens(),
            host: self.cache_stats.host_hit_tokens,
        }
    }

    /// Total reload latency charged across the run, in milliseconds.
    #[must_use]
    pub fn total_reload_ms(&self) -> f64 {
        self.records.iter().map(|r| r.reload_ms).sum()
    }

    /// Total prefill FLOPs saved across the run.
    #[must_use]
    pub fn total_flops_saved(&self) -> u128 {
        self.records.iter().map(|r| r.flops_saved).sum()
    }
}

/// Discrete-event serving simulator for one device: FIFO admission queue
/// in front of a continuous-batching executor, driving any
/// [`PrefixCache`].
///
/// # Examples
///
/// ```
/// use marconi_core::HybridPrefixCache;
/// use marconi_model::ModelConfig;
/// use marconi_sim::{EventSim, GpuModel};
/// use marconi_workload::{DatasetKind, TraceGenerator};
///
/// let cache = HybridPrefixCache::builder(ModelConfig::hybrid_7b())
///     .capacity_bytes(8 << 30)
///     .build();
/// let mut sim = EventSim::new(cache, GpuModel::a100_x4());
/// let trace = TraceGenerator::new(DatasetKind::ShareGpt)
///     .sessions(3)
///     .seed(5)
///     .generate();
/// let report = sim.run(&trace);
/// assert_eq!(report.records.len(), trace.len());
/// // TTFT now includes queueing delay on top of prefill service.
/// assert!(report.records.iter().all(|r| r.ttft_ms >= r.queue_ms));
/// ```
#[derive(Debug)]
pub struct EventSim<C> {
    cache: C,
    service: ServiceMode,
    batch: BatchConfig,
    tracer: Tracer,
}

impl<C: PrefixCache> EventSim<C> {
    /// Creates a simulator whose iteration latencies come from `gpu`.
    #[must_use]
    pub fn new(cache: C, gpu: GpuModel) -> Self {
        EventSim {
            cache,
            service: ServiceMode::Modeled(gpu),
            batch: BatchConfig::default(),
            tracer: Tracer::off(),
        }
    }

    /// Creates a simulator in the infinite-throughput limit: every
    /// iteration takes zero virtual time, so queues never form and the run
    /// reproduces the instantaneous [`Engine`](crate::Engine)
    /// byte-for-byte (the zero-load parity contract).
    #[must_use]
    pub fn instantaneous(cache: C) -> Self {
        EventSim {
            cache,
            service: ServiceMode::Instantaneous,
            batch: BatchConfig::default(),
            tracer: Tracer::off(),
        }
    }

    /// Attaches a tracer to the executor's own decisions (queue
    /// admissions, batch-iteration boundaries, reload pricing).
    /// Cache-level events are attached on the cache itself.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Overrides the continuous-batching knobs.
    ///
    /// # Panics
    ///
    /// Panics if a knob is zero.
    #[must_use]
    pub fn batch(mut self, batch: BatchConfig) -> Self {
        batch.validate();
        self.batch = batch;
        self
    }

    /// Access to the underlying cache.
    #[must_use]
    pub fn cache(&self) -> &C {
        &self.cache
    }

    /// Consumes the simulator and returns the cache.
    #[must_use]
    pub fn into_cache(self) -> C {
        self.cache
    }

    /// Replays `trace` under the virtual clock and returns the report.
    ///
    /// Arrivals feed the FIFO queue as events; the executor's iteration
    /// boundaries are the only other event source. At equal timestamps
    /// executor events fire before arrivals (a completing request admits
    /// its sequence before a simultaneous arrival looks it up — matching
    /// the engine's per-request lookup→insert order in the zero-load
    /// limit). Cache state persists across calls, like `Engine`.
    pub fn run(&mut self, trace: &Trace) -> EventReport {
        let mut exec = Executor::new(
            self.batch.clone(),
            self.service.clone(),
            self.tracer.clone(),
        );
        let mut arrivals = trace.arrivals().peekable();
        loop {
            let arrival = arrivals.peek().map(|r| r.arrival);
            match (exec.next_event(), arrival) {
                (Some(te), Some(ta)) if te <= ta => exec.advance(&mut self.cache, te),
                (_, Some(ta)) => {
                    let req = arrivals
                        .next()
                        .expect("invariant: the peeked arrival is still in the iterator");
                    exec.enqueue(req, &mut self.cache, ta);
                }
                (Some(te), None) => exec.advance(&mut self.cache, te),
                (None, None) => break,
            }
        }
        debug_assert!(exec.is_idle());
        let mut records = exec.take_records();
        records.sort_by_key(|r| r.id);
        let makespan_s = records.iter().fold(0.0f64, |m, r| m.max(r.completed));
        EventReport {
            system: self.cache.name().to_owned(),
            trace: trace.name.clone(),
            records,
            cache_stats: *self.cache.stats(),
            busy_s: exec.busy_s(),
            iterations: exec.iterations(),
            makespan_s,
        }
    }
}

/// N event-driven replicas — each its own FIFO queue, executor, and cache
/// slice — behind a [`Router`] that sees real-time queue depth.
///
/// # Examples
///
/// ```
/// use marconi_model::ModelConfig;
/// use marconi_sim::{EventCluster, RoutingPolicy};
/// use marconi_workload::{DatasetKind, TraceGenerator};
///
/// let trace = TraceGenerator::new(DatasetKind::ShareGpt)
///     .sessions(8)
///     .tenants(4)
///     .seed(3)
///     .generate();
/// let mut cluster = EventCluster::builder(ModelConfig::hybrid_7b())
///     .replicas(2)
///     .total_capacity_bytes(8 << 30)
///     .routing(RoutingPolicy::QueueAware)
///     .build();
/// let report = cluster.run(&trace);
/// assert_eq!(report.assignments.len(), trace.len());
/// ```
#[derive(Debug)]
pub struct EventCluster {
    replicas: Vec<HybridPrefixCache>,
    router: Box<dyn Router>,
    service: ServiceMode,
    batch: BatchConfig,
    tracer: Tracer,
}

impl EventCluster {
    /// Starts building an event-driven cluster for `model`.
    ///
    /// Defaults: 1 replica, 16 GiB total capacity, the cache's default
    /// (Marconi auto-tuned) eviction policy,
    /// [`RoutingPolicy::QueueAware`], a 4×A100 device per replica, default
    /// [`BatchConfig`].
    #[must_use]
    pub fn builder(model: ModelConfig) -> EventClusterBuilder {
        EventClusterBuilder {
            model,
            replicas: 1,
            total_capacity: 16 << 30,
            total_host_capacity: 0,
            reload_policy: ReloadPolicy::default(),
            policy: EvictionPolicy::default(),
            checkpoint_mode: CheckpointMode::Exact,
            service: ServiceMode::Modeled(GpuModel::a100_x4()),
            batch: BatchConfig::default(),
            router: None,
        }
    }

    /// Number of replicas.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Read access to one replica's cache (diagnostics and tests).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn replica_cache(&self, index: usize) -> &HybridPrefixCache {
        &self.replicas[index]
    }

    /// The active router's name.
    #[must_use]
    pub fn router_name(&self) -> &str {
        self.router.name()
    }

    /// Attaches a tracer to the cluster layer's own decisions (routing
    /// choices with per-replica probes, queue admissions, batch-iteration
    /// boundaries, reload pricing). Replica caches stay untraced; trace a
    /// single-cache run for cache-level events.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Replays `trace` event-by-event across all replicas.
    ///
    /// Each arrival routes against live [`ReplicaStatus`]es — prefix probe
    /// plus *outstanding queued tokens* — then joins the winner's FIFO.
    /// Simultaneous events resolve deterministically: executor iterations
    /// before arrivals, lower replica index first.
    ///
    /// # Panics
    ///
    /// Panics if the router returns an out-of-range replica index.
    pub fn run(&mut self, trace: &Trace) -> EventClusterReport {
        let n = self.replicas.len();
        let stats_before: Vec<CacheStats> = self.replicas.iter().map(|r| *r.stats()).collect();
        let mut execs: Vec<Executor<'_>> = (0..n)
            .map(|_| {
                Executor::new(
                    self.batch.clone(),
                    self.service.clone(),
                    self.tracer.clone(),
                )
            })
            .collect();
        let mut assignments = Vec::with_capacity(trace.len());
        let mut arrivals = trace.arrivals().peekable();
        loop {
            let exec_event = execs
                .iter()
                .enumerate()
                .filter_map(|(k, e)| e.next_event().map(|t| (k, t)))
                .min_by(|(ka, ta), (kb, tb)| ta.total_cmp(tb).then(ka.cmp(kb)));
            let arrival = arrivals.peek().map(|r| r.arrival);
            match (exec_event, arrival) {
                (Some((k, te)), Some(ta)) if te <= ta => {
                    execs[k].advance(&mut self.replicas[k], te);
                }
                (_, Some(ta)) => {
                    let req = arrivals
                        .next()
                        .expect("invariant: the peeked arrival is still in the iterator");
                    let statuses: Vec<ReplicaStatus<'_>> = self
                        .replicas
                        .iter()
                        .zip(&execs)
                        .enumerate()
                        .map(|(idx, (cache, exec))| {
                            ReplicaStatus::new(idx, cache, exec.outstanding_tokens())
                        })
                        .collect();
                    let idx = self.router.route(req, &statuses);
                    assert!(
                        idx < n,
                        "router {} picked replica {idx} of {n}",
                        self.router.name()
                    );
                    if self.tracer.is_enabled() {
                        let probes = trace_probes(req, &statuses);
                        let tie_break = route_tie_break(self.router.name(), &probes);
                        self.tracer.emit(|| TraceEvent::RouterDecision {
                            ts: ta,
                            request: req.id,
                            chosen: idx as u64,
                            tie_break,
                            probes,
                        });
                    }
                    execs[idx].enqueue(req, &mut self.replicas[idx], ta);
                    assignments.push(idx);
                }
                (Some((k, te)), None) => execs[k].advance(&mut self.replicas[k], te),
                (None, None) => break,
            }
        }
        let replicas = self
            .replicas
            .iter()
            .zip(&mut execs)
            .zip(stats_before)
            .enumerate()
            .map(|(i, ((cache, exec), before))| {
                let mut records = exec.take_records();
                records.sort_by_key(|r| r.id);
                let makespan_s = records.iter().fold(0.0f64, |m, r| m.max(r.completed));
                EventReport {
                    system: format!("{}[{i}]", cache.name()),
                    trace: trace.name.clone(),
                    records,
                    cache_stats: cache.stats().delta_since(&before),
                    busy_s: exec.busy_s(),
                    iterations: exec.iterations(),
                    makespan_s,
                }
            })
            .collect();
        EventClusterReport {
            router: self.router.name().to_owned(),
            trace: trace.name.clone(),
            replicas,
            assignments,
        }
    }
}

/// Builder for [`EventCluster`]; see [`EventCluster::builder`].
#[derive(Debug)]
pub struct EventClusterBuilder {
    model: ModelConfig,
    replicas: usize,
    total_capacity: u64,
    total_host_capacity: u64,
    reload_policy: ReloadPolicy,
    policy: EvictionPolicy,
    checkpoint_mode: CheckpointMode,
    service: ServiceMode,
    batch: BatchConfig,
    router: Option<Box<dyn Router>>,
}

impl EventClusterBuilder {
    /// Sets the replica count.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    #[must_use]
    pub fn replicas(mut self, replicas: usize) -> Self {
        assert!(replicas > 0, "a cluster needs at least one replica");
        self.replicas = replicas;
        self
    }

    /// Sets the cluster-wide device capacity; each replica gets an equal
    /// `total / N` slice.
    #[must_use]
    pub fn total_capacity_bytes(mut self, bytes: u64) -> Self {
        self.total_capacity = bytes;
        self
    }

    /// Sets the cluster-wide host-DRAM budget, sliced `total / N` like the
    /// device capacity (default 0 = single-tier replicas).
    #[must_use]
    pub fn total_host_capacity_bytes(mut self, bytes: u64) -> Self {
        self.total_host_capacity = bytes;
        self
    }

    /// Sets every replica's reload policy for host-resident hits (default
    /// [`ReloadPolicy::ComputeOrLoad`]).
    #[must_use]
    pub fn reload_policy(mut self, policy: ReloadPolicy) -> Self {
        self.reload_policy = policy;
        self
    }

    /// Sets every replica's eviction policy.
    #[must_use]
    pub fn policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets every replica's SSM checkpoint mode (default
    /// [`CheckpointMode::Exact`]).
    #[must_use]
    pub fn checkpoint_mode(mut self, mode: CheckpointMode) -> Self {
        self.checkpoint_mode = mode;
        self
    }

    /// Sets the per-replica device model.
    #[must_use]
    pub fn gpu(mut self, gpu: GpuModel) -> Self {
        self.service = ServiceMode::Modeled(gpu);
        self
    }

    /// Puts every replica in the infinite-throughput (zero-load) limit.
    #[must_use]
    pub fn instantaneous(mut self) -> Self {
        self.service = ServiceMode::Instantaneous;
        self
    }

    /// Overrides the per-replica continuous-batching knobs.
    ///
    /// # Panics
    ///
    /// Panics if a knob is zero.
    #[must_use]
    pub fn batch(mut self, batch: BatchConfig) -> Self {
        batch.validate();
        self.batch = batch;
        self
    }

    /// Selects a built-in routing policy (default
    /// [`RoutingPolicy::QueueAware`]).
    #[must_use]
    pub fn routing(mut self, policy: RoutingPolicy) -> Self {
        self.router = Some(policy.build());
        self
    }

    /// Installs a custom router.
    #[must_use]
    pub fn router(mut self, router: Box<dyn Router>) -> Self {
        self.router = Some(router);
        self
    }

    /// Builds the cluster.
    #[must_use]
    pub fn build(self) -> EventCluster {
        EventCluster {
            replicas: crate::cluster::build_replicas(
                &self.model,
                self.replicas,
                self.total_capacity,
                self.total_host_capacity,
                &self.policy,
                self.checkpoint_mode,
                self.reload_policy,
            ),
            router: self
                .router
                .unwrap_or_else(|| RoutingPolicy::QueueAware.build()),
            service: self.service,
            batch: self.batch,
            tracer: Tracer::off(),
        }
    }
}

/// Result of one [`EventCluster::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct EventClusterReport {
    /// Router name the run used.
    pub router: String,
    /// Trace name the run used.
    pub trace: String,
    /// One [`EventReport`] per replica, covering this run's requests only.
    pub replicas: Vec<EventReport>,
    /// Replica index each request was routed to, in arrival order.
    pub assignments: Vec<usize>,
}

impl EventClusterReport {
    /// Cluster-wide cache statistics (per-replica counters summed; see
    /// [`CacheStats::accumulate`] for the peak-usage caveat).
    #[must_use]
    pub fn aggregate_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for rep in &self.replicas {
            total.accumulate(&rep.cache_stats);
        }
        total
    }

    /// Cluster-wide token hit rate.
    #[must_use]
    pub fn aggregate_token_hit_rate(&self) -> f64 {
        self.aggregate_stats().token_hit_rate()
    }

    /// Cluster-wide hit tokens split by serving tier.
    #[must_use]
    pub fn hit_tier_split(&self) -> TierSplit {
        let mut total = TierSplit::default();
        for rep in &self.replicas {
            total.accumulate(&rep.hit_tier_split());
        }
        total
    }

    /// All per-request TTFTs across replicas, in global arrival order.
    #[must_use]
    pub fn ttfts_ms(&self) -> Vec<f64> {
        let mut with_ids: Vec<(u64, f64)> = self
            .replicas
            .iter()
            .flat_map(|r| r.records.iter().map(|rec| (rec.id, rec.ttft_ms)))
            .collect();
        with_ids.sort_by_key(|&(id, _)| id);
        with_ids.into_iter().map(|(_, t)| t).collect()
    }

    /// Cluster-wide TTFT distribution summary; `None` for an empty run.
    #[must_use]
    pub fn ttft_summary(&self) -> Option<LatencySummary> {
        LatencySummary::new(&self.ttfts_ms())
    }

    /// Input tokens routed to each replica during this run.
    #[must_use]
    pub fn replica_loads(&self) -> Vec<u64> {
        self.replicas
            .iter()
            .map(|r| r.cache_stats.input_tokens)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use marconi_workload::{DatasetKind, TraceGenerator};

    fn sharegpt(sessions: usize, seed: u64) -> Trace {
        TraceGenerator::new(DatasetKind::ShareGpt)
            .sessions(sessions)
            .seed(seed)
            .generate()
    }

    fn marconi_cache(capacity: u64, policy: EvictionPolicy) -> HybridPrefixCache {
        HybridPrefixCache::builder(ModelConfig::hybrid_7b())
            .capacity_bytes(capacity)
            .policy(policy)
            .build()
    }

    #[test]
    fn zero_load_parity_with_instantaneous_engine() {
        // THE parity contract: at infinite throughput and empty queues the
        // event simulator must reproduce the instantaneous Engine
        // byte-for-byte — identical CacheStats (including eviction counts
        // under contention) and identical per-request hit tokens — for
        // every eviction policy family.
        let trace = sharegpt(24, 2);
        for policy in [
            EvictionPolicy::Lru,
            EvictionPolicy::FlopAware { alpha: 2.0 },
            EvictionPolicy::default(), // Marconi auto-tuned
        ] {
            // 1 GB: far below the working set, so eviction decisions (and
            // therefore recency timestamps) matter.
            let capacity = 1 << 30;
            let mut engine =
                Engine::new(marconi_cache(capacity, policy.clone()), GpuModel::a100_x4());
            let expected = engine.run(&trace);
            let mut sim = EventSim::instantaneous(marconi_cache(capacity, policy.clone()));
            let got = sim.run(&trace);
            assert_eq!(
                got.cache_stats, expected.cache_stats,
                "{policy:?}: CacheStats must be byte-identical"
            );
            assert_eq!(got.records.len(), expected.records.len());
            for (e, g) in expected.records.iter().zip(&got.records) {
                assert_eq!(e.id, g.id, "{policy:?}: record order");
                assert_eq!(e.hit_tokens, g.hit_tokens, "{policy:?}: req {}", e.id);
                assert_eq!(e.raw_matched, g.raw_matched, "{policy:?}: req {}", e.id);
                assert_eq!(e.flops_saved, g.flops_saved, "{policy:?}: req {}", e.id);
                assert_eq!(e.flops_spent, g.flops_spent, "{policy:?}: req {}", e.id);
                assert_eq!(g.queue_ms, 0.0, "zero load means empty queues");
                assert_eq!(g.arrival, g.completed, "instantaneous completion");
            }
        }
    }

    #[test]
    fn n1_instantaneous_event_cluster_matches_event_sim_and_engine() {
        // The cluster-side parity anchor, mirroring the instantaneous
        // cluster's: one event replica at infinite throughput is the
        // single-device event sim, which is the engine.
        let trace = sharegpt(12, 11);
        let capacity = 2 << 30;
        let mut engine = Engine::new(
            marconi_cache(capacity, EvictionPolicy::Lru),
            GpuModel::a100_x4(),
        );
        let expected = engine.run(&trace);
        for routing in RoutingPolicy::ALL {
            let mut cluster = EventCluster::builder(ModelConfig::hybrid_7b())
                .replicas(1)
                .total_capacity_bytes(capacity)
                .policy(EvictionPolicy::Lru)
                .instantaneous()
                .routing(routing)
                .build();
            let report = cluster.run(&trace);
            assert_eq!(
                report.replicas[0].cache_stats, expected.cache_stats,
                "{routing}: CacheStats must match the engine"
            );
            let hits: Vec<u64> = report.replicas[0]
                .records
                .iter()
                .map(|r| r.hit_tokens)
                .collect();
            let expected_hits: Vec<u64> = expected.records.iter().map(|r| r.hit_tokens).collect();
            assert_eq!(hits, expected_hits, "{routing}: per-request hit tokens");
            assert!(report.assignments.iter().all(|&i| i == 0));
        }
    }

    #[test]
    fn event_runs_are_deterministic() {
        // Modeled mode is as deterministic as instantaneous mode: two runs
        // produce bit-identical reports (all-f64 fields included).
        let trace = sharegpt(10, 5).time_scaled(20.0);
        let run = || {
            let mut sim = EventSim::new(
                marconi_cache(4 << 30, EvictionPolicy::Lru),
                GpuModel::a100_x4(),
            );
            sim.run(&trace)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_load_modeled_ttft_matches_the_analytic_model() {
        // At negligible load (no queueing, whole prefill in one chunk) the
        // event TTFT degenerates to the engine's analytic
        // overhead + flops/throughput — the modeled service path is
        // calibrated, not merely ordered.
        let trace = sharegpt(4, 9).time_scaled(0.01); // ~100× sparser arrivals
        let gpu = GpuModel::a100_x4();
        let mut sim = EventSim::new(marconi_cache(1 << 40, EvictionPolicy::Lru), gpu.clone())
            .batch(BatchConfig {
                max_batch_requests: 16,
                prefill_chunk_tokens: u64::MAX >> 1,
            });
        let report = sim.run(&trace);
        let model = ModelConfig::hybrid_7b();
        for r in &report.records {
            assert_eq!(r.queue_ms, 0.0, "req {}: no queueing at zero load", r.id);
            let analytic = gpu.ttft_ms(&model, r.input_len, r.hit_tokens);
            assert!(
                (r.ttft_ms - analytic).abs() < 1e-6 * analytic,
                "req {}: event {} vs analytic {}",
                r.id,
                r.ttft_ms,
                analytic
            );
        }
        assert!(report.utilization() > 0.0 && report.utilization() < 0.2);
    }

    #[test]
    fn saturation_inflates_tail_latency_and_marconi_bends_the_curve() {
        // The acceptance assertion: above device throughput, queueing
        // delay dominates — P95 TTFT under the event sim strictly exceeds
        // the zero-load analytic P95 — and Marconi's prefix reuse removes
        // enough prefill work that its P95 stays strictly below vanilla's
        // on the same contended trace.
        let trace = sharegpt(16, 7).time_scaled(40.0);
        let gpu = GpuModel::a100_x4();
        let model = ModelConfig::hybrid_7b();

        // The trace must genuinely exceed capacity without caching.
        let offered_flops: u128 = trace
            .requests
            .iter()
            .map(|r| model.prefill_flops(r.input_len()).total())
            .sum();
        let offered_rate = offered_flops as f64 / trace.duration();
        assert!(
            offered_rate > gpu.effective_flops(),
            "trace must saturate the device: offered {offered_rate:.3e} vs {:.3e}",
            gpu.effective_flops()
        );

        let p95 = |report: &EventReport| report.ttft_percentile_ms(0.95).unwrap();

        let mut marconi = EventSim::new(marconi_cache(1 << 40, EvictionPolicy::Lru), gpu.clone());
        let marconi_report = marconi.run(&trace);
        let mut vanilla =
            EventSim::new(marconi_core::VanillaCache::new(model.clone()), gpu.clone());
        let vanilla_report = vanilla.run(&trace);

        // Zero-load analytic P95 on the identical cache configuration.
        let mut engine = Engine::new(marconi_cache(1 << 40, EvictionPolicy::Lru), gpu);
        let zero_load_p95 = engine.run(&trace).ttft_percentile_ms(0.95).unwrap();

        assert!(
            p95(&marconi_report) > zero_load_p95,
            "saturation must inflate the tail: event {} vs zero-load {}",
            p95(&marconi_report),
            zero_load_p95
        );
        assert!(
            p95(&marconi_report) < p95(&vanilla_report),
            "prefix caching must bend the latency curve: marconi {} vs vanilla {}",
            p95(&marconi_report),
            p95(&vanilla_report)
        );
        // Queueing is the mechanism: delays are non-trivial under overload.
        assert!(
            marconi_report.queue_summary().unwrap().p95() > 0.0,
            "saturated runs must queue"
        );
    }

    #[test]
    fn completion_time_insertion_changes_what_the_cache_sees() {
        // The semantic point of the event layer: under load, a request
        // arriving before an earlier identical-prefix request *completes*
        // cannot hit on it — the instantaneous engine (insertion at
        // arrival) overstates reuse.
        use marconi_workload::Request;
        let first_input: Vec<u32> = (0..4000).collect();
        let output: Vec<u32> = (50_000..50_008).collect();
        // A conversation resume: request 1 extends request 0's full
        // sequence, so its prefix ends exactly on the SSM checkpoint
        // admitted at request 0's last decoded token.
        let mut resume = first_input.clone();
        resume.extend_from_slice(&output);
        resume.extend(60_000..60_040);
        let mk = |id, arrival, input: &[u32]| Request {
            id,
            session_id: 0,
            tenant_id: 0,
            turn: id as u32,
            arrival,
            input: input.to_vec(),
            output: output.clone(),
        };
        // Request 1 arrives 1 ms after request 0 — far sooner than
        // request 0's ~100 ms service time.
        let trace = Trace {
            name: "overlap".into(),
            requests: vec![mk(0, 0.0, &first_input), mk(1, 0.001, &resume)],
        };
        let mut engine = Engine::new(
            marconi_cache(1 << 40, EvictionPolicy::Lru),
            GpuModel::a100_x4(),
        );
        let eng = engine.run(&trace);
        assert!(
            eng.records[1].hit_tokens > 0,
            "engine's oracle ordering grants the second request a hit"
        );
        let mut sim = EventSim::new(
            marconi_cache(1 << 40, EvictionPolicy::Lru),
            GpuModel::a100_x4(),
        );
        let evt = sim.run(&trace);
        assert_eq!(
            evt.records[1].hit_tokens, 0,
            "under load the prefix is not yet cached when request 1 is admitted"
        );
    }

    #[test]
    fn batch_slots_bound_concurrency_and_free_mid_batch() {
        // With one slot, requests serialize: each admission waits for the
        // previous completion (slot freed mid-trace), so queue delays grow
        // monotonically under simultaneous pressure.
        let trace = sharegpt(6, 3).time_scaled(1000.0); // near-simultaneous arrivals
        let mut sim = EventSim::new(
            marconi_cache(1 << 40, EvictionPolicy::Lru),
            GpuModel::a100_x4(),
        )
        .batch(BatchConfig {
            max_batch_requests: 1,
            prefill_chunk_tokens: 4096,
        });
        let report = sim.run(&trace);
        // Serialized: no two requests overlap, so total busy time ≈
        // makespan and utilization is ~1.
        assert!(
            report.utilization() > 0.95,
            "serialized overload should pin the device: {}",
            report.utilization()
        );
        let delays = report.queue_delays_ms();
        assert!(delays.last().unwrap() > &delays[1], "queue builds up");
    }

    #[test]
    fn goodput_and_slo_attainment_degrade_with_load() {
        let base = sharegpt(12, 13);
        let run = |mult: f64| {
            let mut sim = EventSim::new(
                marconi_cache(1 << 40, EvictionPolicy::Lru),
                GpuModel::a100_x4(),
            );
            sim.run(&base.time_scaled(mult))
        };
        let light = run(0.1);
        let heavy = run(50.0);
        let slo_ms = 2.0 * light.ttft_percentile_ms(0.95).unwrap();
        assert!(light.slo_attainment(slo_ms).unwrap() >= 0.95);
        assert!(
            heavy.slo_attainment(slo_ms).unwrap() < light.slo_attainment(slo_ms).unwrap(),
            "overload must hurt SLO attainment"
        );
        assert!(heavy.utilization() > light.utilization());
    }

    #[test]
    fn queue_aware_routing_beats_blind_prefix_affinity_under_hot_spots() {
        // Two replicas, one tenant's prompt hot: pure prefix affinity
        // funnels everything to one queue, queue-aware routing spills to
        // the idle replica once the depth tie-breaker kicks in. At minimum
        // the router must be deterministic and spread load no worse.
        let trace = TraceGenerator::new(DatasetKind::ShareGpt)
            .sessions(12)
            .tenants(2)
            .seed(19)
            .generate()
            .time_scaled(30.0);
        let run = |routing: RoutingPolicy| {
            let mut c = EventCluster::builder(ModelConfig::hybrid_7b())
                .replicas(2)
                .total_capacity_bytes(8 << 30)
                .policy(EvictionPolicy::Lru)
                .routing(routing)
                .build();
            c.run(&trace)
        };
        let qa = run(RoutingPolicy::QueueAware);
        let qa2 = run(RoutingPolicy::QueueAware);
        assert_eq!(qa, qa2, "queue-aware routing must be deterministic");
        let p95 = |r: &EventClusterReport| Percentiles::new(&r.ttfts_ms()).unwrap().quantile(0.95);
        let pa = run(RoutingPolicy::PrefixAware);
        assert!(
            p95(&qa) <= p95(&pa) * 1.001,
            "queue awareness must not worsen tail latency: qa {} vs pa {}",
            p95(&qa),
            p95(&pa)
        );
        assert_eq!(qa.assignments.len(), trace.len());
        assert!(qa.ttft_summary().is_some());
    }

    #[test]
    fn compute_or_load_p95_never_exceeds_recompute_only() {
        // The acceptance assertion for the tiered event path: on a
        // contended trace whose device tier demotes aggressively, the
        // compute-or-load rule (min of transfer and recompute per request)
        // yields a P95 TTFT no worse than forcing every host hit through
        // recompute — and the host tier actually carries traffic.
        use marconi_core::ReloadPolicy;
        let trace = sharegpt(16, 7).time_scaled(4.0);
        let m = ModelConfig::hybrid_7b();
        let capacity = 6000 * m.kv_bytes_per_token();
        let run = |policy: ReloadPolicy| {
            let cache = HybridPrefixCache::builder(m.clone())
                .capacity_bytes(capacity)
                .host_capacity_bytes(16 << 30)
                .policy(EvictionPolicy::Lru)
                .reload_policy(policy)
                .build();
            let mut sim = EventSim::new(cache, GpuModel::a100_x4());
            sim.run(&trace)
        };
        let col = run(ReloadPolicy::ComputeOrLoad);
        let recompute_only = run(ReloadPolicy::AlwaysRecompute);
        assert!(
            col.cache_stats.demotions > 0 && col.cache_stats.host_hit_tokens > 0,
            "the trace must exercise the host tier: {:?} demotions",
            col.cache_stats.demotions
        );
        assert!(col.total_reload_ms() > 0.0, "reloads must be charged");
        assert!(
            col.records
                .iter()
                .any(|r| r.reload == crate::gpu::ReloadDecision::Loaded),
            "PCIe transfers must win for long prefixes"
        );
        let p95_col = col.ttft_percentile_ms(0.95).unwrap();
        let p95_rec = recompute_only.ttft_percentile_ms(0.95).unwrap();
        assert!(
            p95_col <= p95_rec * (1.0 + 1e-9),
            "compute-or-load P95 {p95_col} must not exceed recompute-only {p95_rec}"
        );
    }

    #[test]
    fn zero_load_reload_charge_matches_the_analytic_model() {
        // One demoted entry, one sparse follow-up: the event TTFT must be
        // exactly the analytic uncached-prefill TTFT plus the reload
        // charge the GpuModel computes for the hit's host share.
        use marconi_core::ReloadPolicy;
        let m = ModelConfig::hybrid_7b();
        let capacity = 2 * (2048 + 32) * m.kv_bytes_per_token() + 2 * m.ssm_checkpoint_bytes() + 1;
        let cache = HybridPrefixCache::builder(m.clone())
            .capacity_bytes(capacity)
            .host_capacity_bytes(1 << 40)
            .policy(EvictionPolicy::Lru)
            .reload_policy(ReloadPolicy::ComputeOrLoad)
            .build();
        let gpu = GpuModel::a100_x4();
        let mut sim = EventSim::new(cache, gpu.clone()).batch(BatchConfig {
            max_batch_requests: 16,
            prefill_chunk_tokens: u64::MAX >> 1,
        });
        let mk = |id, arrival, input: Vec<u32>, out_base: u32| marconi_workload::Request {
            id,
            session_id: id,
            tenant_id: 0,
            turn: 0,
            arrival,
            input,
            output: (out_base..out_base + 32).collect(),
        };
        // A is admitted, then demoted by B and C's pressure; A's resume
        // arrives much later (no queueing).
        let a: Vec<u32> = (0..2048).collect();
        let mut resume = a.clone();
        resume.extend(500_000..500_032); // A's decoded output
        resume.extend(600_000..600_040);
        let trace = Trace {
            name: "reload".into(),
            requests: vec![
                mk(0, 0.0, a, 500_000),
                mk(1, 10.0, (100_000..102_048).collect(), 510_000),
                mk(2, 20.0, (200_000..202_048).collect(), 520_000),
                mk(3, 30.0, resume, 530_000),
            ],
        };
        let report = sim.run(&trace);
        let r = &report.records[3];
        assert_eq!(r.hit_tokens, 2080, "the resume hits A's full sequence");
        assert_eq!(r.host_hit_tokens, 2080, "served entirely from host");
        assert!(r.reload_ms > 0.0);
        let host_bytes = 2080 * m.kv_bytes_per_token() + m.ssm_checkpoint_bytes();
        let host_flops = m.prefill_flops(2080).total();
        let (reload_s, _) = gpu.reload_secs(ReloadPolicy::ComputeOrLoad, host_bytes, host_flops);
        let analytic = gpu.ttft_ms(&m, r.input_len, r.hit_tokens) + reload_s * 1e3;
        assert!(
            (r.ttft_ms - analytic).abs() < 1e-6 * analytic,
            "event {} vs analytic {}",
            r.ttft_ms,
            analytic
        );
    }

    #[test]
    fn cache_state_persists_across_runs() {
        let trace = sharegpt(4, 21);
        let mut sim = EventSim::instantaneous(marconi_cache(1 << 40, EvictionPolicy::Lru));
        let first = sim.run(&trace);
        let second = sim.run(&trace);
        assert_eq!(first.records.len(), second.records.len());
        // `cache_stats` is cumulative (like `Engine`): the second run must
        // add hits on the warm cache and never dilute the rate.
        assert!(
            second.cache_stats.hit_tokens > first.cache_stats.hit_tokens,
            "an identical replay against the warm cache must keep hitting"
        );
        assert!(second.token_hit_rate() >= first.token_hit_rate());
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let trace = Trace {
            name: "empty".into(),
            requests: vec![],
        };
        let mut sim = EventSim::new(
            marconi_cache(1 << 30, EvictionPolicy::Lru),
            GpuModel::a100_x4(),
        );
        let report = sim.run(&trace);
        assert!(report.records.is_empty());
        assert_eq!(report.utilization(), 0.0);
        assert_eq!(report.goodput_rps(100.0), 0.0);
        assert!(report.ttft_summary().is_none());
    }

    #[test]
    #[should_panic(expected = "batch slot")]
    fn zero_slot_batch_rejected() {
        let _ = EventSim::new(
            marconi_cache(1 << 30, EvictionPolicy::Lru),
            GpuModel::a100_x4(),
        )
        .batch(BatchConfig {
            max_batch_requests: 0,
            prefill_chunk_tokens: 1,
        });
    }

    /// Builds the PR 6 mid-decode eviction scenario: session A's chain is
    /// resumed by a long-decoding request while three completing pressure
    /// chains overflow the byte budget, and two probes read which chain
    /// survived before the decode finishes. Returns the model, the byte
    /// capacity that forces exactly one chain out, and the trace. Shared by
    /// the pinning test below and the PR 9 miss-attribution test.
    fn mid_flight_scenario() -> (ModelConfig, u64, Trace) {
        use marconi_workload::Request;
        let m = ModelConfig::hybrid_7b();
        let a_in: Vec<u32> = (0..96).collect();
        let a_out: Vec<u32> = (500..532).collect();
        let mut resume_a = a_in.clone();
        resume_a.extend_from_slice(&a_out);
        resume_a.extend(2000..2020);
        let mk = |id, arrival, input: Vec<u32>, output: Vec<u32>| Request {
            id,
            session_id: id,
            tenant_id: 0,
            turn: 0,
            arrival,
            input,
            output,
        };
        let pressure_seq = |base: u32| {
            (
                (base..base + 96).collect(),
                (base + 500..base + 504).collect(),
            )
        };
        // Session A's chain: 128 tokens + checkpoint. Pressure chains
        // (96 in + 4 out): 100 tokens + checkpoint. Capacity fits A plus
        // two pressure chains; the third completion must evict one chain.
        let capacity = (128 + 2 * 100) * m.kv_bytes_per_token() + 3 * m.ssm_checkpoint_bytes() + 1;

        // Calibrate the decode window: how long request 1 (the in-flight
        // victim-to-be, with a 4000-token decode) stays resident when run
        // alone, so arrivals can be placed *inside* that window without
        // hardcoding iteration latencies.
        let calibrate = {
            let trace = Trace {
                name: "calibrate".into(),
                requests: vec![
                    mk(0, 0.0, a_in.clone(), a_out.clone()),
                    mk(1, 1.0, resume_a.clone(), (40_000..44_000).collect()),
                ],
            };
            let mut sim = EventSim::new(
                marconi_cache(1 << 40, EvictionPolicy::Lru),
                GpuModel::a100_x4(),
            );
            let rep = sim.run(&trace);
            rep.records[1].completed - rep.records[1].admitted
        };
        assert!(calibrate > 0.0);

        let (c1_in, c1_out): (Vec<u32>, Vec<u32>) = pressure_seq(10_000);
        let mut resume_c1 = c1_in.clone();
        resume_c1.extend_from_slice(&c1_out);
        let (c2_in, c2_out) = pressure_seq(20_000);
        let (c3_in, c3_out) = pressure_seq(30_000);
        let t0 = 1.0;
        let trace = Trace {
            name: "mid-flight".into(),
            requests: vec![
                // 0: establishes session A's cached chain.
                mk(0, 0.0, a_in.clone(), a_out.clone()),
                // 1: resumes A and decodes for a long time — its admission
                // lookup hits A's 128-token checkpoint.
                mk(1, t0, resume_a.clone(), (40_000..44_000).collect()),
                // 2–4: pressure — each completion admits a fresh chain;
                // the third overflows the byte budget mid-flight of 1.
                mk(2, t0 + 0.05 * calibrate, c1_in, c1_out.clone()),
                mk(3, t0 + 0.10 * calibrate, c2_in, c2_out),
                mk(4, t0 + 0.15 * calibrate, c3_in, c3_out),
                // 5–6: probes landing after the pressure but before 1
                // completes, reading which chain survived.
                mk(
                    5,
                    t0 + 0.90 * calibrate,
                    resume_a.clone(),
                    (600..604).collect(),
                ),
                mk(6, t0 + 0.92 * calibrate, resume_c1, (700..704).collect()),
            ],
        };
        (m, capacity, trace)
    }

    /// The headline bug PR 6 fixes, demonstrated end-to-end under the
    /// modeled clock: a long-decoding request's admission-time hit path is
    /// reclaimed by eviction pressure from concurrently *completing*
    /// requests — unless the admission lookup pins it. The two runs
    /// diverge exactly (and only) at that victim choice: unpinned,
    /// pressure takes the in-flight path; pinned, it takes the next-best
    /// victim instead.
    #[test]
    fn mid_flight_eviction_is_prevented_by_pinning() {
        let (m, capacity, trace) = mid_flight_scenario();
        let run = |pin: bool| {
            let cache = HybridPrefixCache::builder(m.clone())
                .capacity_bytes(capacity)
                .policy(EvictionPolicy::Lru)
                .in_flight_pinning(pin)
                .build();
            let mut sim = EventSim::new(cache, GpuModel::a100_x4());
            let rep = sim.run(&trace);
            // Self-validate the overlap the scenario depends on: all the
            // pressure completed, and both probes were admitted, while
            // request 1 was still decoding.
            let r = &rep.records;
            assert!(
                r[4].completed < r[5].admitted,
                "pressure must land before the probes"
            );
            assert!(
                r[6].admitted < r[1].completed,
                "probes must observe the mid-flight state"
            );
            assert_eq!(r[1].hit_tokens, 128, "request 1 hit A's checkpoint");
            rep
        };

        let unpinned = run(false);
        let pinned = run(true);
        // Unpinned: pressure reclaimed the chain request 1 was decoding
        // from (a use-after-free in a real engine); the bystander chain
        // survived.
        assert_eq!(unpinned.records[5].hit_tokens, 0, "in-flight path evicted");
        assert_eq!(unpinned.records[6].hit_tokens, 100, "bystander survived");
        // Pinned: the victim choice diverges exactly there — the pinned
        // in-flight path survives and pressure takes the bystander.
        assert_eq!(pinned.records[5].hit_tokens, 128, "in-flight path pinned");
        assert_eq!(pinned.records[6].hit_tokens, 0, "next-best victim taken");
        // ... and nowhere else: both runs reclaim under the same pressure.
        assert!(unpinned.cache_stats.evictions > 0);
        assert_eq!(
            unpinned.cache_stats.evictions, pinned.cache_stats.evictions,
            "pinning redirects victims, it does not change how much pressure reclaims"
        );
        // All pins were redeemed at completion.
        assert_eq!(pinned.cache_stats.lookups, unpinned.cache_stats.lookups);
    }

    /// PR 9: the flight recorder tells the two mid-flight outcomes apart
    /// by miss cause. Unpinned, probe 5's miss is `capacity-evicted` (its
    /// prefix was reclaimed by ordinary pressure); pinned, the eviction
    /// routes around the pinned chain and probe 6's miss is
    /// `pinned-bystander` — the taxonomy localizes PR 6's bug class from
    /// the trace alone.
    #[test]
    fn mid_flight_misses_are_attributed() {
        use marconi_trace::{MissCause, RingRecorder, TraceEvent, Tracer};
        let (m, capacity, trace) = mid_flight_scenario();
        let run = |pin: bool| {
            let (tracer, recorder) = Tracer::to_sink(RingRecorder::new(1 << 14));
            let mut cache = HybridPrefixCache::builder(m.clone())
                .capacity_bytes(capacity)
                .policy(EvictionPolicy::Lru)
                .in_flight_pinning(pin)
                .build();
            cache.set_tracer(tracer);
            EventSim::new(cache, GpuModel::a100_x4()).run(&trace);
            recorder
        };
        // The probes are the only lookups with (their input length, zero
        // matched tokens): request 1 resumes the same 148 tokens as probe 5
        // but hits the still-cached chain.
        let attribution =
            |rec: &std::sync::Arc<std::sync::Mutex<RingRecorder>>, len: u64| -> Option<MissCause> {
                let rec = rec.lock().expect("lock: test-local recorder");
                let mut found = rec.events().filter_map(|e| match e.event {
                    TraceEvent::Lookup {
                        input_len,
                        matched: 0,
                        attribution,
                        ..
                    } if input_len == len => Some(attribution),
                    _ => None,
                });
                let att = found
                    .next()
                    .expect("invariant: the probe's miss must be traced");
                assert_eq!(found.next(), None, "exactly one missing lookup of {len}");
                att
            };
        let unpinned = run(false);
        assert_eq!(
            attribution(&unpinned, 148),
            Some(MissCause::CapacityEvicted),
            "unpinned: the in-flight chain was taken by ordinary capacity pressure"
        );
        let pinned = run(true);
        assert_eq!(
            attribution(&pinned, 100),
            Some(MissCause::PinnedBystander),
            "pinned: the bystander chain was evicted while a pin diverted pressure"
        );
    }
}
