//! Trace-driven serving simulator for hybrid-LLM prefix caching.
//!
//! Replays a [`marconi_workload::Trace`] against any
//! [`marconi_core::PrefixCache`], producing per-request records (hit
//! tokens, FLOPs, TTFT) and aggregate reports. TTFT comes from an analytic
//! [`GpuModel`]: prefill is compute-bound, so time-to-first-token is the
//! FLOPs of the *uncached* prefill portion divided by effective device
//! throughput plus a fixed overhead (DESIGN.md documents this substitution
//! for the paper's 4×A100 testbed).
//!
//! The [`Comparison`] runner drives the same trace through Marconi and
//! every baseline (vanilla, vLLM+, SGLang+, and the offline static-α
//! oracle) for the paper's end-to-end experiments.
//!
//! Beyond the paper's single-replica setting, the [`cluster`] module shards
//! the cache across N replicas behind a pluggable [`Router`] (round-robin,
//! session-affinity, prefix-aware, or queue-aware placement) to study how
//! much prefix reuse survives at cluster scale; see `ARCHITECTURE.md` for
//! the layer's contract.
//!
//! ## The event layer (`event`)
//!
//! The engine above replays instantaneously — arrivals only *order*
//! requests. The [`event`] module adds a deterministic discrete-event
//! simulator: [`EventSim`] drives arrivals through a per-device FIFO
//! admission queue into a continuous-batching executor ([`BatchConfig`]:
//! chunked prefill shared FIFO across batch slots, one decode token per
//! decoding request per iteration, slots freed mid-batch), with iteration
//! latencies from the same [`GpuModel`] and cache insertion at request
//! *completion*. [`EventReport`] adds what the instantaneous reports
//! cannot see: queueing delay, load-dependent TTFT (= queue + prefill),
//! device utilization, and goodput under an SLO. [`EventCluster`] shards
//! it behind the same routers, whose [`ReplicaStatus`] then carries live
//! queue depth.
//!
//! **Determinism guarantees:** the event layer is a pure function of
//! `(trace, cache config, BatchConfig, ServiceMode)` — no wall clock and
//! no unseeded randomness anywhere in the subsystem; simultaneous events
//! resolve executor-before-arrival, then by replica index, then FIFO. In
//! the [`ServiceMode::Instantaneous`] limit it reproduces [`Engine`]
//! **byte-for-byte** (the zero-load parity contract in `ARCHITECTURE.md`).
//!
//! # Examples
//!
//! ```
//! use marconi_model::ModelConfig;
//! use marconi_sim::{Comparison, GpuModel, SystemKind};
//! use marconi_workload::{DatasetKind, TraceGenerator};
//!
//! let trace = TraceGenerator::new(DatasetKind::ShareGpt)
//!     .sessions(5)
//!     .seed(1)
//!     .generate();
//! let cmp = Comparison::new(ModelConfig::hybrid_7b(), 4 << 30)
//!     .gpu(GpuModel::a100_x4())
//!     .systems(&[SystemKind::Vanilla, SystemKind::Marconi])
//!     .run(&trace);
//! let marconi = cmp.report(SystemKind::Marconi).unwrap();
//! let vanilla = cmp.report(SystemKind::Vanilla).unwrap();
//! assert!(marconi.token_hit_rate() >= vanilla.token_hit_rate());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
mod comparison;
mod engine;
pub mod event;
mod executor;
mod gpu;
mod report;

pub use cluster::{
    Cluster, ClusterBuilder, ClusterReport, PrefixAware, QueueAware, ReplicaStatus, RoundRobin,
    Router, RoutingPolicy, SessionAffinity,
};
pub use comparison::{Comparison, ComparisonResult, SystemKind};
pub use engine::Engine;
pub use event::{
    EventCluster, EventClusterBuilder, EventClusterReport, EventRecord, EventReport, EventSim,
};
pub use executor::{BatchConfig, ServiceMode};
pub use gpu::{decode_token_flops, GpuModel, ReloadDecision};
pub use report::{RequestRecord, SimReport};
