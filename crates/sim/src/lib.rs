//! Trace-driven serving simulator for hybrid-LLM prefix caching.
//!
//! Replays a [`marconi_workload::Trace`] against any
//! [`marconi_core::PrefixCache`], producing per-request records (hit
//! tokens, FLOPs, TTFT) and aggregate reports. TTFT comes from an analytic
//! [`GpuModel`]: prefill is compute-bound, so time-to-first-token is the
//! FLOPs of the *uncached* prefill portion divided by effective device
//! throughput plus a fixed overhead (DESIGN.md documents this substitution
//! for the paper's 4×A100 testbed).
//!
//! The [`Comparison`] runner drives the same trace through Marconi and
//! every baseline (vanilla, vLLM+, SGLang+, and the offline static-α
//! oracle) for the paper's end-to-end experiments.
//!
//! Beyond the paper's single-replica setting, the [`cluster`] module shards
//! the cache across N replicas behind a pluggable [`Router`] (round-robin,
//! session-affinity, or prefix-aware placement) to study how much prefix
//! reuse survives at cluster scale; see `ARCHITECTURE.md` for the layer's
//! contract.
//!
//! # Examples
//!
//! ```
//! use marconi_model::ModelConfig;
//! use marconi_sim::{Comparison, GpuModel, SystemKind};
//! use marconi_workload::{DatasetKind, TraceGenerator};
//!
//! let trace = TraceGenerator::new(DatasetKind::ShareGpt)
//!     .sessions(5)
//!     .seed(1)
//!     .generate();
//! let cmp = Comparison::new(ModelConfig::hybrid_7b(), 4 << 30)
//!     .gpu(GpuModel::a100_x4())
//!     .systems(&[SystemKind::Vanilla, SystemKind::Marconi])
//!     .run(&trace);
//! let marconi = cmp.report(SystemKind::Marconi).unwrap();
//! let vanilla = cmp.report(SystemKind::Vanilla).unwrap();
//! assert!(marconi.token_hit_rate() >= vanilla.token_hit_rate());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
mod comparison;
mod engine;
mod gpu;
mod report;

pub use cluster::{
    Cluster, ClusterBuilder, ClusterReport, PrefixAware, ReplicaStatus, RoundRobin, Router,
    RoutingPolicy, SessionAffinity,
};
pub use comparison::{Comparison, ComparisonResult, SystemKind};
pub use engine::Engine;
pub use gpu::GpuModel;
pub use report::{RequestRecord, SimReport};
