//! Multi-system comparison runner.

use crate::engine::Engine;
use crate::gpu::GpuModel;
use crate::report::SimReport;
use marconi_core::oracle::{best_static_alpha, SequenceEvent};
use marconi_core::{
    BlockCache, BlockReuseReport, EvictionPolicy, HybridPrefixCache, PrefixCache, TunerConfig,
    VanillaCache,
};
use marconi_model::ModelConfig;
use marconi_workload::Trace;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The systems of the paper's evaluation (§5.1 plus the artifact's V3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// No prefix caching.
    Vanilla,
    /// Fine-grained block checkpointing, LRU (vLLM extended to hybrids).
    VllmPlus,
    /// Judicious admission + LRU eviction (SGLang extended per §5.1).
    SglangPlus,
    /// Judicious admission + FLOP-aware eviction with online α tuning.
    Marconi,
    /// Offline-optimal static α (the artifact's eviction policy V3).
    OracleStaticAlpha,
}

impl SystemKind {
    /// All systems in presentation order.
    pub const ALL: [SystemKind; 5] = [
        SystemKind::Vanilla,
        SystemKind::VllmPlus,
        SystemKind::SglangPlus,
        SystemKind::Marconi,
        SystemKind::OracleStaticAlpha,
    ];

    /// The caching systems (everything but vanilla).
    pub const CACHES: [SystemKind; 4] = [
        SystemKind::VllmPlus,
        SystemKind::SglangPlus,
        SystemKind::Marconi,
        SystemKind::OracleStaticAlpha,
    ];
}

impl fmt::Display for SystemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SystemKind::Vanilla => "vanilla",
            SystemKind::VllmPlus => "vllm+",
            SystemKind::SglangPlus => "sglang+",
            SystemKind::Marconi => "marconi",
            SystemKind::OracleStaticAlpha => "oracle-v3",
        };
        f.write_str(name)
    }
}

/// Configures and runs the same trace through a set of systems.
///
/// See the [crate example](crate) for usage.
#[derive(Debug, Clone)]
pub struct Comparison {
    model: ModelConfig,
    capacity_bytes: u64,
    gpu: GpuModel,
    block_size: u64,
    oracle_grid: Vec<f64>,
    systems: Vec<SystemKind>,
    tuner: TunerConfig,
}

/// Reports from a [`Comparison`] run, one per system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonResult {
    /// `(system, report)` pairs in the order systems were configured.
    pub reports: Vec<(SystemKind, SimReport)>,
    /// Block-reuse accounting when vLLM+ was among the systems (Fig. 3a).
    pub block_reuse: Option<BlockReuseReport>,
    /// The α the oracle chose, when it ran.
    pub oracle_alpha: Option<f64>,
}

impl ComparisonResult {
    /// The report for one system, if it was run.
    #[must_use]
    pub fn report(&self, system: SystemKind) -> Option<&SimReport> {
        self.reports
            .iter()
            .find(|(s, _)| *s == system)
            .map(|(_, r)| r)
    }

    /// Token-hit-rate ratio of `a` over `b` (the paper's "X× higher hit
    /// rate" comparisons). `None` if either is missing or `b` is zero.
    #[must_use]
    pub fn hit_rate_ratio(&self, a: SystemKind, b: SystemKind) -> Option<f64> {
        let ra = self.report(a)?.token_hit_rate();
        let rb = self.report(b)?.token_hit_rate();
        (rb > 0.0).then(|| ra / rb)
    }
}

impl Comparison {
    /// Creates a comparison for a model and cache capacity, defaulting to
    /// all five systems, a 4×A100 device model, block size 32, and the
    /// default oracle α grid.
    #[must_use]
    pub fn new(model: ModelConfig, capacity_bytes: u64) -> Self {
        Comparison {
            model,
            capacity_bytes,
            gpu: GpuModel::a100_x4(),
            block_size: 32,
            oracle_grid: vec![0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0],
            systems: SystemKind::ALL.to_vec(),
            tuner: TunerConfig::default(),
        }
    }

    /// Configures Marconi's online α tuner (bootstrap multiplier, grid).
    #[must_use]
    pub fn marconi_tuner(mut self, tuner: TunerConfig) -> Self {
        self.tuner = tuner;
        self
    }

    /// Sets the device model.
    #[must_use]
    pub fn gpu(mut self, gpu: GpuModel) -> Self {
        self.gpu = gpu;
        self
    }

    /// Sets vLLM+'s token-block size (default 32, per §5.1).
    #[must_use]
    pub fn block_size(mut self, block_size: u64) -> Self {
        self.block_size = block_size;
        self
    }

    /// Sets the oracle's α grid.
    #[must_use]
    pub fn oracle_grid(mut self, grid: Vec<f64>) -> Self {
        self.oracle_grid = grid;
        self
    }

    /// Restricts which systems run.
    #[must_use]
    pub fn systems(mut self, systems: &[SystemKind]) -> Self {
        self.systems = systems.to_vec();
        self
    }

    /// Runs every configured system over `trace`.
    #[must_use]
    pub fn run(&self, trace: &Trace) -> ComparisonResult {
        let mut reports = Vec::with_capacity(self.systems.len());
        let mut block_reuse = None;
        let mut oracle_alpha = None;
        for &system in &self.systems {
            let report = match system {
                SystemKind::Vanilla => self.run_one(VanillaCache::new(self.model.clone()), trace),
                SystemKind::VllmPlus => {
                    let cache = BlockCache::builder(self.model.clone())
                        .capacity_bytes(self.capacity_bytes)
                        .block_size(self.block_size)
                        .build();
                    let mut engine = Engine::new(cache, self.gpu.clone());
                    let report = engine.run(trace);
                    block_reuse = Some(engine.cache().reuse_report());
                    report
                }
                SystemKind::SglangPlus => self.run_one(
                    HybridPrefixCache::builder(self.model.clone())
                        .capacity_bytes(self.capacity_bytes)
                        .policy(EvictionPolicy::Lru)
                        .build(),
                    trace,
                ),
                SystemKind::Marconi => self.run_one(
                    HybridPrefixCache::builder(self.model.clone())
                        .capacity_bytes(self.capacity_bytes)
                        .policy(EvictionPolicy::AutoTuned(self.tuner.clone()))
                        .build(),
                    trace,
                ),
                SystemKind::OracleStaticAlpha => {
                    let events: Vec<SequenceEvent> = trace
                        .requests
                        .iter()
                        .map(|r| SequenceEvent {
                            input: r.input.clone(),
                            output: r.output.clone(),
                            at: r.arrival,
                        })
                        .collect();
                    let outcome = best_static_alpha(
                        &self.model,
                        self.capacity_bytes,
                        &events,
                        &self.oracle_grid,
                        true,
                    );
                    oracle_alpha = Some(outcome.best_alpha);
                    self.run_one(
                        HybridPrefixCache::builder(self.model.clone())
                            .capacity_bytes(self.capacity_bytes)
                            .policy(EvictionPolicy::FlopAware {
                                alpha: outcome.best_alpha,
                            })
                            .name("oracle-v3")
                            .build(),
                        trace,
                    )
                }
            };
            reports.push((system, report));
        }
        ComparisonResult {
            reports,
            block_reuse,
            oracle_alpha,
        }
    }

    fn run_one<C: PrefixCache>(&self, cache: C, trace: &Trace) -> SimReport {
        Engine::new(cache, self.gpu.clone()).run(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marconi_workload::{DatasetKind, TraceGenerator};

    fn trace() -> Trace {
        TraceGenerator::new(DatasetKind::ShareGpt)
            .sessions(10)
            .seed(3)
            .generate()
    }

    fn tight_capacity() -> u64 {
        let m = ModelConfig::hybrid_7b();
        3000 * m.kv_bytes_per_token() + 8 * m.ssm_checkpoint_bytes()
    }

    #[test]
    fn all_systems_produce_reports() {
        let cmp = Comparison::new(ModelConfig::hybrid_7b(), tight_capacity()).run(&trace());
        assert_eq!(cmp.reports.len(), 5);
        for system in SystemKind::ALL {
            assert!(cmp.report(system).is_some(), "{system} missing");
        }
        assert!(cmp.oracle_alpha.is_some());
    }

    #[test]
    fn marconi_beats_vllm_plus_on_hit_rate() {
        // Fig. 7's qualitative claim under cache contention.
        let cmp = Comparison::new(ModelConfig::hybrid_7b(), tight_capacity())
            .systems(&[SystemKind::VllmPlus, SystemKind::Marconi])
            .run(&trace());
        let marconi = cmp.report(SystemKind::Marconi).unwrap().token_hit_rate();
        let vllm = cmp.report(SystemKind::VllmPlus).unwrap().token_hit_rate();
        assert!(
            marconi > vllm,
            "marconi {marconi} must beat vllm+ {vllm} under contention"
        );
    }

    #[test]
    fn oracle_at_least_matches_sglang_plus() {
        let cmp = Comparison::new(ModelConfig::hybrid_7b(), tight_capacity())
            .systems(&[SystemKind::SglangPlus, SystemKind::OracleStaticAlpha])
            .run(&trace());
        let sglang = cmp.report(SystemKind::SglangPlus).unwrap().token_hit_rate();
        let oracle = cmp
            .report(SystemKind::OracleStaticAlpha)
            .unwrap()
            .token_hit_rate();
        assert!(
            oracle >= sglang - 1e-9,
            "oracle (α includes 0) can't lose to LRU: {oracle} vs {sglang}"
        );
    }

    #[test]
    fn hit_rate_ratio_computes() {
        let cmp = Comparison::new(ModelConfig::hybrid_7b(), tight_capacity())
            .systems(&[SystemKind::VllmPlus, SystemKind::Marconi])
            .run(&trace());
        let ratio = cmp.hit_rate_ratio(SystemKind::Marconi, SystemKind::VllmPlus);
        if let Some(r) = ratio {
            assert!(r > 0.0);
        }
    }

    #[test]
    fn pure_transformer_systems_converge() {
        // Fig. 12a rightmost group: with no SSM layers the three caching
        // systems behave (nearly) identically; block quantization costs
        // vLLM+ at most one block per request.
        let m = ModelConfig::transformer_7b();
        let capacity = 6000 * m.kv_bytes_per_token();
        let cmp = Comparison::new(m, capacity)
            .systems(&[
                SystemKind::VllmPlus,
                SystemKind::SglangPlus,
                SystemKind::Marconi,
            ])
            .run(&trace());
        let sglang = cmp.report(SystemKind::SglangPlus).unwrap().token_hit_rate();
        let marconi = cmp.report(SystemKind::Marconi).unwrap().token_hit_rate();
        let vllm = cmp.report(SystemKind::VllmPlus).unwrap().token_hit_rate();
        assert!((sglang - marconi).abs() < 0.05);
        assert!((sglang - vllm).abs() < 0.1);
    }
}
