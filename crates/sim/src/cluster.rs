//! Sharded cluster simulation: N cache replicas behind a pluggable router.
//!
//! Marconi's evaluation is single-replica; at production scale a fleet of
//! cache replicas sits behind a router that decides where each request
//! lands, and the *placement* decision determines how much cross-request
//! prefix reuse survives sharding. This module replays a trace against N
//! independent [`HybridPrefixCache`] replicas — each with its own capacity
//! slice and eviction policy — under a [`Router`]:
//!
//! * [`RoundRobin`] — spreads consecutive requests evenly, destroying both
//!   session history and shared-prompt locality;
//! * [`SessionAffinity`] — pins each session to `hash(session_id) % N`,
//!   preserving within-session reuse but scattering tenants;
//! * [`PrefixAware`] — probes every replica's radix tree for the longest
//!   reusable cached prefix (via the non-mutating
//!   [`PrefixCache::longest_cached_prefix_len`]) and routes to the best
//!   match, breaking ties toward the least-loaded replica;
//! * [`QueueAware`] — like [`PrefixAware`], but ties break toward the
//!   fewest outstanding queued tokens — meaningful under the event-driven
//!   [`EventCluster`](crate::EventCluster), where queues actually form.
//!
//! An N=1 cluster reproduces the single-node [`Engine`](crate::Engine)
//! byte-for-byte under every router (the parity tests below pin this), so
//! the paper-claims suite anchors the cluster layer.

use crate::gpu::GpuModel;
use crate::report::{RequestRecord, SimReport};
use marconi_core::{
    CacheStats, CheckpointMode, EvictionPolicy, HybridPrefixCache, PrefixCache, ReloadPolicy,
    TieredPrefix,
};
use marconi_metrics::LoadImbalance;
use marconi_model::ModelConfig;
use marconi_trace::{ReloadDecision as TraceReload, ReplicaProbe, TraceEvent, Tracer};
use marconi_workload::{Request, Token, Trace};
use std::fmt;

/// What a [`Router`] may see of one replica: a read-only probe plus load
/// accounting. Probing **cannot** mutate the replica — placement probes on
/// replicas that don't win a request leave them byte-identical.
#[derive(Debug)]
pub struct ReplicaStatus<'a> {
    index: usize,
    cache: &'a HybridPrefixCache,
    queued_tokens: u64,
}

impl<'a> ReplicaStatus<'a> {
    /// Builds the router-facing view of one replica. `queued_tokens` is the
    /// replica's outstanding prefill backlog; the instantaneous
    /// [`Cluster`] always passes 0 (its queues never form), the
    /// event-driven [`EventCluster`](crate::EventCluster) passes live
    /// queue depth.
    pub(crate) fn new(index: usize, cache: &'a HybridPrefixCache, queued_tokens: u64) -> Self {
        ReplicaStatus {
            index,
            cache,
            queued_tokens,
        }
    }

    /// This replica's index in the cluster.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Outstanding prefill backlog in tokens: inputs waiting in the
    /// replica's admission queue plus un-prefilled remainders of its
    /// running batch. Always 0 under the instantaneous [`Cluster`].
    #[must_use]
    pub fn queued_tokens(&self) -> u64 {
        self.queued_tokens
    }

    /// Longest reusable cached prefix of `input` on this replica, in
    /// tokens, without touching recency or stats
    /// ([`PrefixCache::longest_cached_prefix_len`]).
    #[must_use]
    pub fn probe(&self, input: &[Token]) -> u64 {
        self.cache.longest_cached_prefix_len(input)
    }

    /// Tier-split probe: the longest reusable cached prefix *and* how much
    /// of it is host-resident (would need a PCIe transfer or recompute).
    /// Same non-mutating guarantee as [`probe`](ReplicaStatus::probe);
    /// `probe_tiers(input).tokens == probe(input)` always.
    #[must_use]
    pub fn probe_tiers(&self, input: &[Token]) -> TieredPrefix {
        self.cache.probe_tiers(input)
    }

    /// Input tokens routed to this replica so far (the load measure).
    ///
    /// Every routed request performs exactly one lookup on its winning
    /// replica, so this is the cache's own cumulative `input_tokens`
    /// counter — one source of truth shared with
    /// [`ClusterReport::replica_loads`].
    #[must_use]
    pub fn routed_tokens(&self) -> u64 {
        self.cache.stats().input_tokens
    }

    /// Bytes of model states currently resident on this replica's device
    /// tier.
    #[must_use]
    pub fn usage_bytes(&self) -> u64 {
        self.cache.usage_bytes()
    }

    /// This replica's device-capacity slice in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.cache.capacity_bytes()
    }

    /// Bytes of model states demoted to this replica's host tier.
    #[must_use]
    pub fn host_usage_bytes(&self) -> u64 {
        self.cache.host_usage_bytes()
    }

    /// This replica's host-budget slice in bytes (0 = single-tier).
    #[must_use]
    pub fn host_capacity_bytes(&self) -> u64 {
        self.cache.host_capacity_bytes()
    }
}

/// A routing policy: picks the replica each request is served on.
///
/// Implementations must be deterministic — same request sequence and same
/// replica states must produce the same assignment — so cluster replays are
/// reproducible (the seeded-determinism tests enforce this for every
/// built-in router).
pub trait Router: fmt::Debug {
    /// Human-readable policy name (used in reports).
    fn name(&self) -> &str;

    /// Picks the replica index in `[0, replicas.len())` for `req`.
    ///
    /// Probing `replicas` is free of side effects; only the winning replica
    /// will observe the request.
    fn route(&mut self, req: &Request, replicas: &[ReplicaStatus<'_>]) -> usize;
}

/// Round-robin routing: request `k` goes to replica `k % N`. The
/// locality-oblivious baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl Router for RoundRobin {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn route(&mut self, _req: &Request, replicas: &[ReplicaStatus<'_>]) -> usize {
        let idx = self.next % replicas.len();
        self.next = (self.next + 1) % replicas.len();
        idx
    }
}

/// Session-affinity routing: `splitmix64(session_id) % N`, so every turn of
/// a session lands on the same replica. Preserves conversation-history
/// reuse; blind to cross-session (shared-prompt) reuse.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionAffinity;

/// SplitMix64: a fixed, portable integer hash so assignments never depend
/// on process- or platform-specific hasher state.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Router for SessionAffinity {
    fn name(&self) -> &str {
        "session-affinity"
    }

    fn route(&mut self, req: &Request, replicas: &[ReplicaStatus<'_>]) -> usize {
        (splitmix64(req.session_id) % replicas.len() as u64) as usize
    }
}

/// Prefix-aware routing: probe every replica for the longest reusable
/// cached prefix of the request's input and route to the deepest match;
/// among equally deep matches, prefer the one with more of the prefix
/// device-resident (a host hit pays a reload before it serves), then the
/// least-loaded replica (fewest routed tokens), then the lowest index.
///
/// This recovers both reuse channels sharding endangers: a session's later
/// turns follow its cached history, and a tenant's new sessions follow the
/// replica already holding the tenant's system prompt.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrefixAware;

impl Router for PrefixAware {
    fn name(&self) -> &str {
        "prefix-aware"
    }

    fn route(&mut self, req: &Request, replicas: &[ReplicaStatus<'_>]) -> usize {
        // Probe each replica exactly once (a probe walks the radix tree
        // over the full input — too expensive to re-run inside the
        // comparator).
        replicas
            .iter()
            .map(|r| (r.probe_tiers(&req.input), r))
            .max_by(|(pa, a), (pb, b)| {
                pa.tokens
                    .cmp(&pb.tokens)
                    // Deeper wins outright; on a depth tie the hit with
                    // fewer host-resident tokens is worth more. With no
                    // host tier anywhere this term always ties, preserving
                    // the pre-tiering assignments exactly.
                    .then(pb.host_tokens.cmp(&pa.host_tokens))
                    .then(b.routed_tokens().cmp(&a.routed_tokens()))
                    .then(b.index.cmp(&a.index))
            })
            .map(|(_, r)| r.index)
            .expect("invariant: clusters have at least one replica")
    }
}

/// Queue-aware routing: probe every replica for the longest reusable
/// cached prefix (like [`PrefixAware`], including the device-over-host
/// preference on depth ties) but then break ties toward the replica with
/// the fewest *outstanding queued tokens*, then fewest routed tokens,
/// then the lowest index.
///
/// Under the instantaneous [`Cluster`] every queue reads 0 and this
/// degenerates to exactly [`PrefixAware`]; under the event-driven
/// [`EventCluster`](crate::EventCluster) it is the policy that finally
/// trades prefix locality against real-time load — a deep cached prefix
/// on a replica with a long backlog can still win, but among equally-warm
/// replicas the request joins the shortest queue.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueAware;

impl Router for QueueAware {
    fn name(&self) -> &str {
        "queue-aware"
    }

    fn route(&mut self, req: &Request, replicas: &[ReplicaStatus<'_>]) -> usize {
        replicas
            .iter()
            .map(|r| (r.probe_tiers(&req.input), r))
            .max_by(|(pa, a), (pb, b)| {
                pa.tokens
                    .cmp(&pb.tokens)
                    .then(pb.host_tokens.cmp(&pa.host_tokens))
                    .then(b.queued_tokens.cmp(&a.queued_tokens))
                    // Queues tie (e.g. an idle fleet, or the instantaneous
                    // cluster where depth is always 0): spread by
                    // cumulative routed load like `PrefixAware`, so the
                    // policy never funnels cold traffic to replica 0.
                    .then(b.routed_tokens().cmp(&a.routed_tokens()))
                    .then(b.index.cmp(&a.index))
            })
            .map(|(_, r)| r.index)
            .expect("invariant: clusters have at least one replica")
    }
}

/// Snapshot of every replica's router-visible state for a
/// [`TraceEvent::RouterDecision`], built only while a tracer is enabled.
/// Uses the same non-mutating probes the routers use, so capturing it
/// leaves every replica byte-identical.
pub(crate) fn trace_probes(req: &Request, statuses: &[ReplicaStatus<'_>]) -> Vec<ReplicaProbe> {
    statuses
        .iter()
        .map(|s| {
            let tiers = s.probe_tiers(&req.input);
            ReplicaProbe {
                replica: s.index() as u64,
                matched_tokens: tiers.tokens,
                host_tokens: tiers.host_tokens,
                queued_tokens: s.queued_tokens(),
                routed_tokens: s.routed_tokens(),
            }
        })
        .collect()
}

/// Which comparator stage decided a routing choice, replayed
/// observationally from the probes: the first stage of the
/// prefix-/queue-aware total order at which a unique survivor remains.
/// Hash- and rotation-based routers report their policy name; unknown
/// custom routers report `custom`.
pub(crate) fn route_tie_break(router: &str, probes: &[ReplicaProbe]) -> &'static str {
    if probes.len() <= 1 {
        return "single-replica";
    }
    match router {
        "round-robin" => return "round-robin",
        "session-affinity" => return "session-affinity",
        "prefix-aware" | "queue-aware" => {}
        _ => return "custom",
    }
    /// One comparator stage: (label, probe key, whether max survives).
    type Stage = (&'static str, fn(&ReplicaProbe) -> u64, bool);
    let mut survivors: Vec<&ReplicaProbe> = probes.iter().collect();
    let stages: [Stage; 4] = [
        ("prefix-tokens", |p| p.matched_tokens, true),
        ("host-tokens", |p| p.host_tokens, false),
        ("queue-depth", |p| p.queued_tokens, false),
        ("routed-tokens", |p| p.routed_tokens, false),
    ];
    for (label, key, prefer_max) in stages {
        if label == "queue-depth" && router != "queue-aware" {
            continue;
        }
        let best = survivors
            .iter()
            .map(|p| key(p))
            .fold(None, |acc: Option<u64>, v| {
                Some(match acc {
                    None => v,
                    Some(a) if prefer_max => a.max(v),
                    Some(a) => a.min(v),
                })
            });
        let Some(best) = best else { break };
        survivors.retain(|p| key(p) == best);
        if survivors.len() == 1 {
            return label;
        }
    }
    "replica-index"
}

/// The built-in routing policies, for sweeps and builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingPolicy {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`SessionAffinity`].
    SessionAffinity,
    /// [`PrefixAware`].
    PrefixAware,
    /// [`QueueAware`].
    QueueAware,
}

impl RoutingPolicy {
    /// All built-in policies, weakest locality first.
    pub const ALL: [RoutingPolicy; 4] = [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::SessionAffinity,
        RoutingPolicy::PrefixAware,
        RoutingPolicy::QueueAware,
    ];

    /// Instantiates the router.
    #[must_use]
    pub fn build(self) -> Box<dyn Router> {
        match self {
            RoutingPolicy::RoundRobin => Box::new(RoundRobin::default()),
            RoutingPolicy::SessionAffinity => Box::new(SessionAffinity),
            RoutingPolicy::PrefixAware => Box::new(PrefixAware),
            RoutingPolicy::QueueAware => Box::new(QueueAware),
        }
    }
}

impl fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::SessionAffinity => "session-affinity",
            RoutingPolicy::PrefixAware => "prefix-aware",
            RoutingPolicy::QueueAware => "queue-aware",
        };
        f.write_str(name)
    }
}

/// N cache replicas behind a router, replayed like a single
/// [`Engine`](crate::Engine) per replica.
///
/// # Examples
///
/// ```
/// use marconi_model::ModelConfig;
/// use marconi_sim::{Cluster, RoutingPolicy};
/// use marconi_workload::{DatasetKind, TraceGenerator};
///
/// let trace = TraceGenerator::new(DatasetKind::ShareGpt)
///     .sessions(8)
///     .tenants(4)
///     .seed(3)
///     .generate();
/// let mut cluster = Cluster::builder(ModelConfig::hybrid_7b())
///     .replicas(4)
///     .total_capacity_bytes(16 << 30)
///     .routing(RoutingPolicy::PrefixAware)
///     .build();
/// let report = cluster.run(&trace);
/// assert_eq!(report.assignments.len(), trace.len());
/// assert_eq!(report.replicas.len(), 4);
/// ```
#[derive(Debug)]
pub struct Cluster {
    replicas: Vec<HybridPrefixCache>,
    router: Box<dyn Router>,
    gpu: GpuModel,
    tracer: Tracer,
}

impl Cluster {
    /// Starts building a cluster of caches for `model`.
    ///
    /// Defaults: 1 replica, 16 GiB total capacity, the cache's default
    /// (Marconi auto-tuned) eviction policy, [`RoutingPolicy::PrefixAware`],
    /// a 4×A100 device model per replica.
    #[must_use]
    pub fn builder(model: ModelConfig) -> ClusterBuilder {
        ClusterBuilder {
            model,
            replicas: 1,
            total_capacity: 16 << 30,
            total_host_capacity: 0,
            reload_policy: ReloadPolicy::default(),
            policy: EvictionPolicy::default(),
            checkpoint_mode: CheckpointMode::Exact,
            gpu: GpuModel::a100_x4(),
            router: None,
        }
    }

    /// Number of replicas.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Read access to one replica's cache (diagnostics and tests).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn replica_cache(&self, index: usize) -> &HybridPrefixCache {
        &self.replicas[index]
    }

    /// The active router's name.
    #[must_use]
    pub fn router_name(&self) -> &str {
        self.router.name()
    }

    /// Attaches a tracer to the cluster layer's own decisions (routing
    /// choices with per-replica probes, reload pricing). Replica caches
    /// stay untraced; trace a single-cache run for cache-level events.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Replays `trace`, routing each request as it arrives.
    ///
    /// Mirrors [`Engine::run`](crate::Engine::run) per replica: look up the
    /// longest reusable prefix at arrival time, charge the uncached prefill
    /// to the device model, admit the full sequence afterwards. Cache state
    /// persists across calls (like `Engine`), but each call reports only
    /// its own requests.
    ///
    /// # Panics
    ///
    /// Panics if the router returns an out-of-range replica index.
    pub fn run(&mut self, trace: &Trace) -> ClusterReport {
        let n = self.replicas.len();
        let mut records: Vec<Vec<RequestRecord>> = vec![Vec::new(); n];
        let mut assignments = Vec::with_capacity(trace.len());
        let stats_before: Vec<CacheStats> = self.replicas.iter().map(|r| *r.stats()).collect();
        for req in &trace.requests {
            let statuses: Vec<ReplicaStatus<'_>> = self
                .replicas
                .iter()
                .enumerate()
                .map(|(index, cache)| ReplicaStatus::new(index, cache, 0))
                .collect();
            let idx = self.router.route(req, &statuses);
            assert!(
                idx < n,
                "router {} picked replica {idx} of {n}",
                self.router.name()
            );
            if self.tracer.is_enabled() {
                let probes = trace_probes(req, &statuses);
                let tie_break = route_tie_break(self.router.name(), &probes);
                self.tracer.emit(|| TraceEvent::RouterDecision {
                    ts: req.arrival,
                    request: req.id,
                    chosen: idx as u64,
                    tie_break,
                    probes,
                });
            }
            let replica = &mut self.replicas[idx];
            let hit = replica.lookup_at(&req.input, req.arrival);
            let model = replica.model().clone();
            let (reload_s, reload) = self.gpu.reload_secs(
                replica.reload_policy(),
                hit.host_bytes,
                hit.host_reload_flops,
            );
            if reload != crate::gpu::ReloadDecision::None && self.tracer.is_enabled() {
                let cache: std::sync::Arc<str> = format!("{}[{idx}]", replica.name()).into();
                let load_secs = self.gpu.transfer_secs(hit.host_bytes);
                let recompute_secs = self.gpu.secs_for_flops(hit.host_reload_flops);
                self.tracer.emit(|| TraceEvent::Reload {
                    ts: req.arrival,
                    cache,
                    host_bytes: hit.host_bytes,
                    load_secs,
                    recompute_secs,
                    decision: match reload {
                        crate::gpu::ReloadDecision::Recomputed => TraceReload::Recompute,
                        _ => TraceReload::Load,
                    },
                });
            }
            let ttft_ms = self
                .gpu
                .ttft_ms(&model, req.input_len(), hit.tokens_matched)
                + reload_s * 1e3;
            let flops_spent = model.prefill_flops_with_prefix(req.input_len(), hit.tokens_matched);
            replica.insert_at(&req.input, &req.output, req.arrival);
            records[idx].push(RequestRecord {
                id: req.id,
                session_id: req.session_id,
                arrival: req.arrival,
                input_len: req.input_len(),
                hit_tokens: hit.tokens_matched,
                host_hit_tokens: hit.host_tokens,
                raw_matched: hit.raw_matched,
                ttft_ms,
                reload_ms: reload_s * 1e3,
                reload,
                flops_spent,
                flops_saved: hit.flops_saved,
            });
            assignments.push(idx);
        }
        let replicas = self
            .replicas
            .iter()
            .zip(records)
            .zip(stats_before)
            .enumerate()
            .map(|(i, ((r, records), before))| SimReport {
                system: format!("{}[{i}]", r.name()),
                trace: trace.name.clone(),
                records,
                cache_stats: r.stats().delta_since(&before),
            })
            .collect();
        ClusterReport {
            router: self.router.name().to_owned(),
            trace: trace.name.clone(),
            replicas,
            assignments,
        }
    }
}

/// Builder for [`Cluster`]; see [`Cluster::builder`].
#[derive(Debug)]
pub struct ClusterBuilder {
    model: ModelConfig,
    replicas: usize,
    total_capacity: u64,
    total_host_capacity: u64,
    reload_policy: ReloadPolicy,
    policy: EvictionPolicy,
    checkpoint_mode: CheckpointMode,
    gpu: GpuModel,
    router: Option<Box<dyn Router>>,
}

impl ClusterBuilder {
    /// Sets the replica count.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    #[must_use]
    pub fn replicas(mut self, replicas: usize) -> Self {
        assert!(replicas > 0, "a cluster needs at least one replica");
        self.replicas = replicas;
        self
    }

    /// Sets the cluster-wide device capacity; each replica gets an equal
    /// `total / N` slice, so scaling N at fixed total capacity isolates the
    /// *placement* effect from a memory-size effect.
    #[must_use]
    pub fn total_capacity_bytes(mut self, bytes: u64) -> Self {
        self.total_capacity = bytes;
        self
    }

    /// Sets the cluster-wide host-DRAM budget, sliced `total / N` like the
    /// device capacity (default 0 = single-tier replicas).
    #[must_use]
    pub fn total_host_capacity_bytes(mut self, bytes: u64) -> Self {
        self.total_host_capacity = bytes;
        self
    }

    /// Sets every replica's reload policy for host-resident hits (default
    /// [`ReloadPolicy::ComputeOrLoad`]).
    #[must_use]
    pub fn reload_policy(mut self, policy: ReloadPolicy) -> Self {
        self.reload_policy = policy;
        self
    }

    /// Sets every replica's eviction policy (default: the cache's default,
    /// Marconi's auto-tuned FLOP-aware policy).
    #[must_use]
    pub fn policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets every replica's SSM checkpoint mode (default
    /// [`CheckpointMode::Exact`]).
    #[must_use]
    pub fn checkpoint_mode(mut self, mode: CheckpointMode) -> Self {
        self.checkpoint_mode = mode;
        self
    }

    /// Sets the per-replica device model.
    #[must_use]
    pub fn gpu(mut self, gpu: GpuModel) -> Self {
        self.gpu = gpu;
        self
    }

    /// Selects a built-in routing policy (default
    /// [`RoutingPolicy::PrefixAware`]).
    #[must_use]
    pub fn routing(mut self, policy: RoutingPolicy) -> Self {
        self.router = Some(policy.build());
        self
    }

    /// Installs a custom router.
    #[must_use]
    pub fn router(mut self, router: Box<dyn Router>) -> Self {
        self.router = Some(router);
        self
    }

    /// Builds the cluster.
    pub fn build(self) -> Cluster {
        Cluster {
            replicas: build_replicas(
                &self.model,
                self.replicas,
                self.total_capacity,
                self.total_host_capacity,
                &self.policy,
                self.checkpoint_mode,
                self.reload_policy,
            ),
            router: self
                .router
                .unwrap_or_else(|| RoutingPolicy::PrefixAware.build()),
            gpu: self.gpu,
            tracer: Tracer::off(),
        }
    }
}

/// The one place replica caches are configured: every replica gets an
/// equal `total / n` slice of both the device capacity and the host
/// budget, and the same policy/checkpoint/reload knobs. Shared by
/// [`ClusterBuilder`] and
/// [`EventClusterBuilder`](crate::EventClusterBuilder) so the
/// instantaneous and event-driven clusters can never drift in how they
/// construct replicas (the tuner-replica-fidelity lesson of PR 2: any new
/// cache knob must flow through here to reach both).
pub(crate) fn build_replicas(
    model: &ModelConfig,
    n: usize,
    total_capacity: u64,
    total_host_capacity: u64,
    policy: &EvictionPolicy,
    checkpoint_mode: CheckpointMode,
    reload_policy: ReloadPolicy,
) -> Vec<HybridPrefixCache> {
    let per_replica = total_capacity / n as u64;
    let host_per_replica = total_host_capacity / n as u64;
    (0..n)
        .map(|_| {
            HybridPrefixCache::builder(model.clone())
                .capacity_bytes(per_replica)
                .host_capacity_bytes(host_per_replica)
                .policy(policy.clone())
                .checkpoint_mode(checkpoint_mode)
                .reload_policy(reload_policy)
                .build()
        })
        .collect()
}

/// Result of one [`Cluster::run`]: per-replica breakdowns plus the
/// assignment log.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Router name the run used.
    pub router: String,
    /// Trace name the run used.
    pub trace: String,
    /// One [`SimReport`] per replica (system names carry the replica
    /// index, e.g. `marconi[2]`), covering this run's requests only.
    pub replicas: Vec<SimReport>,
    /// Replica index each request was routed to, in arrival order — the
    /// determinism tests compare these logs across identical replays.
    pub assignments: Vec<usize>,
}

impl ClusterReport {
    /// Cluster-wide cache statistics: the per-replica counters summed.
    ///
    /// `peak_usage_bytes` is the sum of per-replica peaks (replicas peak at
    /// different times, so this bounds — rather than equals — the true
    /// simultaneous peak).
    #[must_use]
    pub fn aggregate_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for rep in &self.replicas {
            total.accumulate(&rep.cache_stats);
        }
        total
    }

    /// Cluster-wide token hit rate: hit tokens over input tokens, summed
    /// across replicas.
    #[must_use]
    pub fn aggregate_token_hit_rate(&self) -> f64 {
        self.aggregate_stats().token_hit_rate()
    }

    /// Total prefill FLOPs saved across all replicas.
    #[must_use]
    pub fn total_flops_saved(&self) -> u128 {
        self.replicas.iter().map(SimReport::total_flops_saved).sum()
    }

    /// Input tokens routed to each replica during this run.
    #[must_use]
    pub fn replica_loads(&self) -> Vec<u64> {
        self.replicas
            .iter()
            .map(|r| r.cache_stats.input_tokens)
            .collect()
    }

    /// Requests routed to each replica during this run.
    #[must_use]
    pub fn assignment_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.replicas.len()];
        for &idx in &self.assignments {
            counts[idx] += 1;
        }
        counts
    }

    /// Load-imbalance statistics over per-replica routed input tokens.
    #[must_use]
    pub fn load_imbalance(&self) -> Option<LoadImbalance> {
        let loads: Vec<f64> = self.replica_loads().iter().map(|&t| t as f64).collect();
        LoadImbalance::new(&loads)
    }

    /// All per-request TTFTs across replicas, in global arrival order.
    #[must_use]
    pub fn ttfts_ms(&self) -> Vec<f64> {
        let mut with_ids: Vec<(u64, f64)> = self
            .replicas
            .iter()
            .flat_map(|r| r.records.iter().map(|rec| (rec.id, rec.ttft_ms)))
            .collect();
        with_ids.sort_by_key(|&(id, _)| id);
        with_ids.into_iter().map(|(_, t)| t).collect()
    }

    /// Cluster-wide TTFT distribution summary; `None` for an empty run.
    #[must_use]
    pub fn ttft_summary(&self) -> Option<marconi_metrics::LatencySummary> {
        marconi_metrics::LatencySummary::new(&self.ttfts_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use marconi_workload::{DatasetKind, TraceGenerator};

    fn multi_tenant_trace(seed: u64) -> Trace {
        TraceGenerator::new(DatasetKind::ShareGpt)
            .sessions(24)
            .tenants(6)
            .seed(seed)
            .generate()
    }

    fn cluster(n: usize, policy: RoutingPolicy, capacity: u64) -> Cluster {
        Cluster::builder(ModelConfig::hybrid_7b())
            .replicas(n)
            .total_capacity_bytes(capacity)
            .policy(EvictionPolicy::Lru)
            .routing(policy)
            .build()
    }

    #[test]
    fn n1_cluster_reproduces_single_node_engine_under_every_router() {
        // The parity anchor: a cluster of one replica is the single-node
        // simulator, byte for byte, regardless of router — so everything
        // the paper-claims suite establishes about the engine transfers.
        let trace = multi_tenant_trace(11);
        for policy in [
            EvictionPolicy::Lru,
            EvictionPolicy::FlopAware { alpha: 2.0 },
            EvictionPolicy::default(), // Marconi auto-tuned
        ] {
            let capacity = 4 << 30;
            let mut engine = Engine::new(
                HybridPrefixCache::builder(ModelConfig::hybrid_7b())
                    .capacity_bytes(capacity)
                    .policy(policy.clone())
                    .build(),
                GpuModel::a100_x4(),
            );
            let single = engine.run(&trace);
            for routing in RoutingPolicy::ALL {
                let mut c = Cluster::builder(ModelConfig::hybrid_7b())
                    .replicas(1)
                    .total_capacity_bytes(capacity)
                    .policy(policy.clone())
                    .routing(routing)
                    .build();
                let report = c.run(&trace);
                assert_eq!(
                    report.replicas[0].cache_stats, single.cache_stats,
                    "{routing}/{policy}: CacheStats must be byte-identical"
                );
                assert_eq!(
                    report.replicas[0].records, single.records,
                    "{routing}/{policy}: per-request records must match"
                );
                assert!(report.assignments.iter().all(|&i| i == 0));
            }
        }
    }

    #[test]
    fn routers_are_deterministic_across_replays() {
        let trace = multi_tenant_trace(7);
        for routing in RoutingPolicy::ALL {
            let run = || {
                let mut c = cluster(4, routing, 8 << 30);
                c.run(&trace)
            };
            let (a, b) = (run(), run());
            assert_eq!(a.assignments, b.assignments, "{routing}: assignment log");
            assert_eq!(a, b, "{routing}: full report");
        }
    }

    #[test]
    fn prefix_aware_beats_session_affinity_beats_round_robin() {
        // The acceptance-criteria assertion: on a seeded multi-tenant trace
        // at N=4, prefix-aware routing achieves strictly higher aggregate
        // token hit rate than round-robin. Session affinity sits between:
        // it preserves within-session reuse but scatters tenants.
        let trace = multi_tenant_trace(42);
        let rate = |routing: RoutingPolicy| {
            let mut c = cluster(4, routing, 16 << 30);
            c.run(&trace).aggregate_token_hit_rate()
        };
        let rr = rate(RoutingPolicy::RoundRobin);
        let sa = rate(RoutingPolicy::SessionAffinity);
        let pa = rate(RoutingPolicy::PrefixAware);
        assert!(
            pa > rr,
            "prefix-aware ({pa:.3}) must beat round-robin ({rr:.3})"
        );
        assert!(
            sa > rr,
            "session affinity ({sa:.3}) must beat round-robin ({rr:.3})"
        );
        assert!(
            pa >= sa,
            "prefix-aware ({pa:.3}) must not lose to session affinity ({sa:.3})"
        );
    }

    #[test]
    fn queue_aware_degenerates_to_prefix_aware_without_queues() {
        // The instantaneous cluster never forms queues (queued_tokens is
        // always 0), so queue-aware routing must reproduce prefix-aware
        // assignments exactly — the queue tie-breaker only bites in the
        // event-driven cluster.
        let trace = multi_tenant_trace(5);
        let run = |routing: RoutingPolicy| {
            let mut c = cluster(4, routing, 8 << 30);
            c.run(&trace).assignments
        };
        assert_eq!(
            run(RoutingPolicy::QueueAware),
            run(RoutingPolicy::PrefixAware)
        );
    }

    #[test]
    fn losing_replicas_are_untouched_by_prefix_probes() {
        // The probe-side regression: routing a request away from a replica
        // must leave that replica byte-identical, even though the router
        // probed its tree.
        let model = ModelConfig::hybrid_7b();
        let mut c = Cluster::builder(model.clone())
            .replicas(2)
            .total_capacity_bytes(8 << 30)
            .policy(EvictionPolicy::Lru)
            .routing(RoutingPolicy::PrefixAware)
            .build();
        let session_a: Vec<Token> = (0..400).collect();
        let session_b: Vec<Token> = (100_000..100_400).collect();
        let mk = |id, session_id, input: &[Token]| Request {
            id,
            session_id,
            tenant_id: session_id,
            turn: 0,
            arrival: id as f64,
            input: input.to_vec(),
            output: (200_000..200_032).collect(),
        };
        // Request 0 (session A) → replica 0 (all probes 0, least loaded,
        // lowest index); request 1 (session B, no shared prefix) → replica 1
        // (least loaded).
        let warmup = Trace {
            name: "warmup".into(),
            requests: vec![mk(0, 0, &session_a), mk(1, 1, &session_b)],
        };
        assert_eq!(c.run(&warmup).assignments, vec![0, 1]);

        let loser_stats = *c.replica_cache(1).stats();
        let loser_usage = c.replica_cache(1).usage_bytes();
        let loser_nodes = c.replica_cache(1).node_count();
        let loser_states = c.replica_cache(1).ssm_state_count();

        // Session A's second turn: probing finds its history on replica 0,
        // so replica 1 is probed and loses.
        let mut resume = session_a.clone();
        resume.extend(200_000..200_032);
        resume.extend(300_000..300_040);
        let turn2 = Trace {
            name: "turn2".into(),
            requests: vec![mk(2, 0, &resume)],
        };
        let report = c.run(&turn2);
        assert_eq!(report.assignments, vec![0], "history lives on replica 0");
        assert!(
            report.replicas[0].cache_stats.hit_tokens > 0,
            "the winning replica serves the resume from cache"
        );
        assert_eq!(
            *c.replica_cache(1).stats(),
            loser_stats,
            "losing replica's stats must not move"
        );
        assert_eq!(c.replica_cache(1).usage_bytes(), loser_usage);
        assert_eq!(c.replica_cache(1).node_count(), loser_nodes);
        assert_eq!(c.replica_cache(1).ssm_state_count(), loser_states);
    }

    #[test]
    fn capacity_is_sliced_evenly_across_replicas() {
        let c = cluster(4, RoutingPolicy::RoundRobin, 16 << 30);
        for i in 0..4 {
            assert_eq!(c.replica_cache(i).capacity_bytes(), 4 << 30);
        }
    }

    #[test]
    fn host_capacity_and_reload_policy_reach_every_replica() {
        // The build_replicas fidelity rule extended to the tier knobs: a
        // cluster-wide host budget slices like the device capacity, and
        // the reload policy reaches each cache.
        let c = Cluster::builder(ModelConfig::hybrid_7b())
            .replicas(4)
            .total_capacity_bytes(16 << 30)
            .total_host_capacity_bytes(64 << 30)
            .reload_policy(marconi_core::ReloadPolicy::AlwaysReload)
            .routing(RoutingPolicy::PrefixAware)
            .build();
        for i in 0..4 {
            assert_eq!(c.replica_cache(i).host_capacity_bytes(), 16 << 30);
            assert_eq!(
                c.replica_cache(i).reload_policy(),
                marconi_core::ReloadPolicy::AlwaysReload
            );
        }
    }

    #[test]
    fn routers_weigh_host_hits_below_device_hits() {
        // Two replicas hold the same prefix equally deep, but on replica 0
        // it has been demoted to host. Prefix- and queue-aware routing must
        // send the request to the device-resident copy — and with no host
        // tier anywhere, the extra tie-break term must not change anything
        // (pinned separately by `queue_aware_degenerates_to_prefix_aware`).
        let m = ModelConfig::hybrid_7b();
        let prompt: Vec<Token> = (0..96).collect();
        let output: Vec<Token> = (200_000..200_032).collect();
        let warm = |host: bool| {
            let mut c = HybridPrefixCache::builder(m.clone())
                .capacity_bytes(if host {
                    // Too small for two sequences: the follow-up insert
                    // demotes the prompt's sequence.
                    128 * m.kv_bytes_per_token() + m.ssm_checkpoint_bytes() + 1
                } else {
                    4 << 30
                })
                .host_capacity_bytes(1 << 40)
                .policy(EvictionPolicy::Lru)
                .build();
            c.insert_at(&prompt, &output, 0.0);
            if host {
                c.insert_at(
                    &(300_000..300_096).collect::<Vec<Token>>(),
                    &(400_000..400_032).collect::<Vec<Token>>(),
                    1.0,
                );
            }
            c
        };
        let demoted = warm(true);
        let device = warm(false);
        let mut resume = prompt.clone();
        resume.extend_from_slice(&output);
        // Same depth on both replicas; only the tier differs.
        assert_eq!(
            demoted.longest_cached_prefix_len(&resume),
            device.longest_cached_prefix_len(&resume)
        );
        assert!(demoted.probe_tiers(&resume).host_tokens > 0);
        assert_eq!(device.probe_tiers(&resume).host_tokens, 0);
        let req = Request {
            id: 9,
            session_id: 0,
            tenant_id: 0,
            turn: 1,
            arrival: 2.0,
            input: resume,
            output: (500_000..500_008).collect(),
        };
        for mut router in [
            RoutingPolicy::PrefixAware.build(),
            RoutingPolicy::QueueAware.build(),
        ] {
            let statuses = [
                ReplicaStatus::new(0, &demoted, 0),
                ReplicaStatus::new(1, &device, 0),
            ];
            assert_eq!(
                router.route(&req, &statuses),
                1,
                "{}: the device-resident copy must win the tie",
                router.name()
            );
        }
    }

    #[test]
    fn round_robin_balances_request_counts() {
        let trace = multi_tenant_trace(3);
        let mut c = cluster(4, RoutingPolicy::RoundRobin, 8 << 30);
        let report = c.run(&trace);
        let counts = report.assignment_counts();
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "round-robin counts differ: {counts:?}");
        let imbalance = report.load_imbalance().unwrap();
        assert!(imbalance.factor() >= 1.0);
    }

    #[test]
    fn aggregate_stats_sum_replica_counters() {
        let trace = multi_tenant_trace(9);
        let mut c = cluster(4, RoutingPolicy::SessionAffinity, 8 << 30);
        let report = c.run(&trace);
        let agg = report.aggregate_stats();
        assert_eq!(agg.lookups, trace.len() as u64);
        assert_eq!(agg.input_tokens, trace.total_input_tokens());
        assert_eq!(
            agg.lookups,
            report
                .replicas
                .iter()
                .map(|r| r.cache_stats.lookups)
                .sum::<u64>()
        );
        assert_eq!(report.ttfts_ms().len(), trace.len());
    }
}
