//! The replay engine.

use crate::gpu::{GpuModel, ReloadDecision};
use crate::report::{RequestRecord, SimReport};
use marconi_core::{CursorTable, PrefixCache};
use marconi_trace::{ReloadDecision as TraceReload, TraceEvent, Tracer};
use marconi_workload::Trace;

/// Default bound on the engine's per-session cursor table. Far above any
/// generated trace's session count, yet keeps pathological session-id
/// churn from growing the table without bound.
pub(crate) const DEFAULT_SESSION_CURSOR_CAP: usize = 4096;

/// Replays traces against one cache, mirroring an inference engine's
/// lookup → prefill → decode → admit loop (paper §2.2):
///
/// 1. look up the longest reusable prefix for the request's input at its
///    arrival time;
/// 2. prefill only the uncached suffix (TTFT from the [`GpuModel`]);
/// 3. after the (simulated) decode, admit the full sequence's states.
///
/// Requests are processed in arrival order, like the paper's artifact
/// simulator.
///
/// # Examples
///
/// ```
/// use marconi_core::{HybridPrefixCache, PrefixCache};
/// use marconi_model::ModelConfig;
/// use marconi_sim::{Engine, GpuModel};
/// use marconi_workload::{DatasetKind, TraceGenerator};
///
/// let cache: Box<dyn PrefixCache> = Box::new(
///     HybridPrefixCache::builder(ModelConfig::hybrid_7b())
///         .capacity_bytes(8 << 30)
///         .build(),
/// );
/// let mut engine = Engine::new(cache, GpuModel::a100_x4());
/// let trace = TraceGenerator::new(DatasetKind::ShareGpt)
///     .sessions(3)
///     .seed(5)
///     .generate();
/// let report = engine.run(&trace);
/// assert_eq!(report.records.len(), trace.len());
/// ```
#[derive(Debug)]
pub struct Engine<C> {
    cache: C,
    gpu: GpuModel,
    tracer: Tracer,
    /// Per-session resume cursors (the PR 10 fast path): each completed
    /// request deposits the cursor its admission minted, and the session's
    /// next request spends it on the lookup and the insert so both resume
    /// from the deep node in O(delta tokens).
    cursors: CursorTable,
}

impl<C: PrefixCache> Engine<C> {
    /// Creates an engine around a cache and a device model.
    ///
    /// `C` may be a concrete cache type or `Box<dyn PrefixCache>`.
    #[must_use]
    pub fn new(cache: C, gpu: GpuModel) -> Self {
        Engine {
            cache,
            gpu,
            tracer: Tracer::off(),
            cursors: CursorTable::new(DEFAULT_SESSION_CURSOR_CAP),
        }
    }

    /// Re-bounds the per-session cursor table. A capacity of 0 disables
    /// the session fast path entirely — every request root-walks — which
    /// is how the benches express the baseline; results are byte-identical
    /// either way (the parity contract), only the walk cost changes.
    pub fn set_session_cursor_capacity(&mut self, cap: usize) {
        self.cursors = CursorTable::new(cap);
    }

    /// Attaches a tracer to the engine's own decisions (the compute-or-load
    /// pricing of host hits). Cache-level events are attached on the cache
    /// itself before it is handed to the engine.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Access to the underlying cache (e.g. for baseline-specific
    /// diagnostics like vLLM+ block-reuse reports).
    #[must_use]
    pub fn cache(&self) -> &C {
        &self.cache
    }

    /// Consumes the engine and returns the cache.
    #[must_use]
    pub fn into_cache(self) -> C {
        self.cache
    }

    /// Replays `trace` and produces the per-request report.
    ///
    /// A hit whose prefix is partly host-resident additionally charges the
    /// reload latency — the minimum of the PCIe transfer and the recompute
    /// under the cache's [`ReloadPolicy`](marconi_core::ReloadPolicy) — on
    /// top of the uncached-suffix prefill, and the per-request record
    /// carries which arm was taken. Single-tier caches never report host
    /// bytes, so their TTFTs are unchanged.
    pub fn run(&mut self, trace: &Trace) -> SimReport {
        let mut records = Vec::with_capacity(trace.len());
        let model = self.cache.model().clone();
        for req in &trace.requests {
            let hint = self.cursors.take(req.session_id);
            let hit = self.cache.lookup_at_with(&req.input, req.arrival, hint);
            let (reload_s, reload) = self.gpu.reload_secs(
                self.cache.reload_policy(),
                hit.host_bytes,
                hit.host_reload_flops,
            );
            if reload != ReloadDecision::None {
                self.tracer.emit(|| TraceEvent::Reload {
                    ts: req.arrival,
                    cache: self.cache.name().into(),
                    host_bytes: hit.host_bytes,
                    load_secs: self.gpu.transfer_secs(hit.host_bytes),
                    recompute_secs: self.gpu.secs_for_flops(hit.host_reload_flops),
                    decision: match reload {
                        ReloadDecision::Recomputed => TraceReload::Recompute,
                        _ => TraceReload::Load,
                    },
                });
            }
            let ttft_ms = self
                .gpu
                .ttft_ms(&model, req.input_len(), hit.tokens_matched)
                + reload_s * 1e3;
            let flops_spent = model.prefill_flops_with_prefix(req.input_len(), hit.tokens_matched);
            let (_, next) = self
                .cache
                .insert_at_with(&req.input, &req.output, req.arrival, hint);
            if let Some(cursor) = next {
                self.cursors.put(req.session_id, cursor);
            }
            records.push(RequestRecord {
                id: req.id,
                session_id: req.session_id,
                arrival: req.arrival,
                input_len: req.input_len(),
                hit_tokens: hit.tokens_matched,
                host_hit_tokens: hit.host_tokens,
                raw_matched: hit.raw_matched,
                ttft_ms,
                reload_ms: reload_s * 1e3,
                reload,
                flops_spent,
                flops_saved: hit.flops_saved,
            });
        }
        SimReport {
            system: self.cache.name().to_owned(),
            trace: trace.name.clone(),
            records,
            cache_stats: *self.cache.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marconi_core::{HybridPrefixCache, VanillaCache};
    use marconi_model::ModelConfig;
    use marconi_workload::{DatasetKind, TraceGenerator};

    fn trace() -> Trace {
        TraceGenerator::new(DatasetKind::ShareGpt)
            .sessions(8)
            .seed(2)
            .generate()
    }

    #[test]
    fn multi_turn_workload_hits_under_marconi() {
        let cache = HybridPrefixCache::builder(ModelConfig::hybrid_7b())
            .capacity_bytes(1 << 40)
            .build();
        let mut engine = Engine::new(cache, GpuModel::a100_x4());
        let report = engine.run(&trace());
        assert!(
            report.token_hit_rate() > 0.2,
            "conversation history should yield hits, got {}",
            report.token_hit_rate()
        );
    }

    #[test]
    fn vanilla_never_hits_and_is_slower() {
        let t = trace();
        let mut vanilla = Engine::new(
            VanillaCache::new(ModelConfig::hybrid_7b()),
            GpuModel::a100_x4(),
        );
        let mut marconi = Engine::new(
            HybridPrefixCache::builder(ModelConfig::hybrid_7b())
                .capacity_bytes(1 << 40)
                .build(),
            GpuModel::a100_x4(),
        );
        let rv = vanilla.run(&t);
        let rm = marconi.run(&t);
        assert_eq!(rv.token_hit_rate(), 0.0);
        let p95v = rv.ttft_percentile_ms(0.95).unwrap();
        let p95m = rm.ttft_percentile_ms(0.95).unwrap();
        assert!(p95m < p95v, "caching must reduce P95 TTFT");
    }

    #[test]
    fn records_align_with_trace() {
        let t = trace();
        let cache = HybridPrefixCache::builder(ModelConfig::hybrid_7b())
            .capacity_bytes(1 << 40)
            .build();
        let mut engine = Engine::new(cache, GpuModel::a100_x4());
        let report = engine.run(&t);
        assert_eq!(report.records.len(), t.len());
        for (rec, req) in report.records.iter().zip(&t.requests) {
            assert_eq!(rec.id, req.id);
            assert_eq!(rec.input_len, req.input_len());
            assert!(rec.hit_tokens <= rec.input_len);
            assert!(rec.ttft_ms > 0.0);
        }
    }

    #[test]
    fn tiered_runs_charge_reload_latency_per_request() {
        use marconi_core::{EvictionPolicy, ReloadPolicy};
        let t = trace();
        let m = ModelConfig::hybrid_7b();
        let capacity = 6000 * m.kv_bytes_per_token();
        let run = |policy: ReloadPolicy| {
            let cache = HybridPrefixCache::builder(m.clone())
                .capacity_bytes(capacity)
                .host_capacity_bytes(8 << 30)
                .policy(EvictionPolicy::Lru)
                .reload_policy(policy)
                .build();
            Engine::new(cache, GpuModel::a100_x4()).run(&t)
        };
        let col = run(ReloadPolicy::ComputeOrLoad);
        let recompute = run(ReloadPolicy::AlwaysRecompute);
        let host_hits: Vec<_> = col
            .records
            .iter()
            .filter(|r| r.host_hit_tokens > 0)
            .collect();
        assert!(!host_hits.is_empty(), "trace must produce host hits");
        for r in &host_hits {
            assert!(r.reload_ms > 0.0, "req {}: host hits charge reload", r.id);
            assert_ne!(r.reload, crate::gpu::ReloadDecision::None);
        }
        assert!(
            col.records.iter().any(|r| r.host_hit_tokens == 0),
            "device hits exist too"
        );
        // The instantaneous engine admits identically under both reload
        // policies, so TTFTs compare record for record: the compute-or-load
        // rule can only lower them.
        for (a, b) in col.records.iter().zip(&recompute.records) {
            assert_eq!(a.hit_tokens, b.hit_tokens);
            assert!(a.ttft_ms <= b.ttft_ms + 1e-9, "req {}", a.id);
        }
        assert!(col.hit_tier_split().host > 0);
    }

    #[test]
    fn replays_are_deterministic() {
        let t = trace();
        let run = || {
            let cache = HybridPrefixCache::builder(ModelConfig::hybrid_7b())
                .capacity_bytes(2 << 30)
                .build();
            Engine::new(cache, GpuModel::a100_x4()).run(&t)
        };
        assert_eq!(run(), run());
    }
}
