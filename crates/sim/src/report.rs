//! Per-request records and aggregate simulation reports.

use crate::gpu::ReloadDecision;
use marconi_core::CacheStats;
use marconi_metrics::{BinnedMean, BoxStats, Cdf, LatencySummary, Percentiles, TierSplit};
use serde::{Deserialize, Serialize};

/// One request's outcome in a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request id (arrival order within the trace).
    pub id: u64,
    /// Session the request belonged to.
    pub session_id: u64,
    /// Arrival time in seconds.
    pub arrival: f64,
    /// Prefill length in tokens.
    pub input_len: u64,
    /// Tokens served from cache.
    pub hit_tokens: u64,
    /// The subset of [`hit_tokens`](RequestRecord::hit_tokens) that was
    /// host-resident and had to be reloaded or recomputed.
    pub host_hit_tokens: u64,
    /// Raw longest match ignoring SSM checkpoint constraints (diagnostic).
    pub raw_matched: u64,
    /// Time to first token, in milliseconds (includes any reload charge).
    pub ttft_ms: f64,
    /// Latency charged for the host-resident share of the hit, in
    /// milliseconds (0 for device-only hits).
    pub reload_ms: f64,
    /// Which compute-or-load arm served the host share.
    pub reload: ReloadDecision,
    /// Prefill FLOPs actually spent.
    pub flops_spent: u128,
    /// Prefill FLOPs skipped thanks to the cache.
    pub flops_saved: u128,
}

impl RequestRecord {
    /// This request's token hit rate.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.input_len == 0 {
            return 0.0;
        }
        self.hit_tokens as f64 / self.input_len as f64
    }
}

/// Aggregate result of replaying one trace through one cache system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// System name (`"marconi"`, `"vllm+"`, ...).
    pub system: String,
    /// Trace name the run used.
    pub trace: String,
    /// Per-request outcomes, in arrival order.
    pub records: Vec<RequestRecord>,
    /// The cache's own cumulative statistics.
    pub cache_stats: CacheStats,
}

impl SimReport {
    /// Overall token hit rate: cache-served tokens over all input tokens.
    #[must_use]
    pub fn token_hit_rate(&self) -> f64 {
        self.cache_stats.token_hit_rate()
    }

    /// Total prefill FLOPs saved across the run.
    #[must_use]
    pub fn total_flops_saved(&self) -> u128 {
        self.records.iter().map(|r| r.flops_saved).sum()
    }

    /// Per-request TTFT values in milliseconds.
    #[must_use]
    pub fn ttfts_ms(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.ttft_ms).collect()
    }

    /// TTFT percentile in milliseconds (e.g. `0.95` for the paper's P95).
    ///
    /// Returns `None` for an empty run.
    #[must_use]
    pub fn ttft_percentile_ms(&self, q: f64) -> Option<f64> {
        Percentiles::new(&self.ttfts_ms()).map(|p| p.quantile(q))
    }

    /// TTFT distribution for CDF plots (Fig. 10b).
    #[must_use]
    pub fn ttft_cdf(&self) -> Option<Cdf> {
        Cdf::new(&self.ttfts_ms())
    }

    /// TTFT distribution summary (p50/p95/p99/mean); `None` for an empty
    /// run. The same view [`EventReport`](crate::EventReport) and
    /// [`ClusterReport`](crate::ClusterReport) expose, so instantaneous
    /// and event-driven runs compare side by side.
    #[must_use]
    pub fn ttft_summary(&self) -> Option<LatencySummary> {
        LatencySummary::new(&self.ttfts_ms())
    }

    /// Hit tokens split by the memory tier that served them.
    #[must_use]
    pub fn hit_tier_split(&self) -> TierSplit {
        TierSplit {
            device: self.cache_stats.device_hit_tokens(),
            host: self.cache_stats.host_hit_tokens,
        }
    }

    /// Box statistics of per-request hit rates.
    #[must_use]
    pub fn hit_rate_box(&self) -> Option<BoxStats> {
        let rates: Vec<f64> = self.records.iter().map(RequestRecord::hit_rate).collect();
        BoxStats::new(&rates)
    }

    /// Mean per-request hit rate binned by input length (Fig. 10a).
    #[must_use]
    pub fn hit_rate_by_input_len(&self, bin_width: f64) -> BinnedMean {
        let mut bins = BinnedMean::new(bin_width);
        for r in &self.records {
            bins.add(r.input_len as f64, r.hit_rate());
        }
        bins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, input: u64, hit: u64, ttft: f64) -> RequestRecord {
        RequestRecord {
            id,
            session_id: 0,
            arrival: id as f64,
            input_len: input,
            hit_tokens: hit,
            host_hit_tokens: 0,
            raw_matched: hit,
            ttft_ms: ttft,
            reload_ms: 0.0,
            reload: ReloadDecision::None,
            flops_spent: 10,
            flops_saved: 5,
        }
    }

    fn report() -> SimReport {
        SimReport {
            system: "test".into(),
            trace: "t".into(),
            records: vec![
                record(0, 100, 0, 500.0),
                record(1, 100, 50, 300.0),
                record(2, 200, 200, 50.0),
            ],
            cache_stats: CacheStats {
                input_tokens: 400,
                hit_tokens: 250,
                ..CacheStats::default()
            },
        }
    }

    #[test]
    fn aggregate_hit_rate_uses_cache_stats() {
        assert!((report().token_hit_rate() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn ttft_percentiles() {
        let r = report();
        let p95 = r.ttft_percentile_ms(0.95).unwrap();
        assert!(p95 > 400.0 && p95 <= 500.0);
        assert!(r.ttft_cdf().is_some());
    }

    #[test]
    fn ttft_summary_matches_percentiles() {
        let r = report();
        let s = r.ttft_summary().unwrap();
        assert_eq!(s.count(), 3);
        assert_eq!(s.p95(), r.ttft_percentile_ms(0.95).unwrap());
        assert_eq!(s.p50(), r.ttft_percentile_ms(0.5).unwrap());
    }

    #[test]
    fn per_request_rates_bin_by_length() {
        let bins = report().hit_rate_by_input_len(150.0);
        let means = bins.means();
        // Bin 0 holds the two 100-token requests (rates 0.0, 0.5).
        assert_eq!(means[0].1, Some(0.25));
        // Bin 1 holds the 200-token request (rate 1.0).
        assert_eq!(means[1].1, Some(1.0));
    }

    #[test]
    fn tier_split_reads_cache_stats() {
        let mut r = report();
        r.cache_stats.host_hit_tokens = 100;
        let split = r.hit_tier_split();
        assert_eq!(split.device, 150);
        assert_eq!(split.host, 100);
        assert_eq!(split.total(), 250);
    }

    #[test]
    fn empty_report_yields_none() {
        let r = SimReport {
            system: "x".into(),
            trace: "t".into(),
            records: vec![],
            cache_stats: CacheStats::default(),
        };
        assert!(r.ttft_percentile_ms(0.95).is_none());
        assert!(r.hit_rate_box().is_none());
        assert_eq!(r.total_flops_saved(), 0);
    }
}
