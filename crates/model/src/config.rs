//! Model architecture configuration.

use crate::flops::FlopBreakdown;
use crate::layer::LayerKind;
use crate::memory::StateFootprint;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Architecture of a (possibly hybrid) LLM, as seen by a prefix cache.
///
/// A `ModelConfig` captures exactly the quantities the caching layer needs:
/// the layer composition (`n_attention`, `n_ssm`, `n_mlp`), the model width
/// `d_model` (the paper's `D`), the SSM state dimension `d_state` (`N`), the
/// Mamba conv-block shape, and the numeric precision. It deliberately does
/// *not* model weights, tokenizers, or kernels — the cache only ever observes
/// FLOPs and bytes.
///
/// Construct via the presets ([`ModelConfig::hybrid_7b`] etc.) or the
/// [`builder`](ModelConfig::builder).
///
/// # Examples
///
/// ```
/// use marconi_model::ModelConfig;
///
/// let model = ModelConfig::builder("tiny-hybrid")
///     .d_model(256)
///     .d_state(16)
///     .layers(1, 6, 7)
///     .build()?;
/// assert_eq!(model.n_ssm(), 6);
/// assert!(model.is_hybrid());
/// # Ok::<(), marconi_model::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelConfig {
    name: String,
    d_model: u64,
    d_state: u64,
    d_conv: u64,
    expand: u64,
    n_attention: u64,
    n_ssm: u64,
    n_mlp: u64,
    bytes_per_param: u64,
}

/// Error returned when a [`ModelConfigBuilder`] is given invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `d_model` must be positive.
    ZeroModelDim,
    /// `d_state` must be positive when the model contains SSM layers.
    ZeroStateDim,
    /// At least one compute layer (Attention or SSM) is required.
    NoComputeLayers,
    /// Precision must be 1, 2, or 4 bytes per parameter.
    BadPrecision(u64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroModelDim => write!(f, "d_model must be positive"),
            ConfigError::ZeroStateDim => {
                write!(f, "d_state must be positive for models with SSM layers")
            }
            ConfigError::NoComputeLayers => {
                write!(f, "model must contain at least one attention or SSM layer")
            }
            ConfigError::BadPrecision(b) => {
                write!(f, "bytes per parameter must be 1, 2, or 4, got {b}")
            }
        }
    }
}

impl Error for ConfigError {}

impl ModelConfig {
    /// Starts building a model configuration with the given display name.
    ///
    /// Defaults: `d_model = 4096`, `d_state = 128`, `d_conv = 4`,
    /// `expand = 2`, fp16 precision, and no layers (must be set).
    pub fn builder(name: impl Into<String>) -> ModelConfigBuilder {
        ModelConfigBuilder {
            name: name.into(),
            d_model: 4096,
            d_state: 128,
            d_conv: 4,
            expand: 2,
            n_attention: 0,
            n_ssm: 0,
            n_mlp: 0,
            bytes_per_param: 2,
        }
    }

    /// Display name of the architecture.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Model width `D` (`d_model`).
    #[must_use]
    pub fn d_model(&self) -> u64 {
        self.d_model
    }

    /// SSM state/feature dimension `N` (`d_state`).
    #[must_use]
    pub fn d_state(&self) -> u64 {
        self.d_state
    }

    /// Mamba conv1d kernel width.
    #[must_use]
    pub fn d_conv(&self) -> u64 {
        self.d_conv
    }

    /// Inner-dimension expansion factor (`d_inner = expand · d_model`).
    #[must_use]
    pub fn expand(&self) -> u64 {
        self.expand
    }

    /// Number of Attention layers.
    #[must_use]
    pub fn n_attention(&self) -> u64 {
        self.n_attention
    }

    /// Number of SSM layers.
    #[must_use]
    pub fn n_ssm(&self) -> u64 {
        self.n_ssm
    }

    /// Number of MLP layers.
    #[must_use]
    pub fn n_mlp(&self) -> u64 {
        self.n_mlp
    }

    /// Bytes per parameter/activation element (2 for fp16).
    #[must_use]
    pub fn bytes_per_param(&self) -> u64 {
        self.bytes_per_param
    }

    /// Number of layers of the given kind.
    #[must_use]
    pub fn layer_count(&self, kind: LayerKind) -> u64 {
        match kind {
            LayerKind::Attention => self.n_attention,
            LayerKind::Ssm => self.n_ssm,
            LayerKind::Mlp => self.n_mlp,
        }
    }

    /// `true` if the model mixes Attention and SSM layers.
    #[must_use]
    pub fn is_hybrid(&self) -> bool {
        self.n_attention > 0 && self.n_ssm > 0
    }

    /// `true` if the model has at least one SSM layer, meaning prefix reuse
    /// is constrained to SSM-state checkpoint boundaries ("all or nothing").
    #[must_use]
    pub fn has_ssm(&self) -> bool {
        self.n_ssm > 0
    }

    /// `true` if the model has at least one Attention layer, meaning cached
    /// prefixes carry per-token KV state.
    #[must_use]
    pub fn has_attention(&self) -> bool {
        self.n_attention > 0
    }

    // ------------------------------------------------------------------
    // FLOPs (Table 1).
    // ------------------------------------------------------------------

    /// Prefill FLOPs of a *single* layer of `kind` over `len` tokens.
    ///
    /// Formulas from Table 1 of the paper:
    /// Attention `8LD² + 4L²D`; MLP `16LD²`; SSM `12LD² + 16LDN + 10L`.
    #[must_use]
    pub fn layer_flops(&self, kind: LayerKind, len: u64) -> u128 {
        let l = u128::from(len);
        let d = u128::from(self.d_model);
        let n = u128::from(self.d_state);
        match kind {
            LayerKind::Attention => 8 * l * d * d + 4 * l * l * d,
            LayerKind::Mlp => 16 * l * d * d,
            LayerKind::Ssm => 12 * l * d * d + 16 * l * d * n + 10 * l,
        }
    }

    /// Prefill FLOPs over `len` tokens, broken down by layer kind and summed
    /// over every layer in the model.
    #[must_use]
    pub fn prefill_flops(&self, len: u64) -> FlopBreakdown {
        FlopBreakdown {
            attention: u128::from(self.n_attention) * self.layer_flops(LayerKind::Attention, len),
            ssm: u128::from(self.n_ssm) * self.layer_flops(LayerKind::Ssm, len),
            mlp: u128::from(self.n_mlp) * self.layer_flops(LayerKind::Mlp, len),
        }
    }

    /// FLOPs *saved* by reusing a cached prefix of `prefix_len` tokens.
    ///
    /// Following the paper's accounting, a hit on a prefix of length `P`
    /// skips the full prefill of those `P` tokens across all layers.
    #[must_use]
    pub fn flops_saved(&self, prefix_len: u64) -> u128 {
        self.prefill_flops(prefix_len).total()
    }

    /// FLOPs required to prefill a request of `len` tokens when a prefix of
    /// `prefix_len` tokens is served from the cache.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > len`.
    #[must_use]
    pub fn prefill_flops_with_prefix(&self, len: u64, prefix_len: u64) -> u128 {
        assert!(
            prefix_len <= len,
            "prefix ({prefix_len}) longer than request ({len})"
        );
        self.prefill_flops(len).total() - self.prefill_flops(prefix_len).total()
    }

    // ------------------------------------------------------------------
    // Memory (Table 1 + Appendix A).
    // ------------------------------------------------------------------

    /// Bytes of KV state stored per token, summed over all Attention layers
    /// (`2 tensors · D · bytes_per_param` per layer).
    #[must_use]
    pub fn kv_bytes_per_token(&self) -> u64 {
        self.n_attention * 2 * self.d_model * self.bytes_per_param
    }

    /// Bytes of KV state for a `len`-token sequence across Attention layers.
    #[must_use]
    pub fn kv_bytes(&self, len: u64) -> u64 {
        self.kv_bytes_per_token() * len
    }

    /// Bytes of one SSM recurrent-state checkpoint for a *single* SSM layer,
    /// including the Mamba conv1d state (`d_inner · d_conv` elements), which
    /// the paper includes in all experiments (Appendix A).
    #[must_use]
    pub fn ssm_layer_state_bytes(&self) -> u64 {
        let recurrent = self.d_model * self.d_state * self.bytes_per_param;
        let conv = self.expand * self.d_model * self.d_conv * self.bytes_per_param;
        recurrent + conv
    }

    /// Bytes of one full-model SSM checkpoint (all SSM layers).
    ///
    /// This is the size admitted into the cache every time an SSM state is
    /// checkpointed — constant regardless of how many tokens it represents
    /// (paper §3, property 1).
    #[must_use]
    pub fn ssm_checkpoint_bytes(&self) -> u64 {
        self.n_ssm * self.ssm_layer_state_bytes()
    }

    /// Total cached-state footprint for a `len`-token sequence with a single
    /// SSM checkpoint (KVs for every token + one set of SSM states).
    #[must_use]
    pub fn state_footprint(&self, len: u64) -> StateFootprint {
        StateFootprint {
            kv_bytes: self.kv_bytes(len),
            ssm_bytes: self.ssm_checkpoint_bytes(),
        }
    }

    // ------------------------------------------------------------------
    // FLOP efficiency (Eq. 1, Fig. 5).
    // ------------------------------------------------------------------

    /// FLOP efficiency (Eq. 1) of the cache entry for a `len`-token prefix:
    /// FLOPs saved by a hit divided by the bytes of all stateful-layer
    /// states for the entry.
    ///
    /// Returns 0.0 for an empty prefix or a model with no stateful layers.
    #[must_use]
    pub fn flop_efficiency(&self, len: u64) -> f64 {
        if len == 0 {
            return 0.0;
        }
        let bytes = self.kv_bytes(len) + self.ssm_checkpoint_bytes();
        if bytes == 0 {
            return 0.0;
        }
        self.flops_saved(len) as f64 / bytes as f64
    }
}

impl fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (D={}, N={}, layers: {} attn / {} ssm / {} mlp)",
            self.name, self.d_model, self.d_state, self.n_attention, self.n_ssm, self.n_mlp
        )
    }
}

/// Builder for [`ModelConfig`]; see [`ModelConfig::builder`].
#[derive(Debug, Clone)]
pub struct ModelConfigBuilder {
    name: String,
    d_model: u64,
    d_state: u64,
    d_conv: u64,
    expand: u64,
    n_attention: u64,
    n_ssm: u64,
    n_mlp: u64,
    bytes_per_param: u64,
}

impl ModelConfigBuilder {
    /// Sets the model width `D`.
    #[must_use]
    pub fn d_model(mut self, d_model: u64) -> Self {
        self.d_model = d_model;
        self
    }

    /// Sets the SSM state dimension `N`.
    #[must_use]
    pub fn d_state(mut self, d_state: u64) -> Self {
        self.d_state = d_state;
        self
    }

    /// Sets the Mamba conv1d kernel width (default 4).
    #[must_use]
    pub fn d_conv(mut self, d_conv: u64) -> Self {
        self.d_conv = d_conv;
        self
    }

    /// Sets the inner-dimension expansion factor (default 2).
    #[must_use]
    pub fn expand(mut self, expand: u64) -> Self {
        self.expand = expand;
        self
    }

    /// Sets the layer composition: counts of Attention, SSM, and MLP layers.
    #[must_use]
    pub fn layers(mut self, n_attention: u64, n_ssm: u64, n_mlp: u64) -> Self {
        self.n_attention = n_attention;
        self.n_ssm = n_ssm;
        self.n_mlp = n_mlp;
        self
    }

    /// Sets numeric precision in bytes per parameter (default 2 = fp16).
    #[must_use]
    pub fn bytes_per_param(mut self, bytes: u64) -> Self {
        self.bytes_per_param = bytes;
        self
    }

    /// Validates the parameters and builds the [`ModelConfig`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `d_model` is zero, if SSM layers are
    /// present with a zero `d_state`, if there are no compute layers at all,
    /// or if the precision is not 1, 2, or 4 bytes.
    pub fn build(self) -> Result<ModelConfig, ConfigError> {
        if self.d_model == 0 {
            return Err(ConfigError::ZeroModelDim);
        }
        if self.n_ssm > 0 && self.d_state == 0 {
            return Err(ConfigError::ZeroStateDim);
        }
        if self.n_attention == 0 && self.n_ssm == 0 {
            return Err(ConfigError::NoComputeLayers);
        }
        if !matches!(self.bytes_per_param, 1 | 2 | 4) {
            return Err(ConfigError::BadPrecision(self.bytes_per_param));
        }
        Ok(ModelConfig {
            name: self.name,
            d_model: self.d_model,
            d_state: self.d_state,
            d_conv: self.d_conv,
            expand: self.expand,
            n_attention: self.n_attention,
            n_ssm: self.n_ssm,
            n_mlp: self.n_mlp,
            bytes_per_param: self.bytes_per_param,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hybrid() -> ModelConfig {
        ModelConfig::hybrid_7b()
    }

    #[test]
    fn table1_attention_flops() {
        let m = hybrid();
        let l = 100u128;
        let d = 4096u128;
        assert_eq!(
            m.layer_flops(LayerKind::Attention, 100),
            8 * l * d * d + 4 * l * l * d
        );
    }

    #[test]
    fn table1_mlp_flops() {
        let m = hybrid();
        let l = 7u128;
        let d = 4096u128;
        assert_eq!(m.layer_flops(LayerKind::Mlp, 7), 16 * l * d * d);
    }

    #[test]
    fn table1_ssm_flops() {
        let m = hybrid();
        let l = 1000u128;
        let d = 4096u128;
        let n = 128u128;
        assert_eq!(
            m.layer_flops(LayerKind::Ssm, 1000),
            12 * l * d * d + 16 * l * d * n + 10 * l
        );
    }

    #[test]
    fn kv_bytes_match_table1() {
        // Table 1: state size per Attention layer = 4LD bytes (fp16).
        let m = hybrid();
        let per_layer = 4 * 1000 * 4096;
        assert_eq!(m.kv_bytes(1000), m.n_attention() * per_layer);
    }

    #[test]
    fn ssm_state_bytes_match_table1_plus_conv() {
        // Table 1: 2DN per layer, plus conv state 2·(2D)·4 (Appendix A).
        let m = hybrid();
        let recurrent = 2 * 4096 * 128;
        let conv = 2 * (2 * 4096) * 4;
        assert_eq!(m.ssm_layer_state_bytes(), recurrent + conv);
    }

    #[test]
    fn conv_state_is_small_fraction_of_total() {
        // Appendix A: conv states are ~6.1% of total state size on the 7B
        // hybrid model.
        let m = hybrid();
        let conv = 2 * (2 * 4096) * 4 * m.n_ssm();
        let frac = conv as f64 / m.ssm_checkpoint_bytes() as f64;
        assert!((0.05..0.08).contains(&frac), "conv fraction {frac}");
    }

    #[test]
    fn ssm_checkpoint_is_constant_in_length() {
        // Paper §3 property 1: SSM states are constant-sized.
        let m = hybrid();
        assert_eq!(m.ssm_checkpoint_bytes(), m.ssm_checkpoint_bytes());
        let a = m.state_footprint(10).ssm_bytes;
        let b = m.state_footprint(10_000).ssm_bytes;
        assert_eq!(a, b);
    }

    #[test]
    fn ssm_state_much_larger_than_single_token_kv() {
        // Paper §3 property 3: SSM states are 10-100x larger than one
        // token's KVs. For the 7B hybrid: per-layer SSM state 2DN+conv vs
        // per-layer per-token KV 4D.
        let m = hybrid();
        let per_layer_kv_token = 2 * m.d_model() * m.bytes_per_param();
        let ratio = m.ssm_layer_state_bytes() as f64 / per_layer_kv_token as f64;
        assert!(ratio > 10.0 && ratio < 200.0, "ratio {ratio}");
    }

    #[test]
    fn prefix_flops_partition() {
        let m = hybrid();
        let full = m.prefill_flops(500).total();
        let saved = m.flops_saved(200);
        let rest = m.prefill_flops_with_prefix(500, 200);
        assert_eq!(saved + rest, full);
    }

    #[test]
    #[should_panic(expected = "longer than request")]
    fn prefix_longer_than_request_panics() {
        let m = hybrid();
        let _ = m.prefill_flops_with_prefix(10, 11);
    }

    #[test]
    fn flop_efficiency_zero_cases() {
        let m = hybrid();
        assert_eq!(m.flop_efficiency(0), 0.0);
        assert!(m.flop_efficiency(1) > 0.0);
    }

    #[test]
    fn builder_validation() {
        assert_eq!(
            ModelConfig::builder("x").d_model(0).layers(1, 0, 0).build(),
            Err(ConfigError::ZeroModelDim)
        );
        assert_eq!(
            ModelConfig::builder("x").d_state(0).layers(0, 1, 0).build(),
            Err(ConfigError::ZeroStateDim)
        );
        assert_eq!(
            ModelConfig::builder("x").layers(0, 0, 5).build(),
            Err(ConfigError::NoComputeLayers)
        );
        assert_eq!(
            ModelConfig::builder("x")
                .layers(1, 0, 0)
                .bytes_per_param(3)
                .build(),
            Err(ConfigError::BadPrecision(3))
        );
    }

    #[test]
    fn pure_transformer_has_no_ssm_constraint() {
        let t = ModelConfig::transformer_7b();
        assert!(!t.has_ssm());
        assert!(t.has_attention());
        assert_eq!(t.ssm_checkpoint_bytes(), 0);
    }

    #[test]
    fn display_is_informative() {
        let s = hybrid().to_string();
        assert!(s.contains("hybrid"));
        assert!(s.contains("4096"));
    }

    #[test]
    fn error_display_lowercase_no_period() {
        let msgs = [
            ConfigError::ZeroModelDim.to_string(),
            ConfigError::ZeroStateDim.to_string(),
            ConfigError::NoComputeLayers.to_string(),
            ConfigError::BadPrecision(3).to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }
}
