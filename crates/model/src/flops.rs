//! FLOP breakdowns by layer kind.

use crate::layer::LayerKind;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// Prefill FLOPs split by layer kind, summed over all layers of each kind.
///
/// Produced by [`ModelConfig::prefill_flops`] and used both for eviction
/// scoring (via [`total`](FlopBreakdown::total)) and for regenerating the
/// paper's Fig. 14 (FLOP distribution by layer type).
///
/// [`ModelConfig::prefill_flops`]: crate::ModelConfig::prefill_flops
///
/// # Examples
///
/// ```
/// use marconi_model::ModelConfig;
///
/// let m = ModelConfig::hybrid_7b();
/// let short = m.prefill_flops(128);
/// let long = m.prefill_flops(16_384);
/// // Attention's share grows quadratically with sequence length.
/// assert!(long.attention_share() > short.attention_share());
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct FlopBreakdown {
    /// FLOPs in Attention layers.
    pub attention: u128,
    /// FLOPs in SSM layers.
    pub ssm: u128,
    /// FLOPs in MLP layers.
    pub mlp: u128,
}

impl FlopBreakdown {
    /// The zero breakdown.
    pub const ZERO: FlopBreakdown = FlopBreakdown {
        attention: 0,
        ssm: 0,
        mlp: 0,
    };

    /// Total FLOPs across all layer kinds.
    #[must_use]
    pub fn total(&self) -> u128 {
        self.attention + self.ssm + self.mlp
    }

    /// FLOPs attributed to the given layer kind.
    #[must_use]
    pub fn of_kind(&self, kind: LayerKind) -> u128 {
        match kind {
            LayerKind::Attention => self.attention,
            LayerKind::Ssm => self.ssm,
            LayerKind::Mlp => self.mlp,
        }
    }

    /// Fraction of total FLOPs spent in Attention layers (0.0 if empty).
    #[must_use]
    pub fn attention_share(&self) -> f64 {
        self.share(LayerKind::Attention)
    }

    /// Fraction of total FLOPs spent in the given layer kind (0.0 if empty).
    #[must_use]
    pub fn share(&self, kind: LayerKind) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.of_kind(kind) as f64 / total as f64
    }

    /// Total FLOPs as `f64` (convenient for plotting/rates; exact up to
    /// 2^53).
    #[must_use]
    pub fn total_f64(&self) -> f64 {
        self.total() as f64
    }
}

impl Add for FlopBreakdown {
    type Output = FlopBreakdown;

    fn add(self, rhs: FlopBreakdown) -> FlopBreakdown {
        FlopBreakdown {
            attention: self.attention + rhs.attention,
            ssm: self.ssm + rhs.ssm,
            mlp: self.mlp + rhs.mlp,
        }
    }
}

impl AddAssign for FlopBreakdown {
    fn add_assign(&mut self, rhs: FlopBreakdown) {
        *self = *self + rhs;
    }
}

impl Sub for FlopBreakdown {
    type Output = FlopBreakdown;

    /// Component-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics in debug mode if any component of `rhs` exceeds `self`'s.
    fn sub(self, rhs: FlopBreakdown) -> FlopBreakdown {
        FlopBreakdown {
            attention: self.attention - rhs.attention,
            ssm: self.ssm - rhs.ssm,
            mlp: self.mlp - rhs.mlp,
        }
    }
}

impl Sum for FlopBreakdown {
    fn sum<I: Iterator<Item = FlopBreakdown>>(iter: I) -> FlopBreakdown {
        iter.fold(FlopBreakdown::ZERO, Add::add)
    }
}

impl fmt::Display for FlopBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3e} FLOPs (attn {:.3e}, ssm {:.3e}, mlp {:.3e})",
            self.total() as f64,
            self.attention as f64,
            self.ssm as f64,
            self.mlp as f64
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelConfig;

    #[test]
    fn total_sums_components() {
        let b = FlopBreakdown {
            attention: 1,
            ssm: 2,
            mlp: 3,
        };
        assert_eq!(b.total(), 6);
        assert_eq!(b.of_kind(LayerKind::Attention), 1);
        assert_eq!(b.of_kind(LayerKind::Ssm), 2);
        assert_eq!(b.of_kind(LayerKind::Mlp), 3);
    }

    #[test]
    fn arithmetic() {
        let a = FlopBreakdown {
            attention: 10,
            ssm: 20,
            mlp: 30,
        };
        let b = FlopBreakdown {
            attention: 1,
            ssm: 2,
            mlp: 3,
        };
        assert_eq!((a + b).total(), 66);
        assert_eq!((a - b).total(), 54);
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        let s: FlopBreakdown = [a, b].into_iter().sum();
        assert_eq!(s, a + b);
    }

    #[test]
    fn shares_sum_to_one() {
        let m = ModelConfig::hybrid_7b();
        let b = m.prefill_flops(5000);
        let sum: f64 = LayerKind::ALL.iter().map(|&k| b.share(k)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig14_attention_share_grows_quadratically() {
        // Fig. 14: Attention contributes few FLOPs at short lengths but a
        // significant portion at 30K tokens despite only 4/56 layers.
        let m = ModelConfig::hybrid_7b();
        let short = m.prefill_flops(512);
        let long = m.prefill_flops(30_000);
        // 4/56 ≈ 7.1% of layers; at 30K tokens Attention consumes ~17% of
        // FLOPs (Fig. 14) vs ~4% at 512 tokens.
        assert!(short.attention_share() < 0.08);
        assert!(long.attention_share() > 0.12);
        assert!(long.attention_share() > 2.5 * short.attention_share());
    }

    #[test]
    fn zero_share_on_empty() {
        assert_eq!(FlopBreakdown::ZERO.attention_share(), 0.0);
    }

    #[test]
    fn display_mentions_all_kinds() {
        let m = ModelConfig::hybrid_7b();
        let s = m.prefill_flops(100).to_string();
        assert!(s.contains("attn") && s.contains("ssm") && s.contains("mlp"));
    }
}
