//! Preset model zoo used across the paper's evaluation.

use crate::ModelConfig;

impl ModelConfig {
    /// The paper's main 7B hybrid model: `{4, 24, 28}` `{Attention, SSM,
    /// MLP}` layers with `D = 4096`, `N = 128` (Mamba2-scale state), fp16.
    #[must_use]
    pub fn hybrid_7b() -> ModelConfig {
        ModelConfig::builder("hybrid-7b")
            .d_model(4096)
            .d_state(128)
            .layers(4, 24, 28)
            .build()
            .expect("preset is valid")
    }

    /// A pure-SSM 7B model (Mamba-style): 64 SSM layers, `D = 4096`,
    /// `N = 128`. Mamba blocks fold the MLP into the mixer, so `n_mlp = 0`.
    #[must_use]
    pub fn mamba_7b() -> ModelConfig {
        ModelConfig::builder("mamba-7b")
            .d_model(4096)
            .d_state(128)
            .layers(0, 64, 0)
            .build()
            .expect("preset is valid")
    }

    /// A pure-Transformer 7B model: 32 Attention + 32 MLP layers,
    /// `D = 4096`.
    #[must_use]
    pub fn transformer_7b() -> ModelConfig {
        ModelConfig::builder("transformer-7b")
            .d_model(4096)
            .d_state(128)
            .layers(32, 0, 32)
            .build()
            .expect("preset is valid")
    }

    /// A Jamba-1.5-Mini-like hybrid (12B-active scale) used for the TTFT
    /// experiments: a 1:7 Attention:SSM ratio served with `N = 128`.
    #[must_use]
    pub fn jamba_mini_like() -> ModelConfig {
        ModelConfig::builder("jamba-1.5-mini-like")
            .d_model(4096)
            .d_state(128)
            .layers(4, 28, 32)
            .build()
            .expect("preset is valid")
    }

    /// Layer-composition sweep variant for Fig. 12a: `n_ssm` SSM and
    /// `n_attention` Attention layers with the main model's 28 MLP layers,
    /// `D = 4096`, `N = 128`.
    ///
    /// The paper sweeps `(SSM, Attn)` over
    /// `{(32,4), (30,5), (28,7), (24,12), (0,36)}`.
    ///
    /// # Panics
    ///
    /// Panics if both counts are zero.
    #[must_use]
    pub fn with_layer_composition(n_ssm: u64, n_attention: u64) -> ModelConfig {
        ModelConfig::builder(format!("hybrid-7b-ssm{n_ssm}-attn{n_attention}"))
            .d_model(4096)
            .d_state(128)
            .layers(n_attention, n_ssm, 28)
            .build()
            .expect("at least one compute layer required")
    }

    /// SSM state-dimension sweep variant for Fig. 12b: the main 7B hybrid
    /// with `d_state = n` (the paper sweeps 16 → 128, Mamba1 → Mamba2).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn with_state_dim(n: u64) -> ModelConfig {
        ModelConfig::builder(format!("hybrid-7b-dstate{n}"))
            .d_model(4096)
            .d_state(n)
            .layers(4, 24, 28)
            .build()
            .expect("d_state must be positive")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_7b_composition_matches_paper() {
        let m = ModelConfig::hybrid_7b();
        assert_eq!(
            (m.n_attention(), m.n_ssm(), m.n_mlp()),
            (4, 24, 28),
            "paper: 7B Hybrid model with {{4,24,28}} {{Attention,SSM,MLP}}"
        );
        assert_eq!(m.d_model(), 4096);
        assert_eq!(m.d_state(), 128);
        assert!(m.is_hybrid());
    }

    #[test]
    fn attention_ssm_ratio_is_one_to_six() {
        // §5.1 describes the hybrid as having a 1:6 Attention:SSM ratio.
        let m = ModelConfig::hybrid_7b();
        assert_eq!(m.n_ssm() / m.n_attention(), 6);
    }

    #[test]
    fn pure_models_are_not_hybrid() {
        assert!(!ModelConfig::mamba_7b().is_hybrid());
        assert!(!ModelConfig::transformer_7b().is_hybrid());
    }

    #[test]
    fn fig12a_sweep_members_build() {
        for (ssm, attn) in [(32, 4), (30, 5), (28, 7), (24, 12), (0, 36)] {
            let m = ModelConfig::with_layer_composition(ssm, attn);
            assert_eq!(m.n_ssm(), ssm);
            assert_eq!(m.n_attention(), attn);
        }
    }

    #[test]
    fn fig12b_sweep_members_build() {
        for n in [16, 32, 64, 128] {
            let m = ModelConfig::with_state_dim(n);
            assert_eq!(m.d_state(), n);
        }
        // Larger state dim => larger checkpoint.
        assert!(
            ModelConfig::with_state_dim(128).ssm_checkpoint_bytes()
                > ModelConfig::with_state_dim(16).ssm_checkpoint_bytes()
        );
    }

    #[test]
    fn preset_names_are_distinct() {
        let names = [
            ModelConfig::hybrid_7b().name().to_string(),
            ModelConfig::mamba_7b().name().to_string(),
            ModelConfig::transformer_7b().name().to_string(),
            ModelConfig::jamba_mini_like().name().to_string(),
        ];
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
