//! Layer taxonomy for hybrid models.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a model layer, following the paper's three-way taxonomy.
///
/// Hybrid models interleave a small number of [`Attention`] layers with many
/// [`Ssm`] layers (commonly 1 Attention per 6–10 SSM layers) plus [`Mlp`]
/// blocks. The three kinds differ in both prefill compute and in the shape
/// of the inference-time state they carry:
///
/// * [`Attention`] — quadratic compute, per-token KV state (rollback-able).
/// * [`Ssm`] — linear compute, constant-size in-place-updated state
///   (**not** rollback-able; the root cause of Marconi's design).
/// * [`Mlp`] — linear compute, stateless.
///
/// [`Attention`]: LayerKind::Attention
/// [`Ssm`]: LayerKind::Ssm
/// [`Mlp`]: LayerKind::Mlp
///
/// # Examples
///
/// ```
/// use marconi_model::LayerKind;
///
/// assert!(LayerKind::Attention.is_stateful());
/// assert!(LayerKind::Ssm.is_stateful());
/// assert!(!LayerKind::Mlp.is_stateful());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LayerKind {
    /// Full self-attention: `O(L²)` prefill compute, `O(L)` KV state.
    Attention,
    /// State space model (Mamba-style): `O(L)` compute, `O(1)` state that is
    /// updated in place and cannot represent a prefix of the sequence it has
    /// consumed.
    Ssm,
    /// Feed-forward block: `O(L)` compute, no inference-time state.
    Mlp,
}

impl LayerKind {
    /// All layer kinds, in display order.
    pub const ALL: [LayerKind; 3] = [LayerKind::Attention, LayerKind::Ssm, LayerKind::Mlp];

    /// Returns `true` if the layer keeps inference-time state that a prefix
    /// cache must store (Attention KVs or SSM recurrent state).
    #[must_use]
    pub fn is_stateful(self) -> bool {
        matches!(self, LayerKind::Attention | LayerKind::Ssm)
    }

    /// Returns `true` if the layer's state can be *rolled back* to represent
    /// an arbitrary prefix of the tokens it has consumed.
    ///
    /// KVs have a sequence dimension and can be sliced; SSM states are
    /// overwritten in place, so they cannot (paper §3, property 2).
    #[must_use]
    pub fn is_rollbackable(self) -> bool {
        matches!(self, LayerKind::Attention)
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LayerKind::Attention => "Attention",
            LayerKind::Ssm => "SSM",
            LayerKind::Mlp => "MLP",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statefulness_matches_paper_taxonomy() {
        assert!(LayerKind::Attention.is_stateful());
        assert!(LayerKind::Ssm.is_stateful());
        assert!(!LayerKind::Mlp.is_stateful());
    }

    #[test]
    fn only_attention_rolls_back() {
        assert!(LayerKind::Attention.is_rollbackable());
        assert!(!LayerKind::Ssm.is_rollbackable());
        assert!(!LayerKind::Mlp.is_rollbackable());
    }

    #[test]
    fn display_names() {
        assert_eq!(LayerKind::Attention.to_string(), "Attention");
        assert_eq!(LayerKind::Ssm.to_string(), "SSM");
        assert_eq!(LayerKind::Mlp.to_string(), "MLP");
    }

    #[test]
    fn all_covers_every_variant() {
        assert_eq!(LayerKind::ALL.len(), 3);
        for kind in LayerKind::ALL {
            // Round-trips through serde.
            let json = serde_json_like(kind);
            assert!(!json.is_empty());
        }
    }

    fn serde_json_like(kind: LayerKind) -> String {
        format!("{kind:?}")
    }
}
