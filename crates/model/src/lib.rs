//! Layer, FLOP, and memory accounting for hybrid (Attention + SSM) LLMs.
//!
//! This crate is the quantitative foundation of the Marconi reproduction: it
//! implements the per-layer prefill FLOP counts and model-state sizes from
//! Table 1 of the paper, the *FLOP efficiency* metric (Eq. 1), and a preset
//! zoo of model architectures used throughout the evaluation (the 7B hybrid
//! with `{4, 24, 28}` `{Attention, SSM, MLP}` layers, pure-Mamba and
//! pure-Transformer 7B variants, and the layer-composition / state-dimension
//! sweeps of Fig. 12).
//!
//! All formulas assume half-precision (2 bytes/parameter) by default and are
//! exact integer computations in `u128`, with `f64` conveniences for ratios.
//!
//! | layer | prefill FLOPs (length `L`) | state bytes |
//! |---|---|---|
//! | Attention | `8·L·D² + 4·L²·D` | `4·L·D` (K and V, fp16) |
//! | MLP | `16·L·D²` | — |
//! | SSM | `12·L·D² + 16·L·D·N + 10·L` | `2·D·N` + conv `2·(e·D)·k` |
//!
//! where `D = d_model`, `N = d_state`, `e` = expansion factor, `k` = conv
//! kernel width.
//!
//! # Examples
//!
//! ```
//! use marconi_model::ModelConfig;
//!
//! let model = ModelConfig::hybrid_7b();
//! // A 1024-token prefill costs about 2.4e12 FLOPs on this model...
//! let flops = model.prefill_flops(1024);
//! assert!(flops.total() > 0);
//! // ...and its cached states occupy KVs plus one SSM checkpoint.
//! let footprint = model.state_footprint(1024);
//! assert_eq!(
//!     footprint.total(),
//!     footprint.kv_bytes + footprint.ssm_bytes
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod config;
mod efficiency;
mod flops;
mod layer;
mod memory;
mod presets;

pub use bandwidth::{MemoryBandwidths, A100_HBM_BYTES_PER_S, A100_PCIE_BYTES_PER_S};
pub use config::{ConfigError, ModelConfig, ModelConfigBuilder};
pub use efficiency::FlopEfficiency;
pub use flops::FlopBreakdown;
pub use layer::LayerKind;
pub use memory::{sequence_cache_bytes, StateFootprint};
