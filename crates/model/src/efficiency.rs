//! FLOP efficiency (paper Eq. 1 and Table 1 closed forms).

use crate::{LayerKind, ModelConfig};
use serde::{Deserialize, Serialize};

/// Closed-form FLOP-efficiency helpers matching the last rows of Table 1.
///
/// *FLOP efficiency* is the compute a cache hit saves per byte of cache
/// space the entry occupies (Eq. 1). For Attention layers it is
/// `L + 2D` FLOPs/byte — near-constant in practice because `2D` dominates
/// until `L` is large — while for SSM layers it is
/// `L·(6D/N + 8 + 5/(DN))`, which grows *linearly* in `L` because the state
/// size is constant. This asymmetry is why recency-only eviction leaves
/// savings on the table for hybrid models.
///
/// # Examples
///
/// ```
/// use marconi_model::{FlopEfficiency, ModelConfig};
///
/// let eff = FlopEfficiency::new(&ModelConfig::hybrid_7b());
/// // Table 1, 7B model: SSM efficiency ≈ 200·L.
/// let at_1k = eff.ssm_flops_per_byte(1000);
/// assert!((at_1k / 1000.0 - 200.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlopEfficiency {
    d_model: u64,
    d_state: u64,
}

impl FlopEfficiency {
    /// Creates the helper for a model's `D` and `N`.
    #[must_use]
    pub fn new(model: &ModelConfig) -> Self {
        FlopEfficiency {
            d_model: model.d_model(),
            d_state: model.d_state(),
        }
    }

    /// Attention-layer FLOPs saved per byte of KV state for an `L`-token
    /// prefix: `(8LD² + 4L²D) / 4LD = L + 2D`.
    #[must_use]
    pub fn attention_flops_per_byte(&self, len: u64) -> f64 {
        len as f64 + 2.0 * self.d_model as f64
    }

    /// SSM-layer FLOPs saved per byte of recurrent state for an `L`-token
    /// prefix: `(12LD² + 16LDN + 10L) / 2DN = L·(6D/N + 8 + 5/(DN))`.
    ///
    /// Note this closed form (like Table 1) excludes the small conv state.
    #[must_use]
    pub fn ssm_flops_per_byte(&self, len: u64) -> f64 {
        let d = self.d_model as f64;
        let n = self.d_state as f64;
        len as f64 * (6.0 * d / n + 8.0 + 5.0 / (d * n))
    }

    /// Per-layer FLOPs saved per byte for the given stateful layer kind.
    ///
    /// Returns `None` for stateless layers (MLP), which occupy no cache
    /// space.
    #[must_use]
    pub fn layer_flops_per_byte(&self, kind: LayerKind, len: u64) -> Option<f64> {
        match kind {
            LayerKind::Attention => Some(self.attention_flops_per_byte(len)),
            LayerKind::Ssm => Some(self.ssm_flops_per_byte(len)),
            LayerKind::Mlp => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelConfig;

    #[test]
    fn table1_7b_closed_forms() {
        // Table 1 bottom row for the 7B model (D=4096, N=128):
        // Attention: L + 8192; SSM: ~200L.
        let eff = FlopEfficiency::new(&ModelConfig::hybrid_7b());
        assert_eq!(eff.attention_flops_per_byte(1000), 1000.0 + 8192.0);
        let ssm = eff.ssm_flops_per_byte(1000) / 1000.0;
        assert!((ssm - 200.0).abs() < 1.0, "per-token ssm eff {ssm}");
    }

    #[test]
    fn closed_form_matches_exact_ratio() {
        // The closed form must equal FLOPs / bytes computed from the raw
        // Table 1 formulas (conv state excluded).
        let m = ModelConfig::hybrid_7b();
        let eff = FlopEfficiency::new(&m);
        for len in [1u64, 77, 1024, 30_000] {
            let attn_exact =
                m.layer_flops(LayerKind::Attention, len) as f64 / (4 * len * m.d_model()) as f64;
            assert!((eff.attention_flops_per_byte(len) - attn_exact).abs() < 1e-6);

            let ssm_exact =
                m.layer_flops(LayerKind::Ssm, len) as f64 / (2 * m.d_model() * m.d_state()) as f64;
            let rel = (eff.ssm_flops_per_byte(len) - ssm_exact).abs() / ssm_exact;
            assert!(rel < 1e-9, "len {len}: rel err {rel}");
        }
    }

    #[test]
    fn ssm_efficiency_scales_steeper_than_attention() {
        // Fig. 5's driving observation.
        let eff = FlopEfficiency::new(&ModelConfig::hybrid_7b());
        let attn_slope = eff.attention_flops_per_byte(2000) - eff.attention_flops_per_byte(1000);
        let ssm_slope = eff.ssm_flops_per_byte(2000) - eff.ssm_flops_per_byte(1000);
        assert!(ssm_slope > 100.0 * attn_slope);
    }

    #[test]
    fn fig5_model_ordering() {
        // Fig. 5: at a given length, whole-model FLOPs-saved-per-byte is
        // highest for pure Mamba, then Hybrid, then Transformer.
        let mamba = ModelConfig::mamba_7b();
        let hybrid = ModelConfig::hybrid_7b();
        let transformer = ModelConfig::transformer_7b();
        // The ordering emerges once sequence length dominates the constant
        // `2D` term in Attention's efficiency (Fig. 5's x-axis reaches 2K).
        for len in [1000u64, 2000, 4000] {
            let em = mamba.flop_efficiency(len);
            let eh = hybrid.flop_efficiency(len);
            let et = transformer.flop_efficiency(len);
            assert!(em > eh, "len {len}: mamba {em} <= hybrid {eh}");
            assert!(eh > et, "len {len}: hybrid {eh} <= transformer {et}");
        }
    }

    #[test]
    fn fig5_steeper_growth_with_more_ssm() {
        // "The more SSM layers in the model, the steeper the increase."
        let mamba = ModelConfig::mamba_7b();
        let hybrid = ModelConfig::hybrid_7b();
        let transformer = ModelConfig::transformer_7b();
        let slope = |m: &ModelConfig| m.flop_efficiency(2000) - m.flop_efficiency(1000);
        assert!(slope(&mamba) > slope(&hybrid));
        assert!(slope(&hybrid) > slope(&transformer));
    }

    #[test]
    fn mlp_has_no_state() {
        let eff = FlopEfficiency::new(&ModelConfig::hybrid_7b());
        assert!(eff.layer_flops_per_byte(LayerKind::Mlp, 100).is_none());
        assert!(eff
            .layer_flops_per_byte(LayerKind::Attention, 100)
            .is_some());
        assert!(eff.layer_flops_per_byte(LayerKind::Ssm, 100).is_some());
    }
}
