//! Memory-hierarchy bandwidth parameters.
//!
//! The tiered cache's reload path is bandwidth-bound, not compute-bound:
//! a host-resident hit streams its bytes back over PCIe (or is recomputed
//! on the device). These constants parameterize that arm of the
//! compute-or-load decision, the same way the FLOP formulas in
//! [`ModelConfig`](crate::ModelConfig) parameterize the compute arm.

use serde::{Deserialize, Serialize};

/// Sustained A100-40GB HBM2e bandwidth per GPU in bytes/s (~1.56 TB/s).
pub const A100_HBM_BYTES_PER_S: f64 = 1.555e12;

/// Sustained host↔device PCIe 4.0 ×16 bandwidth per GPU in bytes/s
/// (~25 GB/s of the 32 GB/s line rate).
pub const A100_PCIE_BYTES_PER_S: f64 = 25e9;

/// Sustained memory bandwidths of a serving host, as seen by the cache:
/// HBM bounds on-device state movement, PCIe bounds host-tier reloads.
///
/// Multi-GPU hosts shard cached state across devices, so both figures
/// scale with the GPU count (each device reloads its own shard in
/// parallel).
///
/// # Examples
///
/// ```
/// use marconi_model::MemoryBandwidths;
///
/// let bw = MemoryBandwidths::a100(4);
/// // Reloading 1 GiB of demoted KV state over 4 PCIe links:
/// let secs = (1u64 << 30) as f64 / bw.pcie_bytes_per_s;
/// assert!(secs < 0.011, "~10.7 ms, {secs}");
/// // HBM is ~60x faster than PCIe — why demotion is worth modeling.
/// assert!(bw.hbm_bytes_per_s / bw.pcie_bytes_per_s > 50.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBandwidths {
    /// Aggregate device HBM bandwidth in bytes/s.
    pub hbm_bytes_per_s: f64,
    /// Aggregate host↔device PCIe bandwidth in bytes/s.
    pub pcie_bytes_per_s: f64,
}

impl MemoryBandwidths {
    /// Creates a custom bandwidth pair.
    ///
    /// # Panics
    ///
    /// Panics if either bandwidth is not positive and finite.
    #[must_use]
    pub fn new(hbm_bytes_per_s: f64, pcie_bytes_per_s: f64) -> Self {
        assert!(
            hbm_bytes_per_s > 0.0 && hbm_bytes_per_s.is_finite(),
            "hbm bandwidth must be positive"
        );
        assert!(
            pcie_bytes_per_s > 0.0 && pcie_bytes_per_s.is_finite(),
            "pcie bandwidth must be positive"
        );
        MemoryBandwidths {
            hbm_bytes_per_s,
            pcie_bytes_per_s,
        }
    }

    /// Bandwidths of an `n_gpus`-way A100-40GB host (HBM2e + PCIe 4.0 ×16
    /// per GPU).
    ///
    /// # Panics
    ///
    /// Panics if `n_gpus` is zero.
    #[must_use]
    pub fn a100(n_gpus: u32) -> Self {
        assert!(n_gpus > 0, "at least one GPU");
        MemoryBandwidths::new(
            f64::from(n_gpus) * A100_HBM_BYTES_PER_S,
            f64::from(n_gpus) * A100_PCIE_BYTES_PER_S,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_scales_with_gpu_count() {
        let one = MemoryBandwidths::a100(1);
        let four = MemoryBandwidths::a100(4);
        assert!((four.hbm_bytes_per_s - 4.0 * one.hbm_bytes_per_s).abs() < 1.0);
        assert!((four.pcie_bytes_per_s - 4.0 * one.pcie_bytes_per_s).abs() < 1.0);
    }

    #[test]
    fn constants_are_in_realistic_ranges() {
        // HBM2e: ~1.5-2 TB/s per A100; PCIe 4.0 x16: 20-32 GB/s sustained.
        assert!((1e12..2.5e12).contains(&A100_HBM_BYTES_PER_S));
        assert!((15e9..35e9).contains(&A100_PCIE_BYTES_PER_S));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        let _ = MemoryBandwidths::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_rejected() {
        let _ = MemoryBandwidths::a100(0);
    }
}
