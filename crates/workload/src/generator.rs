//! The trace generator.

use crate::arrival::ArrivalConfig;
use crate::spec::{DatasetKind, SessionSpec};
use crate::trace::{Request, Trace};
use crate::Token;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Token-id block reserved per fresh segment so distinct segments never
/// accidentally share prefixes (real tokenized text essentially never
/// repeats hundreds of tokens by chance).
const VOCAB: u32 = 50_000;

/// Generates deterministic synthetic traces for a dataset family.
///
/// See the [crate docs](crate) for what the generator reproduces and why.
///
/// # Examples
///
/// ```
/// use marconi_workload::{ArrivalConfig, DatasetKind, TraceGenerator};
///
/// let trace = TraceGenerator::new(DatasetKind::SweBench)
///     .sessions(5)
///     .arrival(ArrivalConfig::new(0.5, 5.0))
///     .seed(42)
///     .generate();
/// trace.assert_well_formed();
/// // Agentic turns carry the full trajectory: inputs grow monotonically
/// // within a session.
/// let s0: Vec<_> = trace
///     .requests
///     .iter()
///     .filter(|r| r.session_id == 0)
///     .collect();
/// for pair in s0.windows(2) {
///     assert!(pair[1].input_len() > pair[0].input_len());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    kind: DatasetKind,
    spec: SessionSpec,
    sessions: usize,
    tenants: usize,
    arrival: ArrivalConfig,
    seed: u64,
}

impl TraceGenerator {
    /// Creates a generator for the dataset family with its default spec,
    /// 50 sessions, one tenant, default arrivals, and seed 0.
    #[must_use]
    pub fn new(kind: DatasetKind) -> Self {
        TraceGenerator {
            kind,
            spec: kind.spec(),
            sessions: 50,
            tenants: 1,
            arrival: ArrivalConfig::default(),
            seed: 0,
        }
    }

    /// Overrides the session spec (defaults to [`DatasetKind::spec`]).
    #[must_use]
    pub fn spec(mut self, spec: SessionSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the number of sessions.
    #[must_use]
    pub fn sessions(mut self, sessions: usize) -> Self {
        self.sessions = sessions;
        self
    }

    /// Sets the number of tenants (default 1), enabling the multi-tenant
    /// trace mode.
    ///
    /// Each tenant draws from its **own** pool of `prompt_pool` system
    /// prompts, and sessions are interleaved across tenants round-robin
    /// (`tenant = session_id % tenants`). Prefix reuse across sessions
    /// therefore only exists *within* a tenant — the workload structure
    /// under which cluster routing policies (`marconi-sim`'s `cluster`
    /// module) actually differ: a router that co-locates a tenant's
    /// sessions on one replica preserves cross-session prompt reuse that
    /// scattering destroys.
    ///
    /// With `tenants == 1` the generator is byte-identical to the
    /// single-tenant mode (same RNG stream, same trace name), so every
    /// seeded trace predating this knob is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is zero.
    #[must_use]
    pub fn tenants(mut self, tenants: usize) -> Self {
        assert!(tenants > 0, "at least one tenant is required");
        self.tenants = tenants;
        self
    }

    /// Sets the arrival dynamics.
    #[must_use]
    pub fn arrival(mut self, arrival: ArrivalConfig) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the RNG seed (every seed produces one fixed trace).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the trace.
    #[must_use]
    pub fn generate(&self) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x4d61_7263_6f6e_6931);
        let spec = &self.spec;

        // Shared system prompts: the cross-session, purely-input prefixes.
        // One pool per tenant, drawn sequentially so the single-tenant case
        // consumes the RNG stream exactly as it always has (the seeded
        // traces every downstream test is calibrated against must not
        // shift).
        let pools: Vec<Vec<Vec<Token>>> = (0..self.tenants)
            .map(|_| {
                (0..spec.prompt_pool)
                    .map(|_| {
                        let len = spec.prompt_len.sample(&mut rng);
                        fresh_segment(&mut rng, len)
                    })
                    .collect()
            })
            .collect();

        let mut requests = Vec::new();
        let mut session_start = 0.0f64;
        for session_id in 0..self.sessions as u64 {
            let tenant_id = session_id % self.tenants as u64;
            let prompts = &pools[tenant_id as usize];
            // The `_at` variant honours the burst/diurnal schedule; without
            // one it is bit-identical to the original homogeneous draw, so
            // every pre-schedule seeded trace is unchanged.
            session_start += self.arrival.next_session_gap_at(&mut rng, session_start);
            let turns = spec.turns.sample(&mut rng).max(1) as u32;

            // Conversation state.
            let mut history: Vec<Token> = if rng.gen::<f64>() < spec.no_prompt_prob {
                Vec::new()
            } else {
                prompts[rng.gen_range(0..prompts.len().max(1))].clone()
            };
            let mut at = session_start;
            for turn in 0..turns {
                let new_len = if turn == 0 {
                    spec.first_input_len.sample(&mut rng)
                } else {
                    spec.turn_input_len.sample(&mut rng)
                };
                let mut input = history.clone();
                input.extend(fresh_segment(&mut rng, new_len));
                let output_len = spec.output_len.sample(&mut rng);
                let output = fresh_segment(&mut rng, output_len);
                requests.push(Request {
                    id: 0, // assigned after the arrival sort
                    session_id,
                    tenant_id,
                    turn,
                    arrival: at,
                    input: input.clone(),
                    output: output.clone(),
                });
                history = input;
                history.extend_from_slice(&output);
                if history.len() as u64 >= spec.max_context {
                    break;
                }
                at += self.arrival.next_turn_gap(&mut rng);
            }
        }

        requests.sort_by(|a, b| {
            a.arrival
                .total_cmp(&b.arrival)
                .then(a.session_id.cmp(&b.session_id))
        });
        for (i, r) in requests.iter_mut().enumerate() {
            r.id = i as u64;
        }
        // The tenant and schedule tags appear only when those modes are on,
        // so pre-existing trace names (keys into golden expectations) are
        // unchanged.
        let tenant_tag = if self.tenants > 1 {
            format!("-x{}", self.tenants)
        } else {
            String::new()
        };
        let schedule_tag = self
            .arrival
            .schedule
            .as_ref()
            .map_or_else(String::new, |s| {
                format!("-mod{}p{:.0}", s.slots(), s.period_s())
            });
        Trace {
            name: format!(
                "{}-s{}{}-r{:.2}-t{:.1}{}-seed{}",
                self.kind,
                self.sessions,
                tenant_tag,
                self.arrival.sessions_per_second,
                self.arrival.mean_response_time,
                schedule_tag,
                self.seed
            ),
            requests,
        }
    }
}

/// A run of random token ids: models freshly tokenized novel text.
fn fresh_segment(rng: &mut StdRng, len: u64) -> Vec<Token> {
    (0..len).map(|_| rng.gen_range(0..VOCAB)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::RateSchedule;

    fn small(kind: DatasetKind) -> Trace {
        TraceGenerator::new(kind).sessions(20).seed(11).generate()
    }

    #[test]
    fn traces_are_well_formed() {
        for kind in DatasetKind::ALL {
            let t = small(kind);
            t.assert_well_formed();
            assert!(t.len() >= 20, "{kind}: at least one request per session");
            assert_eq!(t.session_count(), 20);
        }
    }

    #[test]
    fn same_seed_same_trace_different_seed_different() {
        let a = small(DatasetKind::Lmsys);
        let b = small(DatasetKind::Lmsys);
        assert_eq!(a, b);
        let c = TraceGenerator::new(DatasetKind::Lmsys)
            .sessions(20)
            .seed(12)
            .generate();
        assert_ne!(a.requests[0].input, c.requests[0].input);
    }

    #[test]
    fn turns_carry_full_history() {
        let t = small(DatasetKind::ShareGpt);
        let mut by_session: std::collections::HashMap<u64, Vec<&Request>> = Default::default();
        for r in &t.requests {
            by_session.entry(r.session_id).or_default().push(r);
        }
        for reqs in by_session.values() {
            let mut reqs = reqs.clone();
            reqs.sort_by_key(|r| r.turn);
            for pair in reqs.windows(2) {
                let (prev, next) = (pair[0], pair[1]);
                let mut expected = prev.input.clone();
                expected.extend_from_slice(&prev.output);
                assert!(
                    next.input.starts_with(&expected),
                    "turn {} must start with turn {}'s full sequence",
                    next.turn,
                    prev.turn
                );
            }
        }
    }

    #[test]
    fn system_prompts_are_shared_across_sessions() {
        let t = TraceGenerator::new(DatasetKind::SweBench)
            .sessions(30)
            .seed(3)
            .generate();
        // With a pool of 3 prompts and 30 sessions, some pair of sessions
        // must share a long common prefix.
        let firsts: Vec<&Request> = t.requests.iter().filter(|r| r.turn == 0).collect();
        let mut shared = 0;
        for i in 0..firsts.len() {
            for j in i + 1..firsts.len() {
                let common = firsts[i]
                    .input
                    .iter()
                    .zip(firsts[j].input.iter())
                    .take_while(|(a, b)| a == b)
                    .count();
                if common >= 900 {
                    shared += 1;
                }
            }
        }
        assert!(shared > 0, "expected shared system prompts");
    }

    #[test]
    fn fig6_length_contrasts_hold() {
        let lmsys = small(DatasetKind::Lmsys);
        let sharegpt = small(DatasetKind::ShareGpt);
        let swebench = small(DatasetKind::SweBench);

        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // ShareGPT outputs are succinct; LMSys outputs are long.
        assert!(mean(&lmsys.output_lengths()) > 3.0 * mean(&sharegpt.output_lengths()));
        // ShareGPT sequences stay short.
        let sharegpt_max = sharegpt
            .requests
            .iter()
            .map(Request::total_len)
            .max()
            .unwrap();
        assert!(sharegpt_max <= 5_500, "got {sharegpt_max}");
        // SWE-Bench inputs have the widest spread.
        let spread = |v: &[f64]| {
            let mut s = v.to_vec();
            s.sort_by(f64::total_cmp);
            s[(s.len() * 95) / 100] - s[(s.len() * 5) / 100]
        };
        assert!(spread(&swebench.input_lengths()) > spread(&sharegpt.input_lengths()));
    }

    #[test]
    fn context_cap_is_respected() {
        for kind in DatasetKind::ALL {
            let spec = kind.spec();
            let t = small(kind);
            for r in &t.requests {
                // A request may exceed max_context by at most one turn's
                // growth (the cap stops *further* turns).
                assert!(
                    r.total_len() < spec.max_context + 16_000,
                    "{kind}: runaway context {}",
                    r.total_len()
                );
            }
        }
    }

    #[test]
    fn arrival_rate_scales_session_density() {
        let slow = TraceGenerator::new(DatasetKind::ShareGpt)
            .sessions(50)
            .arrival(ArrivalConfig::new(0.5, 5.0))
            .seed(1)
            .generate();
        let fast = TraceGenerator::new(DatasetKind::ShareGpt)
            .sessions(50)
            .arrival(ArrivalConfig::new(2.0, 5.0))
            .seed(1)
            .generate();
        // Same sessions arrive in a quarter of the wall-clock span.
        assert!(fast.duration() < slow.duration());
    }

    /// Longest common prefix of two token sequences.
    fn lcp(a: &[Token], b: &[Token]) -> usize {
        a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
    }

    #[test]
    fn multi_tenant_interleaves_sessions_round_robin() {
        let t = TraceGenerator::new(DatasetKind::SweBench)
            .sessions(12)
            .tenants(4)
            .seed(5)
            .generate();
        assert_eq!(t.tenant_count(), 4);
        for r in &t.requests {
            assert_eq!(r.tenant_id, r.session_id % 4);
        }
    }

    #[test]
    fn tenant_prompts_are_shared_within_but_not_across_tenants() {
        // SWE-Bench always carries a prompt (no_prompt_prob = 0), so every
        // session's first input starts with one of its tenant's prompts.
        let t = TraceGenerator::new(DatasetKind::SweBench)
            .sessions(24)
            .tenants(4)
            .seed(8)
            .generate();
        let firsts: Vec<&Request> = t.requests.iter().filter(|r| r.turn == 0).collect();
        let mut within = 0usize;
        for i in 0..firsts.len() {
            for j in i + 1..firsts.len() {
                let common = lcp(&firsts[i].input, &firsts[j].input);
                if firsts[i].tenant_id == firsts[j].tenant_id {
                    within += usize::from(common >= 900);
                } else {
                    // Fresh segments draw from a 50k vocabulary: any long
                    // shared run across tenants would mean pools leaked.
                    assert!(
                        common < 30,
                        "tenants {} and {} share a {}-token prefix",
                        firsts[i].tenant_id,
                        firsts[j].tenant_id,
                        common
                    );
                }
            }
        }
        assert!(within > 0, "same-tenant sessions must share prompts");
    }

    #[test]
    fn single_tenant_mode_is_byte_identical_to_default() {
        // `.tenants(1)` must not disturb the RNG stream: every seeded trace
        // generated before this knob existed is pinned by downstream tests.
        let default = TraceGenerator::new(DatasetKind::Lmsys)
            .sessions(15)
            .seed(4)
            .generate();
        let explicit = TraceGenerator::new(DatasetKind::Lmsys)
            .sessions(15)
            .tenants(1)
            .seed(4)
            .generate();
        assert_eq!(default, explicit);
        assert_eq!(default.name, explicit.name);
        assert!(default.requests.iter().all(|r| r.tenant_id == 0));
    }

    #[test]
    fn multi_tenant_trace_name_carries_the_tenant_tag() {
        let t = TraceGenerator::new(DatasetKind::ShareGpt)
            .sessions(8)
            .tenants(4)
            .seed(2)
            .generate();
        assert!(t.name.contains("-x4"), "got {}", t.name);
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn zero_tenants_rejected() {
        let _ = TraceGenerator::new(DatasetKind::ShareGpt).tenants(0);
    }

    #[test]
    fn default_schedule_keeps_the_exact_pre_schedule_rng_stream() {
        // Golden pin (same discipline as `tenants == 1`): these arrival bit
        // patterns were captured from the generator *before* the schedule
        // knob existed. A default (schedule-free) ArrivalConfig must keep
        // reproducing them forever — any drift means the RNG stream moved.
        let sharegpt = TraceGenerator::new(DatasetKind::ShareGpt)
            .sessions(6)
            .arrival(ArrivalConfig::new(1.0, 5.0))
            .seed(13)
            .generate();
        assert_eq!(sharegpt.name, "sharegpt-s6-r1.00-t5.0-seed13");
        let golden_sharegpt: [u64; 8] = [
            0x3ff3_5e8e_8fa4_352b,
            0x3ff5_fa10_e4ef_7a12,
            0x4011_6cb7_4c4c_9612,
            0x4012_634a_18df_33ba,
            0x4013_1812_fe66_dc86,
            0x4014_9cc9_707a_2828,
            0x4016_6c02_96c3_5c5d,
            0x4020_c236_d6e3_bd53,
        ];
        for (r, &bits) in sharegpt.requests.iter().zip(&golden_sharegpt) {
            assert_eq!(r.arrival.to_bits(), bits, "request {}", r.id);
        }

        let lmsys = TraceGenerator::new(DatasetKind::Lmsys)
            .sessions(6)
            .arrival(ArrivalConfig::new(2.0, 8.0))
            .seed(4)
            .generate();
        assert_eq!(lmsys.name, "lmsys-s6-r2.00-t8.0-seed4");
        let golden_lmsys: [u64; 8] = [
            0x3fd6_b5cc_cdd4_888e,
            0x3fe5_4ac4_d5aa_0bf0,
            0x3fe8_7704_d151_21a1,
            0x3fea_431f_d1ff_1ebe,
            0x3ffa_68da_ea0e_c55d,
            0x3ffe_ade3_1298_bf90,
            0x400c_5ff7_7693_97c8,
            0x4020_9629_ceea_87b4,
        ];
        for (r, &bits) in lmsys.requests.iter().zip(&golden_lmsys) {
            assert_eq!(r.arrival.to_bits(), bits, "request {}", r.id);
        }
    }

    #[test]
    fn scheduled_trace_keeps_content_but_reshapes_arrivals() {
        // Modulation draws the same RNG stream (one variate per gap), so
        // the *content* of every request — sessions, turns, token ids — is
        // byte-identical to the unmodulated trace; only arrivals move.
        let base = TraceGenerator::new(DatasetKind::ShareGpt)
            .sessions(12)
            .arrival(ArrivalConfig::new(1.0, 5.0))
            .seed(17);
        let plain = base.clone().generate();
        let bursty = base
            .arrival(
                ArrivalConfig::new(1.0, 5.0).with_schedule(RateSchedule::burst(30.0, 6.0, 0.25)),
            )
            .generate();
        assert_eq!(plain.len(), bursty.len());
        let sort = |t: &Trace| {
            let mut reqs: Vec<_> = t.requests.clone();
            reqs.sort_by_key(|r| (r.session_id, r.turn));
            reqs
        };
        let mut moved = 0;
        for (a, b) in sort(&plain).iter().zip(&sort(&bursty)) {
            assert_eq!(a.session_id, b.session_id);
            assert_eq!(a.turn, b.turn);
            assert_eq!(
                a.input, b.input,
                "token content must not depend on schedule"
            );
            assert_eq!(a.output, b.output);
            moved += u32::from(a.arrival.to_bits() != b.arrival.to_bits());
        }
        assert!(moved > 0, "schedule must actually move arrivals");
        assert!(bursty.name.contains("-mod20p30"), "got {}", bursty.name);
    }

    #[test]
    fn scheduled_traces_are_deterministic() {
        let make = || {
            TraceGenerator::new(DatasetKind::Lmsys)
                .sessions(10)
                .arrival(
                    ArrivalConfig::new(1.5, 6.0)
                        .with_schedule(RateSchedule::diurnal(120.0, 0.5, 3.0)),
                )
                .seed(23)
                .generate()
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn trace_name_encodes_parameters() {
        let t = TraceGenerator::new(DatasetKind::Lmsys)
            .sessions(5)
            .seed(9)
            .generate();
        assert!(t.name.contains("lmsys"));
        assert!(t.name.contains("seed9"));
    }
}
