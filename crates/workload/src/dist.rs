//! Length distributions for synthetic workloads.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over token counts.
///
/// Real request-length distributions are heavy-tailed; the log-normal body
/// with hard min/max clamps reproduces the shapes in the paper's Fig. 6
/// without needing the original traces.
///
/// # Examples
///
/// ```
/// use marconi_workload::LenDist;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let dist = LenDist::log_normal(200.0, 0.8, 10, 4000);
/// let mut rng = StdRng::seed_from_u64(1);
/// let len = dist.sample(&mut rng);
/// assert!((10..=4000).contains(&len));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LenDist {
    /// Always the same length.
    Fixed(u64),
    /// Uniform over `[lo, hi]` inclusive.
    Uniform {
        /// Lower bound (inclusive).
        lo: u64,
        /// Upper bound (inclusive).
        hi: u64,
    },
    /// Log-normal with the given *median* and log-space σ, clamped to
    /// `[min, max]`.
    LogNormal {
        /// Median of the distribution (`e^μ`).
        median: f64,
        /// Standard deviation in log space.
        sigma: f64,
        /// Smallest value ever returned.
        min: u64,
        /// Largest value ever returned.
        max: u64,
    },
}

impl LenDist {
    /// Log-normal constructor; see [`LenDist::LogNormal`].
    ///
    /// # Panics
    ///
    /// Panics if `median <= 0`, `sigma < 0`, or `min > max`.
    #[must_use]
    pub fn log_normal(median: f64, sigma: f64, min: u64, max: u64) -> Self {
        assert!(median > 0.0, "median must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        assert!(min <= max, "min must not exceed max");
        LenDist::LogNormal {
            median,
            sigma,
            min,
            max,
        }
    }

    /// Draws one length.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            LenDist::Fixed(v) => v,
            LenDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            LenDist::LogNormal {
                median,
                sigma,
                min,
                max,
            } => {
                let z = standard_normal(rng);
                let v = median * (sigma * z).exp();
                (v.round() as u64).clamp(min, max)
            }
        }
    }

    /// The distribution's mean (exact for `Fixed`/`Uniform`; the unclamped
    /// analytic mean for `LogNormal`).
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            LenDist::Fixed(v) => v as f64,
            LenDist::Uniform { lo, hi } => (lo + hi) as f64 / 2.0,
            LenDist::LogNormal { median, sigma, .. } => median * (sigma * sigma / 2.0).exp(),
        }
    }
}

/// Standard normal via Box–Muller (rand 0.8 has no normal distribution
/// without `rand_distr`, which is outside the sanctioned dependency set).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = LenDist::Fixed(42);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 42);
        }
        assert_eq!(d.mean(), 42.0);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = LenDist::Uniform { lo: 5, hi: 9 };
        for _ in 0..200 {
            let v = d.sample(&mut rng);
            assert!((5..=9).contains(&v));
        }
        assert_eq!(d.mean(), 7.0);
    }

    #[test]
    fn log_normal_clamps_and_centres() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = LenDist::log_normal(100.0, 0.5, 10, 1000);
        let samples: Vec<u64> = (0..5000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&v| (10..=1000).contains(&v)));
        // Median of samples near the configured median.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        assert!((70.0..140.0).contains(&median), "median {median}");
    }

    #[test]
    fn log_normal_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = LenDist::log_normal(100.0, 1.2, 1, 1_000_000);
        let samples: Vec<u64> = (0..5000).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        let mut sorted = samples;
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        assert!(mean > 1.3 * median, "mean {mean} vs median {median}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = LenDist::log_normal(100.0, 0.7, 1, 10_000);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "median")]
    fn invalid_median_panics() {
        let _ = LenDist::log_normal(0.0, 1.0, 1, 2);
    }
}
