//! Request arrival processes (paper Fig. 13's two knobs, plus load
//! modulation for the event-driven serving experiments).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Arrival dynamics: Poisson session arrivals plus exponential think time
/// between a session's turns, optionally modulated by a [`RateSchedule`].
///
/// `sessions_per_second` controls cross-session contention (Fig. 13a);
/// `mean_response_time` is the average gap between receiving a response
/// and sending the next turn — human typing or an agent's environment
/// interaction (Fig. 13b). A schedule multiplies the *session arrival*
/// rate over time (bursts, diurnal cycles) while think times stay
/// unmodulated; without one the process is exactly the original
/// homogeneous Poisson stream, draw for draw.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// Mean new sessions per second (Poisson process rate).
    pub sessions_per_second: f64,
    /// Mean seconds between a session's consecutive requests.
    pub mean_response_time: f64,
    /// Optional rate-multiplier schedule over the session arrival rate.
    pub schedule: Option<RateSchedule>,
}

impl Default for ArrivalConfig {
    /// One session per second, five-second think time (the midpoints of
    /// the paper's sweeps), no modulation.
    fn default() -> Self {
        ArrivalConfig {
            sessions_per_second: 1.0,
            mean_response_time: 5.0,
            schedule: None,
        }
    }
}

impl ArrivalConfig {
    /// Creates an unmodulated config, validating both rates.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive or non-finite.
    #[must_use]
    pub fn new(sessions_per_second: f64, mean_response_time: f64) -> Self {
        assert!(
            sessions_per_second > 0.0 && sessions_per_second.is_finite(),
            "sessions_per_second must be positive"
        );
        assert!(
            mean_response_time > 0.0 && mean_response_time.is_finite(),
            "mean_response_time must be positive"
        );
        ArrivalConfig {
            sessions_per_second,
            mean_response_time,
            schedule: None,
        }
    }

    /// Attaches a session-rate modulation schedule (burst / diurnal
    /// shaping). The instantaneous session rate at time `t` becomes
    /// `sessions_per_second · schedule.multiplier_at(t)`.
    #[must_use]
    pub fn with_schedule(mut self, schedule: RateSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Draws the gap until the next session start, ignoring any schedule
    /// (the homogeneous process; kept for API compatibility).
    pub fn next_session_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        exponential(rng, self.sessions_per_second)
    }

    /// Draws the gap until the next session start for a process currently
    /// at time `now`, honouring the schedule if one is set.
    ///
    /// Modulation uses time rescaling: one unit-exponential variate is
    /// drawn (the *same single RNG draw* as the unmodulated path, so the
    /// stream stays aligned) and the piecewise-constant cumulative rate is
    /// inverted analytically. With `schedule == None` this is exactly
    /// [`next_session_gap`](ArrivalConfig::next_session_gap), bit for bit.
    pub fn next_session_gap_at<R: Rng + ?Sized>(&self, rng: &mut R, now: f64) -> f64 {
        match &self.schedule {
            None => exponential(rng, self.sessions_per_second),
            Some(schedule) => {
                // ∫ λ·m(t) dt over the gap must equal a unit exponential:
                // invert the multiplier's cumulative area from `now`.
                let area = unit_exponential(rng) / self.sessions_per_second;
                schedule.invert_area(now, area)
            }
        }
    }

    /// Draws the think time before a session's next turn.
    pub fn next_turn_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        exponential(rng, 1.0 / self.mean_response_time)
    }
}

/// A seeded-deterministic, piecewise-constant rate-multiplier schedule that
/// cycles with period `period_s`: the period is split into
/// `multipliers.len()` equal slots and slot `i` scales the base session
/// rate by `multipliers[i]`.
///
/// This is the burst/diurnal knob of the event-driven serving experiments:
/// the *content* of a trace (sessions, turns, token streams) is untouched —
/// only inter-session gaps stretch and compress — and everything remains a
/// pure function of the seed (no wall clock, no extra randomness: gap
/// inversion is analytic).
///
/// # Examples
///
/// ```
/// use marconi_workload::RateSchedule;
///
/// // 60 s cycle: 30 s at 4× (burst), 30 s at 1× (calm).
/// let s = RateSchedule::new(60.0, vec![4.0, 1.0]);
/// assert_eq!(s.multiplier_at(10.0), 4.0);
/// assert_eq!(s.multiplier_at(45.0), 1.0);
/// assert_eq!(s.multiplier_at(70.0), 4.0); // cycles
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSchedule {
    period_s: f64,
    multipliers: Vec<f64>,
}

impl RateSchedule {
    /// Creates a schedule from a cycle period and per-slot multipliers.
    ///
    /// # Panics
    ///
    /// Panics if `period_s` is non-positive/non-finite, `multipliers` is
    /// empty, or any multiplier is non-positive/non-finite (a zero rate
    /// would make the next arrival undefined).
    #[must_use]
    pub fn new(period_s: f64, multipliers: Vec<f64>) -> Self {
        assert!(
            period_s > 0.0 && period_s.is_finite(),
            "period_s must be positive"
        );
        assert!(!multipliers.is_empty(), "at least one multiplier slot");
        assert!(
            multipliers.iter().all(|&m| m > 0.0 && m.is_finite()),
            "multipliers must be positive"
        );
        RateSchedule {
            period_s,
            multipliers,
        }
    }

    /// An on/off burst cycle: the first `duty` fraction of each period runs
    /// at `burst_multiplier`, the rest at 1×. `duty` is clamped to slot
    /// granularity (20 slots per period).
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `(0, 1)` or the multiplier is invalid.
    #[must_use]
    pub fn burst(period_s: f64, burst_multiplier: f64, duty: f64) -> Self {
        assert!(
            duty > 0.0 && duty < 1.0,
            "duty must be a fraction in (0, 1)"
        );
        const SLOTS: usize = 20;
        let on = ((duty * SLOTS as f64).round() as usize).clamp(1, SLOTS - 1);
        let mut multipliers = vec![burst_multiplier; on];
        multipliers.resize(SLOTS, 1.0);
        RateSchedule::new(period_s, multipliers)
    }

    /// A smooth diurnal cycle: 24 slots per period tracing a raised cosine
    /// from `trough` (start of period, the "night") up to `peak` (middle of
    /// period) and back.
    ///
    /// # Panics
    ///
    /// Panics if `trough` or `peak` is non-positive/non-finite.
    #[must_use]
    pub fn diurnal(period_s: f64, trough: f64, peak: f64) -> Self {
        const SLOTS: usize = 24;
        let multipliers = (0..SLOTS)
            .map(|i| {
                // Slot midpoint phase in [0, 2π).
                let phase = (i as f64 + 0.5) / SLOTS as f64 * std::f64::consts::TAU;
                let raised = (1.0 - phase.cos()) / 2.0; // 0 at start, 1 mid-period
                trough + (peak - trough) * raised
            })
            .collect();
        RateSchedule::new(period_s, multipliers)
    }

    /// Cycle period in seconds.
    #[must_use]
    pub fn period_s(&self) -> f64 {
        self.period_s
    }

    /// Number of equal slots the period is split into.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.multipliers.len()
    }

    /// Rate multiplier in effect at time `t` (cycling).
    #[must_use]
    pub fn multiplier_at(&self, t: f64) -> f64 {
        self.multipliers[self.slot_index(t.rem_euclid(self.period_s))]
    }

    /// Mean multiplier over a full period (the long-run load scale).
    #[must_use]
    pub fn mean_multiplier(&self) -> f64 {
        self.multipliers.iter().sum::<f64>() / self.multipliers.len() as f64
    }

    fn slot_len(&self) -> f64 {
        self.period_s / self.multipliers.len() as f64
    }

    fn slot_index(&self, pos_in_period: f64) -> usize {
        ((pos_in_period / self.slot_len()) as usize).min(self.multipliers.len() - 1)
    }

    /// Smallest `dt ≥ 0` with `∫_now^{now+dt} multiplier_at(t) dt = area`:
    /// walks slots from `now`, consuming each slot's multiplier·length
    /// until the remaining area fits inside one slot.
    fn invert_area(&self, now: f64, area: f64) -> f64 {
        let mut remaining = area;
        let mut dt = 0.0;
        // Position within the cycle of the walk frontier.
        let mut pos = now.rem_euclid(self.period_s);
        loop {
            let slot = self.slot_index(pos);
            let slot_end = (slot as f64 + 1.0) * self.slot_len();
            let span = (slot_end - pos).max(f64::MIN_POSITIVE);
            let m = self.multipliers[slot];
            let slot_area = m * span;
            if remaining <= slot_area {
                return dt + remaining / m;
            }
            remaining -= slot_area;
            dt += span;
            pos = if slot + 1 == self.multipliers.len() {
                0.0
            } else {
                slot_end
            };
        }
    }
}

/// Exponential variate with the given rate.
fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    unit_exponential(rng) / rate
}

/// Unit-rate exponential variate (one `f64` draw, rejecting denormal zero).
fn unit_exponential<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen::<f64>();
        if u > f64::MIN_POSITIVE {
            return -u.ln();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_matches_paper_midpoints() {
        let c = ArrivalConfig::default();
        assert_eq!(c.sessions_per_second, 1.0);
        assert_eq!(c.mean_response_time, 5.0);
        assert!(c.schedule.is_none());
    }

    #[test]
    fn gaps_have_the_configured_means() {
        let c = ArrivalConfig::new(2.0, 7.5);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let session_mean: f64 =
            (0..n).map(|_| c.next_session_gap(&mut rng)).sum::<f64>() / f64::from(n);
        let turn_mean: f64 = (0..n).map(|_| c.next_turn_gap(&mut rng)).sum::<f64>() / f64::from(n);
        assert!((session_mean - 0.5).abs() < 0.02, "session {session_mean}");
        assert!((turn_mean - 7.5).abs() < 0.25, "turn {turn_mean}");
    }

    #[test]
    fn gaps_are_positive() {
        let c = ArrivalConfig::default();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(c.next_session_gap(&mut rng) > 0.0);
            assert!(c.next_turn_gap(&mut rng) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = ArrivalConfig::new(0.0, 5.0);
    }

    #[test]
    fn unscheduled_gap_at_matches_plain_gap_bit_for_bit() {
        // The modulation hook must be invisible when no schedule is set:
        // same draws, same arithmetic, same bits — regardless of `now`.
        let c = ArrivalConfig::new(1.3, 5.0);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for i in 0..500 {
            let plain = c.next_session_gap(&mut a);
            let at = c.next_session_gap_at(&mut b, i as f64 * 0.37);
            assert_eq!(plain.to_bits(), at.to_bits(), "draw {i}");
        }
    }

    #[test]
    fn schedule_consumes_one_draw_per_gap() {
        // Modulated and unmodulated paths must stay stream-aligned: after N
        // gaps both RNGs have advanced identically.
        let plain = ArrivalConfig::new(1.0, 5.0);
        let modulated = ArrivalConfig::new(1.0, 5.0)
            .with_schedule(RateSchedule::new(10.0, vec![3.0, 0.5, 1.0]));
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut now = 0.0;
        for _ in 0..200 {
            let _ = plain.next_session_gap_at(&mut a, now);
            now += modulated.next_session_gap_at(&mut b, now);
        }
        // Both streams are at the same point: the next raw draws agree.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn constant_schedule_scales_the_mean_rate() {
        let doubled =
            ArrivalConfig::new(1.0, 5.0).with_schedule(RateSchedule::new(10.0, vec![2.0]));
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mut now = 0.0;
        let mut total = 0.0;
        for _ in 0..n {
            let gap = doubled.next_session_gap_at(&mut rng, now);
            now += gap;
            total += gap;
        }
        let mean = total / f64::from(n);
        // 2× rate ⇒ 0.5 s mean gap.
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn burst_slots_arrive_denser_than_calm_slots() {
        // 4× burst for the first half of each 100 s cycle: arrivals landing
        // in burst slots must outnumber calm-slot arrivals roughly 4:1.
        let c = ArrivalConfig::new(1.0, 5.0).with_schedule(RateSchedule::burst(100.0, 4.0, 0.5));
        let mut rng = StdRng::seed_from_u64(3);
        let mut now = 0.0;
        let (mut bursty, mut calm) = (0u32, 0u32);
        for _ in 0..20_000 {
            now += c.next_session_gap_at(&mut rng, now);
            if now.rem_euclid(100.0) < 50.0 {
                bursty += 1;
            } else {
                calm += 1;
            }
        }
        let ratio = f64::from(bursty) / f64::from(calm);
        assert!((3.0..5.0).contains(&ratio), "burst/calm ratio {ratio}");
    }

    #[test]
    fn diurnal_peak_is_denser_than_trough() {
        let c = ArrivalConfig::new(1.0, 5.0).with_schedule(RateSchedule::diurnal(200.0, 0.25, 4.0));
        let mut rng = StdRng::seed_from_u64(6);
        let mut now = 0.0;
        let (mut peak, mut trough) = (0u32, 0u32);
        for _ in 0..30_000 {
            now += c.next_session_gap_at(&mut rng, now);
            let pos = now.rem_euclid(200.0);
            if (75.0..125.0).contains(&pos) {
                peak += 1; // middle quarter of the cycle
            } else if !(25.0..175.0).contains(&pos) {
                trough += 1; // outer quarter
            }
        }
        assert!(
            f64::from(peak) > 3.0 * f64::from(trough),
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn invert_area_is_exact_on_piecewise_constant_rates() {
        // ∫ multiplier over the returned gap must reproduce the requested
        // area (up to float tolerance), including across slot and period
        // boundaries.
        let s = RateSchedule::new(12.0, vec![2.0, 0.5, 1.0]);
        for (now, area) in [(0.0, 1.0), (3.9, 6.0), (11.9, 0.3), (7.0, 25.0)] {
            let dt = s.invert_area(now, area);
            // Numerically integrate the multiplier over [now, now+dt].
            let steps = 200_000;
            let h = dt / steps as f64;
            let integral: f64 = (0..steps)
                .map(|i| s.multiplier_at(now + (i as f64 + 0.5) * h) * h)
                .sum();
            assert!(
                (integral - area).abs() < 1e-3 * area.max(1.0),
                "now={now} area={area}: got {integral}"
            );
        }
    }

    #[test]
    fn mean_multiplier_averages_slots() {
        let s = RateSchedule::new(10.0, vec![4.0, 1.0, 1.0, 2.0]);
        assert_eq!(s.mean_multiplier(), 2.0);
        assert_eq!(s.slots(), 4);
        assert_eq!(s.period_s(), 10.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_multiplier_rejected() {
        let _ = RateSchedule::new(10.0, vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "slot")]
    fn empty_schedule_rejected() {
        let _ = RateSchedule::new(10.0, vec![]);
    }
}
