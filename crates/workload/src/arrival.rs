//! Request arrival processes (paper Fig. 13's two knobs).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Arrival dynamics: Poisson session arrivals plus exponential think time
/// between a session's turns.
///
/// `sessions_per_second` controls cross-session contention (Fig. 13a);
/// `mean_response_time` is the average gap between receiving a response
/// and sending the next turn — human typing or an agent's environment
/// interaction (Fig. 13b).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// Mean new sessions per second (Poisson process rate).
    pub sessions_per_second: f64,
    /// Mean seconds between a session's consecutive requests.
    pub mean_response_time: f64,
}

impl Default for ArrivalConfig {
    /// One session per second, five-second think time (the midpoints of
    /// the paper's sweeps).
    fn default() -> Self {
        ArrivalConfig {
            sessions_per_second: 1.0,
            mean_response_time: 5.0,
        }
    }
}

impl ArrivalConfig {
    /// Creates a config, validating both rates.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive or non-finite.
    #[must_use]
    pub fn new(sessions_per_second: f64, mean_response_time: f64) -> Self {
        assert!(
            sessions_per_second > 0.0 && sessions_per_second.is_finite(),
            "sessions_per_second must be positive"
        );
        assert!(
            mean_response_time > 0.0 && mean_response_time.is_finite(),
            "mean_response_time must be positive"
        );
        ArrivalConfig {
            sessions_per_second,
            mean_response_time,
        }
    }

    /// Draws the gap until the next session start.
    pub fn next_session_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        exponential(rng, self.sessions_per_second)
    }

    /// Draws the think time before a session's next turn.
    pub fn next_turn_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        exponential(rng, 1.0 / self.mean_response_time)
    }
}

/// Exponential variate with the given rate.
fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    loop {
        let u: f64 = rng.gen::<f64>();
        if u > f64::MIN_POSITIVE {
            return -u.ln() / rate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_matches_paper_midpoints() {
        let c = ArrivalConfig::default();
        assert_eq!(c.sessions_per_second, 1.0);
        assert_eq!(c.mean_response_time, 5.0);
    }

    #[test]
    fn gaps_have_the_configured_means() {
        let c = ArrivalConfig::new(2.0, 7.5);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let session_mean: f64 =
            (0..n).map(|_| c.next_session_gap(&mut rng)).sum::<f64>() / f64::from(n);
        let turn_mean: f64 = (0..n).map(|_| c.next_turn_gap(&mut rng)).sum::<f64>() / f64::from(n);
        assert!((session_mean - 0.5).abs() < 0.02, "session {session_mean}");
        assert!((turn_mean - 7.5).abs() < 0.25, "turn {turn_mean}");
    }

    #[test]
    fn gaps_are_positive() {
        let c = ArrivalConfig::default();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(c.next_session_gap(&mut rng) > 0.0);
            assert!(c.next_turn_gap(&mut rng) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = ArrivalConfig::new(0.0, 5.0);
    }
}
