//! Seeded multi-turn and agentic LLM workload generators.
//!
//! The paper evaluates on tokenized request traces from three sources:
//! LMSys-Chat-1M and ShareGPT (multi-turn conversations with very different
//! output-length profiles) and SWE-Bench driven by SWE-Agent (agentic
//! software-engineering trajectories). Those token traces are not
//! redistributable, so this crate generates *synthetic* traces that match
//! the properties a prefix cache actually observes (DESIGN.md documents
//! this substitution):
//!
//! * session/turn structure — each turn's input is the full conversation
//!   history (previous input + decoded output) plus new user/environment
//!   tokens, so input-and-output prefix reuse arises naturally;
//! * shared system prompts drawn from a per-dataset pool, producing
//!   purely-input prefix reuse across sessions;
//! * per-dataset input/output length distributions shaped after Fig. 6
//!   (LMSys: long outputs, up to ~30K-token contexts; ShareGPT: succinct
//!   outputs, mostly < 2K-token sequences; SWE-Bench: very wide input
//!   distribution from hundreds to tens of thousands of tokens);
//! * arrival dynamics — Poisson session arrivals and exponential think
//!   times between turns, the two knobs of the paper's Fig. 13, with an
//!   optional seeded burst/diurnal rate schedule ([`RateSchedule`]) and an
//!   open-loop load-sweep helper ([`Trace::time_scaled`]) for the
//!   event-driven serving experiments;
//! * an optional multi-tenant mode ([`TraceGenerator::tenants`]) that
//!   interleaves sessions across tenants with per-tenant prompt pools, the
//!   workload under which cluster routing policies (`marconi-sim`)
//!   actually differ.
//!
//! All randomness flows from a single `u64` seed: the same seed always
//! produces the identical trace.
//!
//! # Examples
//!
//! ```
//! use marconi_workload::{DatasetKind, TraceGenerator};
//!
//! let trace = TraceGenerator::new(DatasetKind::ShareGpt)
//!     .sessions(10)
//!     .seed(7)
//!     .generate();
//! assert!(!trace.requests.is_empty());
//! // Deterministic: same seed, same trace.
//! let again = TraceGenerator::new(DatasetKind::ShareGpt)
//!     .sessions(10)
//!     .seed(7)
//!     .generate();
//! assert_eq!(trace, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod dist;
mod generator;
mod spec;
mod trace;

pub use arrival::{ArrivalConfig, RateSchedule};
pub use dist::LenDist;
pub use generator::TraceGenerator;
pub use spec::{DatasetKind, SessionSpec};
pub use trace::{Request, Trace};

/// A token identifier (matches `marconi_radix::Token`).
pub type Token = u32;
