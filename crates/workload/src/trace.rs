//! Traces and requests.

use crate::Token;
use serde::{Deserialize, Serialize};

/// One inference request: the tokens prefilled, the tokens decoded, and
/// when it arrived.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Global request index within the trace (arrival order).
    pub id: u64,
    /// Session this request belongs to.
    pub session_id: u64,
    /// Tenant the session belongs to (0 for single-tenant traces).
    ///
    /// In multi-tenant traces ([`TraceGenerator::tenants`]), sessions of the
    /// same tenant share that tenant's system-prompt pool, so cross-session
    /// prefix reuse exists *within* a tenant but not across tenants — the
    /// structure that makes cluster routing policies distinguishable.
    ///
    /// [`TraceGenerator::tenants`]: crate::TraceGenerator::tenants
    pub tenant_id: u64,
    /// Zero-based turn number within the session.
    pub turn: u32,
    /// Arrival time in seconds from trace start.
    pub arrival: f64,
    /// Prefill tokens: full conversation history plus new tokens.
    pub input: Vec<Token>,
    /// Decoded tokens.
    pub output: Vec<Token>,
}

impl Request {
    /// Input length in tokens.
    #[must_use]
    pub fn input_len(&self) -> u64 {
        self.input.len() as u64
    }

    /// Output length in tokens.
    #[must_use]
    pub fn output_len(&self) -> u64 {
        self.output.len() as u64
    }

    /// Total sequence length (input + output).
    #[must_use]
    pub fn total_len(&self) -> u64 {
        self.input_len() + self.output_len()
    }
}

/// A workload trace: requests sorted by arrival time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Descriptive name (dataset + parameters).
    pub name: String,
    /// Requests in nondecreasing arrival order.
    pub requests: Vec<Request>,
}

impl Trace {
    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` if the trace has no requests.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Per-request input lengths (for Fig. 6-style distributions).
    #[must_use]
    pub fn input_lengths(&self) -> Vec<f64> {
        self.requests.iter().map(|r| r.input_len() as f64).collect()
    }

    /// Per-request output lengths.
    #[must_use]
    pub fn output_lengths(&self) -> Vec<f64> {
        self.requests
            .iter()
            .map(|r| r.output_len() as f64)
            .collect()
    }

    /// Total input tokens across the trace.
    #[must_use]
    pub fn total_input_tokens(&self) -> u64 {
        self.requests.iter().map(Request::input_len).sum()
    }

    /// Trace duration: arrival of the last request.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.requests.last().map_or(0.0, |r| r.arrival)
    }

    /// The trace as an arrival event source: requests in nondecreasing
    /// arrival order, exactly as a discrete-event simulator consumes them
    /// (`marconi-sim`'s event layer merges this stream with its executors'
    /// iteration events).
    pub fn arrivals(&self) -> std::slice::Iter<'_, Request> {
        self.requests.iter()
    }

    /// Mean offered load in input tokens per second over the trace span
    /// (0.0 for an instantaneous or empty trace).
    #[must_use]
    pub fn offered_token_rate(&self) -> f64 {
        let span = self.duration();
        if span <= 0.0 {
            return 0.0;
        }
        self.total_input_tokens() as f64 / span
    }

    /// Open-loop rate-sweep helper: the same requests with every arrival
    /// compressed by `rate_multiplier` (> 1 offers more load per second,
    /// < 1 less). Request *content* — ids, sessions, tokens — is untouched,
    /// so latency differences across a sweep are purely load effects; this
    /// is how the event-driven simulator's saturation studies vary offered
    /// load at fixed hardware.
    ///
    /// # Panics
    ///
    /// Panics if `rate_multiplier` is non-positive or non-finite.
    #[must_use]
    pub fn time_scaled(&self, rate_multiplier: f64) -> Trace {
        assert!(
            rate_multiplier > 0.0 && rate_multiplier.is_finite(),
            "rate_multiplier must be positive"
        );
        let mut scaled = self.clone();
        for r in &mut scaled.requests {
            r.arrival /= rate_multiplier;
        }
        scaled.name = format!("{}-load{rate_multiplier:.2}x", self.name);
        scaled
    }

    /// Number of distinct sessions.
    #[must_use]
    pub fn session_count(&self) -> usize {
        let mut ids: Vec<u64> = self.requests.iter().map(|r| r.session_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Number of distinct tenants (1 for single-tenant traces).
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        let mut ids: Vec<u64> = self.requests.iter().map(|r| r.tenant_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Checks arrival ordering and id consistency; for tests.
    ///
    /// # Panics
    ///
    /// Panics if requests are out of order or ids are not 0..n.
    pub fn assert_well_formed(&self) {
        for (i, r) in self.requests.iter().enumerate() {
            assert_eq!(r.id, i as u64, "request ids must be arrival-ordered");
            if i > 0 {
                assert!(
                    self.requests[i - 1].arrival <= r.arrival,
                    "arrivals must be nondecreasing"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64, arrival: f64, input: usize, output: usize) -> Request {
        Request {
            id,
            session_id: 0,
            tenant_id: 0,
            turn: 0,
            arrival,
            input: (0..input as u32).collect(),
            output: (0..output as u32).collect(),
        }
    }

    #[test]
    fn lengths_and_totals() {
        let r = request(0, 0.0, 10, 4);
        assert_eq!(r.input_len(), 10);
        assert_eq!(r.output_len(), 4);
        assert_eq!(r.total_len(), 14);
    }

    #[test]
    fn trace_aggregates() {
        let t = Trace {
            name: "t".into(),
            requests: vec![request(0, 0.0, 5, 1), request(1, 2.0, 7, 2)],
        };
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_input_tokens(), 12);
        assert_eq!(t.duration(), 2.0);
        assert_eq!(t.input_lengths(), vec![5.0, 7.0]);
        t.assert_well_formed();
    }

    #[test]
    fn time_scaling_compresses_arrivals_only() {
        let t = Trace {
            name: "t".into(),
            requests: vec![request(0, 0.0, 5, 1), request(1, 8.0, 7, 2)],
        };
        let fast = t.time_scaled(4.0);
        assert_eq!(fast.requests[1].arrival, 2.0);
        assert_eq!(fast.requests[1].input, t.requests[1].input);
        assert_eq!(fast.offered_token_rate(), 4.0 * t.offered_token_rate());
        assert!(fast.name.ends_with("-load4.00x"), "got {}", fast.name);
        fast.assert_well_formed();
    }

    #[test]
    #[should_panic(expected = "rate_multiplier")]
    fn non_positive_time_scale_rejected() {
        let t = Trace {
            name: "t".into(),
            requests: vec![],
        };
        let _ = t.time_scaled(0.0);
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn out_of_order_trace_detected() {
        let t = Trace {
            name: "bad".into(),
            requests: vec![request(0, 5.0, 1, 1), request(1, 2.0, 1, 1)],
        };
        t.assert_well_formed();
    }
}
