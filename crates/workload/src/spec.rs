//! Per-dataset session specifications.

use crate::dist::LenDist;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The workload families of the paper's evaluation (§5.1, Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// LMSys-Chat-1M-like conversations: outputs often reach thousands of
    /// tokens; contexts grow toward ~30K.
    Lmsys,
    /// ShareGPT-like conversations: succinct outputs (tens to hundreds of
    /// tokens); sequences predominantly under 2K.
    ShareGpt,
    /// SWE-Agent-on-SWE-Bench-like agentic trajectories: a long shared
    /// instruction prompt, large environment observations, short actions,
    /// many steps; the widest input-length distribution.
    SweBench,
}

impl DatasetKind {
    /// All dataset kinds, in the paper's presentation order.
    pub const ALL: [DatasetKind; 3] = [
        DatasetKind::Lmsys,
        DatasetKind::ShareGpt,
        DatasetKind::SweBench,
    ];

    /// The session specification for this dataset family.
    #[must_use]
    pub fn spec(self) -> SessionSpec {
        match self {
            DatasetKind::Lmsys => SessionSpec {
                prompt_pool: 16,
                no_prompt_prob: 0.35,
                prompt_len: LenDist::log_normal(220.0, 0.6, 30, 900),
                first_input_len: LenDist::log_normal(180.0, 1.0, 10, 4_000),
                turn_input_len: LenDist::log_normal(120.0, 1.0, 8, 3_000),
                output_len: LenDist::log_normal(950.0, 0.8, 40, 6_000),
                turns: LenDist::log_normal(3.0, 0.9, 1, 12),
                max_context: 32_000,
            },
            DatasetKind::ShareGpt => SessionSpec {
                prompt_pool: 16,
                no_prompt_prob: 0.5,
                prompt_len: LenDist::log_normal(120.0, 0.5, 20, 400),
                first_input_len: LenDist::log_normal(120.0, 0.9, 8, 1_500),
                turn_input_len: LenDist::log_normal(90.0, 0.9, 5, 1_000),
                output_len: LenDist::log_normal(140.0, 0.8, 10, 900),
                turns: LenDist::log_normal(4.0, 0.6, 1, 14),
                max_context: 5_000,
            },
            DatasetKind::SweBench => SessionSpec {
                prompt_pool: 3,
                no_prompt_prob: 0.0,
                prompt_len: LenDist::log_normal(1_600.0, 0.15, 900, 2_600),
                first_input_len: LenDist::log_normal(650.0, 0.8, 60, 6_000),
                turn_input_len: LenDist::log_normal(850.0, 1.2, 40, 9_000),
                output_len: LenDist::log_normal(160.0, 0.6, 20, 600),
                turns: LenDist::log_normal(11.0, 0.5, 2, 30),
                max_context: 40_000,
            },
        }
    }
}

impl fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DatasetKind::Lmsys => "lmsys",
            DatasetKind::ShareGpt => "sharegpt",
            DatasetKind::SweBench => "swebench",
        };
        f.write_str(name)
    }
}

/// Shape of a session: how prompts, turns, and lengths are drawn.
///
/// The per-dataset presets come from [`DatasetKind::spec`]; custom
/// workloads can construct their own.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Number of distinct system prompts shared across sessions (the
    /// source of purely-input prefix reuse).
    pub prompt_pool: usize,
    /// Probability that a session carries no system prompt.
    pub no_prompt_prob: f64,
    /// Length of each pooled system prompt.
    pub prompt_len: LenDist,
    /// User/task tokens appended in the first turn (e.g. the question or
    /// the GitHub issue statement).
    pub first_input_len: LenDist,
    /// New tokens appended per subsequent turn (user message or
    /// environment observation).
    pub turn_input_len: LenDist,
    /// Decoded output tokens per turn (assistant message or agent action).
    pub output_len: LenDist,
    /// Turns per session.
    pub turns: LenDist,
    /// Sessions stop growing past this many context tokens.
    pub max_context: u64,
}

impl SessionSpec {
    /// Rough expected total context after all turns — useful for sizing
    /// caches in tests and benches.
    #[must_use]
    pub fn expected_context(&self) -> f64 {
        let turns = self.turns.mean().max(1.0);
        (1.0 - self.no_prompt_prob) * self.prompt_len.mean()
            + self.first_input_len.mean()
            + (turns - 1.0) * self.turn_input_len.mean()
            + turns * self.output_len.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_reflect_fig6_contrasts() {
        let lmsys = DatasetKind::Lmsys.spec();
        let sharegpt = DatasetKind::ShareGpt.spec();
        let swebench = DatasetKind::SweBench.spec();

        // LMSys outputs are much longer than ShareGPT's.
        assert!(lmsys.output_len.mean() > 4.0 * sharegpt.output_len.mean());
        // ShareGPT contexts are short.
        assert!(sharegpt.max_context <= 5_000);
        // SWE-Bench trajectories are the longest and always share a prompt.
        assert!(swebench.expected_context() > lmsys.expected_context());
        assert_eq!(swebench.no_prompt_prob, 0.0);
        assert!(swebench.turns.mean() > lmsys.turns.mean());
    }

    #[test]
    fn expected_context_is_positive_and_finite() {
        for kind in DatasetKind::ALL {
            let e = kind.spec().expected_context();
            assert!(e.is_finite() && e > 0.0, "{kind}: {e}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(DatasetKind::Lmsys.to_string(), "lmsys");
        assert_eq!(DatasetKind::ShareGpt.to_string(), "sharegpt");
        assert_eq!(DatasetKind::SweBench.to_string(), "swebench");
    }
}
