//! Determinism guarantees of the seeded trace generator.
//!
//! Every downstream result in this repo — paper-claims tests, figure
//! reproductions, Criterion baselines — assumes that a `(DatasetKind,
//! sessions, arrival, seed)` tuple names ONE trace, forever. These tests pin
//! that contract at the strongest level: *byte identity* of every field of
//! every request across two independently constructed generators.

use marconi_workload::{ArrivalConfig, DatasetKind, Trace, TraceGenerator};

fn generate(kind: DatasetKind, seed: u64) -> Trace {
    TraceGenerator::new(kind)
        .sessions(25)
        .arrival(ArrivalConfig::new(1.5, 8.0))
        .seed(seed)
        .generate()
}

/// Canonical byte encoding of a trace: every field of every request,
/// little-endian, with `f64` arrivals captured via their exact bit pattern.
/// Two traces are byte-identical iff these encodings are equal.
fn encode(trace: &Trace) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(trace.name.as_bytes());
    for r in &trace.requests {
        bytes.extend_from_slice(&r.id.to_le_bytes());
        bytes.extend_from_slice(&r.session_id.to_le_bytes());
        bytes.extend_from_slice(&r.tenant_id.to_le_bytes());
        bytes.extend_from_slice(&r.turn.to_le_bytes());
        bytes.extend_from_slice(&r.arrival.to_bits().to_le_bytes());
        bytes.extend_from_slice(&(r.input.len() as u64).to_le_bytes());
        for &t in &r.input {
            bytes.extend_from_slice(&t.to_le_bytes());
        }
        bytes.extend_from_slice(&(r.output.len() as u64).to_le_bytes());
        for &t in &r.output {
            bytes.extend_from_slice(&t.to_le_bytes());
        }
    }
    bytes
}

#[test]
fn same_seed_produces_byte_identical_traces() {
    for kind in DatasetKind::ALL {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = generate(kind, seed);
            let b = generate(kind, seed);
            assert_eq!(a, b, "{kind} seed {seed}: struct equality");
            assert_eq!(encode(&a), encode(&b), "{kind} seed {seed}: byte identity");
        }
    }
}

#[test]
fn different_seeds_produce_different_traces() {
    for kind in DatasetKind::ALL {
        let a = generate(kind, 7);
        let b = generate(kind, 8);
        assert_ne!(encode(&a), encode(&b), "{kind}: seeds 7 vs 8 collide");
    }
}

#[test]
fn builder_order_does_not_affect_the_trace() {
    // The generator is a value object: only the final configuration
    // matters, not the order the builder methods were called in.
    let a = TraceGenerator::new(DatasetKind::Lmsys)
        .sessions(10)
        .seed(3)
        .arrival(ArrivalConfig::new(1.0, 5.0))
        .generate();
    let b = TraceGenerator::new(DatasetKind::Lmsys)
        .arrival(ArrivalConfig::new(1.0, 5.0))
        .seed(3)
        .sessions(10)
        .generate();
    assert_eq!(encode(&a), encode(&b));
}

#[test]
fn multi_tenant_traces_are_byte_identical_across_runs() {
    for seed in [0u64, 21, 1234] {
        let make = || {
            TraceGenerator::new(DatasetKind::ShareGpt)
                .sessions(16)
                .tenants(4)
                .arrival(ArrivalConfig::new(1.0, 6.0))
                .seed(seed)
                .generate()
        };
        assert_eq!(encode(&make()), encode(&make()), "seed {seed}");
    }
}

#[test]
fn generate_is_idempotent_on_one_generator() {
    // `generate(&self)` must not consume hidden state: calling it twice on
    // the same generator yields the same bytes.
    let g = TraceGenerator::new(DatasetKind::SweBench)
        .sessions(8)
        .seed(9);
    assert_eq!(encode(&g.generate()), encode(&g.generate()));
}
